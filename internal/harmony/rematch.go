package harmony

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"

	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/obs"
)

// Incremental re-match (DESIGN.md §12). Rematch recomputes only what a
// schema edit or decision actually invalidated: voters re-score dirty
// rows/columns, the merger re-merges the same cross-shaped region, and
// flooding warm-starts from the previous run's recorded rounds. The
// contract is bit-identity: Rematch's matrix equals what a cold Run
// over the current schemas (with the same decisions and options) would
// produce, float64 for float64. That holds because recomputed cells run
// the exact full-path kernels and copied cells are proven unaffected —
// the engine derives the dirty set itself from element signatures, so
// correctness never depends on callers reporting edits accurately;
// caller hints only ever enlarge the set.

// Rematch metric names.
const (
	// MetricRematchTotal counts Rematch calls, labeled by the mode the
	// call resolved to: "cold" (no previous run), "pins" (decision-only
	// fast path), "incremental" (row/column patching), "corpus" (a
	// documentation change moved every IDF weight: the documentation
	// voter re-votes fully, other voters still patch) or "full" (learned
	// state forced a complete re-run).
	MetricRematchTotal = "harmony_rematch_total"
	// MetricRematchStageDuration mirrors MetricStageDuration for the
	// rematch pipeline, plus the rematch-only "signatures" and "context"
	// stages.
	MetricRematchStageDuration = "harmony_rematch_stage_duration_seconds"
	// MetricRematchDirty gauges how many elements the last Rematch
	// treated as dirty (after signature diffing, before structural
	// closure).
	MetricRematchDirty = "harmony_rematch_dirty_elements"
)

// Rematch modes, as reported in timings, metrics and the server API.
const (
	RematchCold        = "cold"
	RematchPins        = "pins"
	RematchIncremental = "incremental"
	RematchCorpus      = "corpus"
	RematchFull        = "full"
)

// Dirty names the elements a caller believes changed since the last
// run. Hints are advisory: the engine unions them with its own
// signature diff, so an empty Dirty is always safe (just potentially
// slower than a precise one — absent hints the diff still finds every
// change).
type Dirty struct {
	Source []string
	Target []string
}

// runSnapshot is everything the last completed pipeline run left behind
// for incremental reuse. All matrices are immutable once recorded.
type runSnapshot struct {
	srcSig, tgtSig       map[string]uint64
	srcParent, tgtParent map[string]string
	srcHash, tgtHash     string
	corpusSig            uint64
	mergerSig            uint64
	learnGen             int

	votes    []match.Vote
	premerge *match.Matrix     // merge output, pre-flood
	flood    *match.FloodState // nil when flooding is off
	prepin   *match.Matrix     // pipeline output before decision pinning
}

// mergedEntry is the cached merge+flood unit.
type mergedEntry struct {
	premerge *match.Matrix
	flood    *match.FloodState
	prepin   *match.Matrix
}

func (me *mergedEntry) bytes() int64 {
	n := match.MatrixBytes(me.premerge)
	if me.flood != nil {
		n += me.flood.Bytes()
	}
	if me.prepin != me.premerge {
		n += match.MatrixBytes(me.prepin)
	}
	return n
}

// LastRematchMode reports how the most recent Rematch resolved ("" before
// any Rematch).
func (e *Engine) LastRematchMode() string { return e.lastRematchMode }

// Rematch re-runs the pipeline over the engine's current schemas,
// reusing the previous run wherever the signature diff proves it valid.
// dirty may name elements the caller knows were touched (blackboard
// events, rdf.ChangesSince); the engine unions the hints with its own
// diff. The resulting matrix is bit-identical to a cold Run.
func (e *Engine) Rematch(dirty Dirty) []StageTiming {
	return e.rematch(context.Background(), e.ctx.Source, e.ctx.Target, dirty)
}

// RematchContext is Rematch with request-trace propagation (see
// RunContext).
func (e *Engine) RematchContext(ctx context.Context, dirty Dirty) []StageTiming {
	return e.rematch(ctx, e.ctx.Source, e.ctx.Target, dirty)
}

// RematchWith is Rematch for callers that replace schema objects rather
// than editing them in place (the server reloads schemas from the
// blackboard): the engine re-aligns everything by element ID, so the
// previous run is still reused for unchanged elements.
func (e *Engine) RematchWith(source, target *model.Schema, dirty Dirty) []StageTiming {
	return e.rematch(context.Background(), source, target, dirty)
}

// RematchWithContext is RematchWith with request-trace propagation.
func (e *Engine) RematchWithContext(ctx context.Context, source, target *model.Schema, dirty Dirty) []StageTiming {
	return e.rematch(ctx, source, target, dirty)
}

func (e *Engine) rematch(ctx context.Context, source, target *model.Schema, dirty Dirty) []StageTiming {
	replaced := source != e.ctx.Source || target != e.ctx.Target
	mode := RematchFull
	defer func() {
		e.lastRematchMode = mode
		e.metrics.Counter(MetricRematchTotal, "mode", mode).Inc()
	}()
	e.metrics.Describe(MetricRematchTotal, "Rematch calls by resolved mode (cold/pins/incremental/corpus/full).")
	e.metrics.Describe(MetricRematchStageDuration, "Rematch pipeline stage wall-clock time, labeled by stage.")
	e.metrics.Describe(MetricRematchDirty, "Dirty element count of the most recent Rematch (post-diff, pre-closure).")

	// A never-run engine, a custom non-incremental voter, or learned
	// state (whose effects signatures cannot see) all force the full
	// pipeline — the one code path guaranteed correct for them.
	fullRun := func() []StageTiming {
		if replaced {
			e.ctx = match.NewContext(source, target, e.ctxOpts...)
		}
		return e.RunContext(ctx)
	}
	if e.snap == nil {
		mode = RematchCold
		return fullRun()
	}
	if !allIncremental(e.voters) {
		return fullRun()
	}

	tr := obs.NewTracer(e.metrics, MetricRematchStageDuration)
	tr.Bind(ctx)
	sp := tr.Start("signatures")
	srcSig, srcParent, srcHash := schemaSignature(source)
	tgtSig, tgtParent, tgtHash := schemaSignature(target)
	dirtySrc := diffSignatures(e.snap.srcSig, srcSig)
	dirtyTgt := diffSignatures(e.snap.tgtSig, tgtSig)
	for _, id := range dirty.Source {
		dirtySrc[id] = true
	}
	for _, id := range dirty.Target {
		dirtyTgt[id] = true
	}
	mergerSig := mergerSignature(e.merger)
	sp.End()
	e.metrics.Gauge(MetricRematchDirty).Set(float64(len(dirtySrc) + len(dirtyTgt)))

	if e.learnGen != e.snap.learnGen {
		// Post-Learn: corpus word weights and merger weights moved. A
		// plain Run on the existing context keeps the learned corpus
		// (rebuilding would reset it), matching the documented
		// Learn-then-Run workflow. With schema edits on top, the context
		// must be rebuilt for correct tokens, which resets word-weight
		// learning — merger weights persist either way.
		if replaced || len(dirtySrc) > 0 || len(dirtyTgt) > 0 {
			e.ctx = match.NewContext(source, target, e.ctxOpts...)
		}
		return e.RunContext(ctx)
	}

	if len(dirtySrc) == 0 && len(dirtyTgt) == 0 && !replaced && mergerSig == e.snap.mergerSig {
		// Only decisions changed: the pipeline output is still valid,
		// re-pin onto a fresh clone of it.
		mode = RematchPins
		sp = tr.Start("pin-decisions")
		merged := e.snap.prepin.Clone()
		e.applyPins(merged)
		sp.End()
		e.merged = merged
		e.metrics.Counter(MetricRuns).Inc()
		return e.orderedTimings(tr)
	}

	// The context's per-element caches are keyed by element pointer, so
	// every edit needs fresh linguistic state for the touched elements.
	// In-place edits that provably leave the documentation corpus alone
	// refresh just those elements (O(dirty)); anything else — replaced
	// schema objects, doc edits, added/removed documents — rebuilds the
	// whole context (O(elements), still far below the O(|S1|·|S2|)
	// matrix work the stages below save).
	sp = tr.Start("context")
	if replaced || !e.ctx.Refresh(dirtySrc, dirtyTgt) {
		e.ctx = match.NewContext(source, target, e.ctxOpts...)
	}
	corpusSig := corpusSignature(e.ctx)
	sp.End()
	corpusChanged := corpusSig != e.snap.corpusSig

	// Close the dirty sets under the voter panel's structural
	// dependency: parents of changed elements (StructureVoter reads
	// children), including parents of removed elements via the previous
	// run's parent map.
	closedSrc := closeDirty(source, dirtySrc, e.snap.srcParent)
	closedTgt := closeDirty(target, dirtyTgt, e.snap.tgtParent)

	snap := runSnapshot{
		srcSig: srcSig, tgtSig: tgtSig,
		srcParent: srcParent, tgtParent: tgtParent,
		srcHash: srcHash, tgtHash: tgtHash,
		corpusSig: corpusSig, mergerSig: mergerSig,
		learnGen: e.learnGen,
	}
	useCache := e.cache != nil && e.learnGen == 0
	var fp string
	if useCache {
		fp = e.cacheFingerprint()
	}

	// With blocking on, the edit may have moved candidates (a renamed
	// element meets different index postings), so the pattern is rebuilt
	// over the refreshed context before any voter patches. The patch
	// kernels tolerate the drift cell by cell: a cell still in both
	// patterns is copied positionally, a cell new to the pattern is
	// recomputed (bit-identical to a cold run, its inputs being clean),
	// and a cell that left the pattern simply drops.
	e.installCandidates(ctx, tr, srcHash, tgtHash, fp, useCache)

	// Voter panel: patch each voter against its previous vote; the
	// corpus-sensitive documentation voter re-votes fully when any
	// document changed (IDF is global). Same fan-out discipline as Run.
	prevVotes := make(map[string]*match.Matrix, len(e.snap.votes))
	for _, v := range e.snap.votes {
		prevVotes[v.Voter] = v.Matrix
	}
	votes := make([]match.Vote, len(e.voters))
	patchVoter := func(i int, v match.Voter) {
		sp := tr.Start("voter:" + v.Name())
		defer sp.End()
		var m *match.Matrix
		cs, _ := v.(match.CorpusSensitive)
		if corpusChanged && cs != nil && cs.CorpusSensitive() {
			m = v.Vote(e.ctx)
		} else {
			m = v.(match.IncrementalVoter).VotePatch(e.ctx, prevVotes[v.Name()], closedSrc, closedTgt)
		}
		if useCache {
			e.cache.Put(voterCacheKey(srcHash, tgtHash, fp, v.Name()), m, match.MatrixBytes(m))
		}
		votes[i] = match.Vote{Voter: v.Name(), Matrix: m}
	}
	workers := e.Workers()
	if workers <= 1 || len(e.voters) <= 1 {
		for i, v := range e.voters {
			patchVoter(i, v)
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, v := range e.voters {
			wg.Add(1)
			go func(i int, v match.Voter) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				patchVoter(i, v)
			}(i, v)
		}
		wg.Wait()
	}
	e.lastVotes = votes
	snap.votes = votes

	if corpusChanged || mergerSig != e.snap.mergerSig {
		// Every documentation-voter cell (or every merge weight) moved:
		// the merge and flood must be full, but the patched voters above
		// still saved the panel sweep.
		mode = RematchCorpus
		sp = tr.Start("merge")
		snap.premerge = e.merger.Merge(votes)
		sp.End()
		snap.prepin = snap.premerge
		if e.flooding {
			sp = tr.Start("flooding")
			snap.prepin, snap.flood = match.HarmonyFloodState(snap.premerge, source, target, e.floodOpt)
			sp.End()
		}
	} else {
		mode = RematchIncremental
		sp = tr.Start("merge")
		snap.premerge = e.merger.MergePatch(votes, e.snap.premerge, closedSrc, closedTgt)
		sp.End()
		snap.prepin = snap.premerge
		if e.flooding {
			sp = tr.Start("flooding")
			out, st, ok := match.HarmonyFloodPatch(e.snap.flood, snap.premerge, source, target, closedSrc, closedTgt, e.floodOpt)
			if !ok {
				out, st = match.HarmonyFloodState(snap.premerge, source, target, e.floodOpt)
			}
			snap.prepin, snap.flood = out, st
			sp.End()
		}
	}
	if useCache {
		me := &mergedEntry{premerge: snap.premerge, flood: snap.flood, prepin: snap.prepin}
		e.cache.Put(mergedCacheKey(srcHash, tgtHash, fp, mergerSig), me, me.bytes())
	}

	sp = tr.Start("pin-decisions")
	merged := snap.prepin.Clone()
	e.applyPins(merged)
	sp.End()
	e.merged = merged
	e.snap = &snap
	e.metrics.Counter(MetricRuns).Inc()
	return e.orderedTimings(tr)
}

// allIncremental reports whether every panel voter supports VotePatch.
func allIncremental(voters []match.Voter) bool {
	for _, v := range voters {
		if _, ok := v.(match.IncrementalVoter); !ok {
			return false
		}
	}
	return true
}

// closeDirty adds the structural parents of every dirty element —
// current parents from the schema, previous parents (for removed
// elements) from the last run's parent map.
func closeDirty(sch *model.Schema, dirty map[string]bool, prevParent map[string]string) map[string]bool {
	out := match.ExpandDirty(sch, dirty)
	for id := range dirty {
		if sch.Element(id) == nil {
			if p := prevParent[id]; p != "" {
				out[p] = true
			}
		}
	}
	return out
}

// diffSignatures returns the IDs added, changed or removed between two
// signature maps.
func diffSignatures(old, new map[string]uint64) map[string]bool {
	dirty := map[string]bool{}
	for id, sig := range new {
		if osig, ok := old[id]; !ok || osig != sig {
			dirty[id] = true
		}
	}
	for id := range old {
		if _, ok := new[id]; !ok {
			dirty[id] = true
		}
	}
	return dirty
}

// schemaSignature walks a schema in deterministic pre-order and returns
// per-element content signatures, a parent map, and a whole-schema
// content hash (the cache revision key). A signature covers every field
// any built-in voter reads about the element itself — name, kind, data
// type, documentation, structural edge, key/required flags and the full
// content of its referenced coding scheme — so two runs see the same
// signature iff every per-element voter input is unchanged. (What it
// deliberately does not cover: children, handled by dirty-set closure,
// and corpus-global IDF, handled by corpusSignature.)
func schemaSignature(sch *model.Schema) (map[string]uint64, map[string]string, string) {
	elems := sch.Elements()
	sigs := make(map[string]uint64, len(elems))
	parents := make(map[string]string, len(elems))
	whole := fnv.New64a()
	for _, e := range elems {
		h := fnv.New64a()
		hw := func(parts ...string) {
			for _, p := range parts {
				h.Write([]byte(p))
				h.Write([]byte{0})
			}
		}
		hw(e.Name, string(e.Kind), e.DataType, e.Doc, e.DomainRef, string(e.EdgeFromParent),
			strconv.FormatBool(e.Key), strconv.FormatBool(e.Required))
		if d := sch.DomainOf(e); d != nil {
			hw(d.Name, d.Doc)
			for _, v := range d.Values {
				hw(v.Code, v.Doc)
			}
		}
		sig := h.Sum64()
		sigs[e.ID] = sig
		if p := e.Parent(); p != nil && p.Kind != model.KindSchema {
			parents[e.ID] = p.ID
		}
		whole.Write([]byte(e.ID))
		whole.Write([]byte{0})
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(sig >> (8 * i))
		}
		whole.Write(buf[:])
	}
	return sigs, parents, fmt.Sprintf("%016x", whole.Sum64())
}

// SchemaHash returns the whole-schema content hash used as the match
// cache revision key: a 16-hex-digit fnv-1a digest over every field any
// built-in voter reads (element names, kinds, types, docs, structural
// edges, flags, and referenced coding schemes) in deterministic
// pre-order. Two schemas hash equal iff a matcher would see identical
// input for every element. Schema sets use it as the lockfile content
// hash so "did anything change" agrees exactly with what Rematch would
// recompute.
func SchemaHash(s *model.Schema) string {
	_, _, whole := schemaSignature(s)
	return whole
}

// corpusSignature hashes both schemas' preprocessed documentation bags
// in element order. Any difference means the TF-IDF corpus — and with
// it every IDF weight — changed, so corpus-sensitive voters cannot be
// patched.
func corpusSignature(ctx *match.Context) uint64 {
	h := fnv.New64a()
	for _, sch := range []*model.Schema{ctx.Source, ctx.Target} {
		for _, e := range sch.Elements() {
			for _, tok := range ctx.DocTokens(e) {
				h.Write([]byte(tok))
				h.Write([]byte{0})
			}
			h.Write([]byte{1})
		}
		h.Write([]byte{2})
	}
	return h.Sum64()
}

// mergerSignature hashes the merger configuration (performance weights
// and the magnitude toggle) so external SetWeight calls invalidate
// merged intermediates.
func mergerSignature(g *match.Merger) uint64 {
	h := fnv.New64a()
	if g.MagnitudeWeighting {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	weights := g.Weights()
	names := make([]string, 0, len(weights))
	for n := range weights {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
		fmt.Fprintf(h, "%x", weights[n])
	}
	return h.Sum64()
}

// cacheFingerprint identifies every engine option that shapes matrix
// content: panel composition, flooding schedule, stemming, thesaurus
// presence/size, and the caller's salt. Parallelism is excluded —
// results are bit-identical at any worker count, so sequential and
// parallel engines share entries.
func (e *Engine) cacheFingerprint() string {
	h := fnv.New64a()
	for _, v := range e.voters {
		h.Write([]byte(v.Name()))
		h.Write([]byte{0})
	}
	fmt.Fprintf(h, "flood=%t,%d,%x,%x;stem=%t;", e.flooding,
		e.floodOpt.Iterations, e.floodOpt.UpWeight, e.floodOpt.DownWeight, e.ctx.Stem)
	if e.blocking.Enabled {
		fmt.Fprintf(h, "blk=%d,%d,%x,%t;", e.blocking.PerSourceK,
			e.blocking.QGramSize, e.blocking.MaxPostingFrac, e.blocking.NoParentClosure)
	}
	if th := e.ctx.Thesaurus; th != nil {
		fmt.Fprintf(h, "th=%d;", th.Len())
	}
	h.Write([]byte(e.cacheSalt))
	return fmt.Sprintf("%016x", h.Sum64())
}

func voterCacheKey(srcHash, tgtHash, fp, voter string) string {
	return "v|" + srcHash + "|" + tgtHash + "|" + fp + "|" + voter
}

func mergedCacheKey(srcHash, tgtHash, fp string, mergerSig uint64) string {
	return "m|" + srcHash + "|" + tgtHash + "|" + fp + "|" + strconv.FormatUint(mergerSig, 16)
}

func patternCacheKey(srcHash, tgtHash, fp string) string {
	return "p|" + srcHash + "|" + tgtHash + "|" + fp
}
