package harmony

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/matchcache"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/registry"
)

// FuzzRematchEquivalence interprets the fuzz input as an edit script
// over a small schema pair: each byte picks an operation and its
// operand. After every step the incrementally re-matched matrix must be
// bit-identical to a cold full run — the same oracle as the seeded
// differential suite, but with adversarial scripts.
func FuzzRematchEquivalence(f *testing.F) {
	f.Add([]byte{0x00, 0x31, 0x57, 0x83})
	f.Add([]byte{0x10, 0x22, 0x44, 0x66, 0x88, 0xaa})
	f.Add([]byte{0xff, 0x01, 0xfe, 0x02, 0xfd})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 24 {
			script = script[:24] // keep each case cheap; depth comes from fuzzing
		}
		cfg := registry.DefaultConfig()
		cfg.Seed = 5
		cfg.Models = 1
		cfg.ElementsTotal = 4
		cfg.AttributesTotal = 14
		cfg.DomainValuesTotal = 20
		reg := registry.Generate(cfg)
		src := reg.Models[0]
		tgt, _ := registry.Perturb(src, registry.DefaultPerturb())

		cache := matchcache.New(1 << 22)
		cache.SetMetrics(obs.NewRegistry())
		live := NewEngine(src, tgt, Options{Flooding: true, Metrics: obs.NewRegistry(), Cache: cache})
		live.Run()

		for step, b := range script {
			side, sch := "src", src
			if b&0x08 != 0 {
				side, sch = "tgt", tgt
			}
			els := sch.Elements()
			if len(els) == 0 {
				continue
			}
			e := els[int(b>>4)%len(els)]
			switch b & 0x07 {
			case 0, 1:
				e.Name = fmt.Sprintf("%sF%d", e.Name, step)
			case 2:
				e.Doc = e.Doc + fmt.Sprintf(" fuzz%d", step)
			case 3:
				n := sch.AddElement(e, fmt.Sprintf("fz%d", step), model.KindAttribute, model.ContainsAttribute)
				n.DataType = "string"
			case 4:
				if len(els) > 6 {
					sch.RemoveElement(e.ID)
				}
			case 5:
				e.DataType = "integer"
			case 6:
				other := tgt
				if side == "tgt" {
					other = src
				}
				oels := other.Elements()
				if len(oels) == 0 {
					continue
				}
				o := oels[int(b>>4)%len(oels)]
				if side == "src" {
					_ = live.Accept(e.ID, o.ID)
				} else {
					_ = live.Accept(o.ID, e.ID)
				}
			default:
				e.Required = !e.Required
			}
			live.Rematch(Dirty{})

			cold := NewEngine(src, tgt, Options{Flooding: true, Metrics: obs.NewRegistry()})
			replayDecisions(live, cold)
			cold.Run()
			want, got := cold.Matrix(), live.Matrix()
			if len(want.Sources) != len(got.Sources) || len(want.Targets) != len(got.Targets) {
				t.Fatalf("step %d: dimensions %dx%d vs %dx%d", step,
					len(want.Sources), len(want.Targets), len(got.Sources), len(got.Targets))
			}
			for i := range want.Scores {
				for j := range want.Scores[i] {
					if math.Float64bits(want.Scores[i][j]) != math.Float64bits(got.Scores[i][j]) {
						t.Fatalf("step %d (op %#x, mode %s): cell (%s, %s): cold %v vs rematch %v",
							step, b, live.LastRematchMode(),
							want.Sources[i].ID, want.Targets[j].ID,
							want.Scores[i][j], got.Scores[i][j])
					}
				}
			}
		}
	})
}
