package harmony

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/registry"
)

// registryPair generates one synthetic registry model and perturbs it
// into a (source, target) pair — the same construction the evaluation
// harness and cmd/harmony's demo mode use.
func registryPair(entities, attributes, domainValues int) (*model.Schema, *model.Schema) {
	cfg := registry.DefaultConfig()
	cfg.Models = 1
	cfg.ElementsTotal = entities
	cfg.AttributesTotal = attributes
	cfg.DomainValuesTotal = domainValues
	reg := registry.Generate(cfg)
	src := reg.Models[0]
	tgt, _ := registry.Perturb(src, registry.DefaultPerturb())
	return src, tgt
}

// TestParallelRunMatchesSequential is the determinism golden test: on a
// registry-generated pair, the parallel pipeline must produce a merged
// matrix bit-identical to the sequential pipeline, and the StageTiming
// stage names must come back in the same (panel) order.
func TestParallelRunMatchesSequential(t *testing.T) {
	src, tgt := registryPair(10, 50, 70)
	seq := NewEngine(src, tgt, Options{Flooding: true, Parallelism: 1})
	par := NewEngine(src, tgt, Options{Flooding: true}) // 0 = GOMAXPROCS

	seqTimings := seq.Run()
	parTimings := par.Run()

	if len(seqTimings) != len(parTimings) {
		t.Fatalf("stage counts differ: %d vs %d", len(seqTimings), len(parTimings))
	}
	for i := range seqTimings {
		if seqTimings[i].Stage != parTimings[i].Stage {
			t.Errorf("stage %d: %q (seq) vs %q (par)", i, seqTimings[i].Stage, parTimings[i].Stage)
		}
	}

	sm, pm := seq.Matrix(), par.Matrix()
	if !reflect.DeepEqual(sm.Sources, pm.Sources) || !reflect.DeepEqual(sm.Targets, pm.Targets) {
		t.Fatal("matrix element orders differ")
	}
	for i := range sm.Scores {
		for j := range sm.Scores[i] {
			if sm.Scores[i][j] != pm.Scores[i][j] {
				t.Fatalf("cell (%d,%d): %v (seq) != %v (par)",
					i, j, sm.Scores[i][j], pm.Scores[i][j])
			}
		}
	}
}

// TestParallelRunRepeatable re-runs the parallel pipeline on one engine
// and demands bit-identical matrices every time — scheduling must never
// leak into scores.
func TestParallelRunRepeatable(t *testing.T) {
	src, tgt := registryPair(8, 40, 60)
	e := NewEngine(src, tgt, Options{Flooding: true})
	e.Run()
	want := e.Matrix().Clone()
	for round := 0; round < 5; round++ {
		e.Run()
		if !reflect.DeepEqual(want.Scores, e.Matrix().Scores) {
			t.Fatalf("round %d: matrix changed across identical runs", round)
		}
	}
}

// TestConcurrentEngineRuns runs two unrelated engines concurrently (they
// share nothing but package-level code and the default thesaurus) and
// checks both converge to their own reference matrices. Run under -race
// this guards the whole pipeline's shared-state hygiene.
func TestConcurrentEngineRuns(t *testing.T) {
	srcA, tgtA := registryPair(8, 40, 60)
	srcB, tgtB := registryPair(6, 30, 45)

	refA := NewEngine(srcA, tgtA, Options{Flooding: true, Parallelism: 1})
	refA.Run()
	refB := NewEngine(srcB, tgtB, Options{Flooding: true, Parallelism: 1})
	refB.Run()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src, tgt, ref := srcA, tgtA, refA
			if g%2 == 1 {
				src, tgt, ref = srcB, tgtB, refB
			}
			e := NewEngine(src, tgt, Options{Flooding: true, Metrics: obs.NewRegistry()})
			e.Run()
			if !reflect.DeepEqual(e.Matrix().Scores, ref.Matrix().Scores) {
				t.Errorf("engine %d diverged from its sequential reference", g)
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentRunAndLearn drives the Run → Accept → Learn → Run loop
// (which invalidates the vector cache between parallel runs) to exercise
// the lazily-rebuilt DocVector path under the concurrent voter panel.
func TestConcurrentRunAndLearn(t *testing.T) {
	src, tgt := registryPair(8, 40, 60)
	e := NewEngine(src, tgt, Options{Flooding: true, Metrics: obs.NewRegistry()})
	e.Run()
	sel := e.Matrix().StableMatching(0.25)
	for i, c := range sel {
		if i >= 4 {
			break
		}
		if err := e.Accept(c.Source.ID, c.Target.ID); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 3; round++ {
		e.Learn()
		e.Run()
	}
	for _, c := range sel[:min(4, len(sel))] {
		if e.Matrix().Get(c.Source.ID, c.Target.ID) != 1 {
			t.Errorf("pin lost across learn/run rounds: %s ↔ %s", c.Source.ID, c.Target.ID)
		}
	}
}

// TestParallelismGaugeAndWorkers checks the Options.Parallelism
// resolution (0 = GOMAXPROCS, 1 = sequential, n = n) and that Run
// publishes the resolved count on the harmony_parallelism gauge.
func TestParallelismGaugeAndWorkers(t *testing.T) {
	reg := obs.NewRegistry()
	e := NewEngine(poSource(), siTarget(), Options{Parallelism: 3, Metrics: reg})
	if e.Workers() != 3 {
		t.Errorf("Workers() = %d, want 3", e.Workers())
	}
	e.Run()
	m, ok := reg.Find(MetricParallelism)
	if !ok {
		t.Fatalf("%s not in registry", MetricParallelism)
	}
	if len(m.Series) != 1 || m.Series[0].Value != 3 {
		t.Errorf("%s = %+v, want 3", MetricParallelism, m)
	}

	if e := NewEngine(poSource(), siTarget(), Options{Parallelism: 1, Metrics: obs.NewRegistry()}); e.Workers() != 1 {
		t.Errorf("sequential Workers() = %d", e.Workers())
	}
	if e := NewEngine(poSource(), siTarget(), Options{Metrics: obs.NewRegistry()}); e.Workers() < 1 {
		t.Errorf("default Workers() = %d", e.Workers())
	}
}

// TestDecideDoesNotRunPipeline pins a pair on a fresh engine and checks
// no pipeline run happened as a side effect — validation now goes
// against the schemas, not Matrix().
func TestDecideDoesNotRunPipeline(t *testing.T) {
	reg := obs.NewRegistry()
	e := NewEngine(poSource(), siTarget(), Options{Metrics: reg})
	if err := e.Accept(firstID, nameID); err != nil {
		t.Fatal(err)
	}
	if runs, ok := reg.Find(MetricRuns); ok && len(runs.Series) > 0 && runs.Series[0].Value != 0 {
		t.Errorf("Accept triggered %v pipeline runs", runs.Series[0].Value)
	}
	// Root IDs are not matchable elements and must still be rejected.
	if err := e.Accept("purchaseOrder", nameID); err == nil {
		t.Error("schema root accepted as source element")
	}
	// The pin still lands once the pipeline does run.
	if got := e.Matrix().Get(firstID, nameID); got != 1 {
		t.Errorf("pin not applied on first run: %g", got)
	}
}
