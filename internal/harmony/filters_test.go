package harmony

import (
	"testing"

	"repro/internal/model"
)

func TestConfidenceFilter(t *testing.T) {
	e := newEngine(t)
	all := e.Links(View{})
	some := e.Links(View{LinkFilters: []LinkFilter{ConfidenceFilter(0.3)}})
	if len(some) >= len(all) {
		t.Errorf("threshold did not filter: %d vs %d", len(some), len(all))
	}
	for _, l := range some {
		if l.Confidence < 0.3 {
			t.Errorf("link below threshold: %v", l)
		}
	}
}

func TestOriginFilter(t *testing.T) {
	e := newEngine(t)
	_ = e.Accept(firstID, nameID)
	human := e.Links(View{LinkFilters: []LinkFilter{OriginFilter(true)}})
	if len(human) != 1 || !human[0].UserDefined {
		t.Errorf("human links = %v", human)
	}
	machine := e.Links(View{LinkFilters: []LinkFilter{OriginFilter(false)}})
	for _, l := range machine {
		if l.UserDefined {
			t.Error("machine view shows user link")
		}
	}
	if len(machine)+len(human) != len(e.Links(View{})) {
		t.Error("origin filters should partition links")
	}
}

func TestMaxConfidenceView(t *testing.T) {
	e := newEngine(t)
	links := e.Links(View{MaxConfidence: true})
	// One best link (or ties) per source element.
	perSource := map[string]float64{}
	counts := map[string]int{}
	for _, l := range links {
		counts[l.Source.ID]++
		if prev, ok := perSource[l.Source.ID]; ok && prev != l.Confidence {
			t.Error("non-tied multiple links for one source in max view")
		}
		perSource[l.Source.ID] = l.Confidence
	}
	if len(perSource) != 5 {
		t.Errorf("max view covers %d sources, want 5", len(perSource))
	}
}

func TestDepthFilterEntitiesOnly(t *testing.T) {
	e := newEngine(t)
	// Depth ≤ 2 on source: purchaseOrder (1), shipTo (2); attributes are
	// depth 3 and disabled.
	links := e.Links(View{SourceNodeFilters: []NodeFilter{DepthFilter(2)}})
	for _, l := range links {
		if l.Source.Depth() > 2 {
			t.Errorf("disabled element leaked: %s", l.Source.ID)
		}
	}
	if len(links) == 0 {
		t.Error("depth filter hid everything")
	}
}

func TestSubtreeFilter(t *testing.T) {
	e := newEngine(t)
	shipTo := e.Context().Source.MustElement(shipToID)
	links := e.Links(View{SourceNodeFilters: []NodeFilter{SubtreeFilter(shipTo)}})
	for _, l := range links {
		if !l.Source.InSubtree(shipTo) {
			t.Errorf("element outside subtree leaked: %s", l.Source.ID)
		}
	}
	// purchaseOrder (the parent) is excluded: 4 subtree sources × 3 targets.
	if len(links) != 12 {
		t.Errorf("links = %d, want 12", len(links))
	}
}

func TestKindFilterAndCombination(t *testing.T) {
	e := newEngine(t)
	links := e.Links(View{
		SourceNodeFilters: []NodeFilter{KindFilter(model.KindAttribute)},
		TargetNodeFilters: []NodeFilter{KindFilter(model.KindAttribute)},
		LinkFilters:       []LinkFilter{ConfidenceFilter(-0.5)},
	})
	for _, l := range links {
		if l.Source.Kind != model.KindAttribute || l.Target.Kind != model.KindAttribute {
			t.Errorf("kind filter leaked: %v", l)
		}
	}
	if len(links) == 0 {
		t.Error("combined filters hid everything")
	}
}

func TestFilterClutterReduction(t *testing.T) {
	// The §4.2 claim, measurable: filters cut displayed links massively.
	e := newEngine(t)
	all := len(e.Links(View{}))
	focused := len(e.Links(View{
		LinkFilters:   []LinkFilter{ConfidenceFilter(0.25)},
		MaxConfidence: true,
	}))
	if all != 15 {
		t.Errorf("unfiltered links = %d, want 5×3", all)
	}
	if focused >= all/2 {
		t.Errorf("filters reduced %d only to %d", all, focused)
	}
}
