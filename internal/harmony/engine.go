// Package harmony implements the Harmony schema matcher (paper §4): the
// match engine that bundles linguistic preprocessing, a panel of match
// voters, the magnitude/performance-weighted vote merger and the
// similarity-flooding variant — plus the headless equivalents of the GUI:
// link/node filters (§4.2), accept/reject decisions, learning from
// feedback, sub-tree completion and progress tracking (§4.3).
package harmony

import (
	"fmt"
	"time"

	"repro/internal/match"
	"repro/internal/model"
)

// pairKey identifies one (source, target) element pair by ID.
type pairKey struct{ src, tgt string }

// Decision is a user judgment on a pair: accepted pins the confidence at
// +1, rejected at -1 (paper §4.2: "links that were drawn by the
// integration engineer, or were explicitly marked as correct, have a
// confidence score of +1").
type Decision struct {
	Accepted bool
	// Time-ordering sequence, for provenance.
	Seq int
}

// Options configures an Engine.
type Options struct {
	// Voters is the match panel; nil means match.DefaultVoters().
	Voters []match.Voter
	// Flooding enables the structural adjustment stage (on by default
	// via NewEngine).
	Flooding bool
	// FloodOptions tunes the flooding stage.
	FloodOptions match.FloodOptions
	// ContextOptions customize linguistic preprocessing.
	ContextOptions []match.ContextOption
}

// Engine is one Harmony matching session over a (source, target) pair.
type Engine struct {
	ctx      *match.Context
	voters   []match.Voter
	merger   *match.Merger
	flooding bool
	floodOpt match.FloodOptions

	// lastVotes holds each voter's matrix from the most recent Run, used
	// by Learn.
	lastVotes []match.Vote
	// merged is the current confidence matrix including pinned decisions.
	merged *match.Matrix
	// decisions holds user accept/reject pins.
	decisions map[pairKey]Decision
	decSeq    int
	// complete marks source elements whose matching is finished (§4.3).
	complete map[string]bool
}

// NewEngine preprocesses the schema pair and returns a ready engine.
func NewEngine(source, target *model.Schema, opts Options) *Engine {
	voters := opts.Voters
	if voters == nil {
		voters = match.DefaultVoters()
	}
	return &Engine{
		ctx:       match.NewContext(source, target, opts.ContextOptions...),
		voters:    voters,
		merger:    match.NewMerger(),
		flooding:  opts.Flooding,
		floodOpt:  opts.FloodOptions,
		decisions: map[pairKey]Decision{},
		complete:  map[string]bool{},
	}
}

// Context exposes the linguistic context (for learning experiments).
func (e *Engine) Context() *match.Context { return e.ctx }

// Merger exposes the vote merger (for learned-weight inspection).
func (e *Engine) Merger() *match.Merger { return e.merger }

// StageTiming records how long one pipeline stage took — the Figure 1
// reproduction reports these.
type StageTiming struct {
	Stage    string
	Duration time.Duration
}

// Run executes the full match pipeline (Figure 1): every voter votes, the
// merger combines, flooding adjusts, and user decisions are re-applied as
// pinned ±1 scores. It returns per-stage timings.
func (e *Engine) Run() []StageTiming {
	var timings []StageTiming
	votes := make([]match.Vote, 0, len(e.voters))
	for _, v := range e.voters {
		t0 := time.Now()
		votes = append(votes, match.Vote{Voter: v.Name(), Matrix: v.Vote(e.ctx)})
		timings = append(timings, StageTiming{"voter:" + v.Name(), time.Since(t0)})
	}
	e.lastVotes = votes

	t0 := time.Now()
	merged := e.merger.Merge(votes)
	timings = append(timings, StageTiming{"merge", time.Since(t0)})

	if e.flooding {
		t0 = time.Now()
		merged = match.HarmonyFlood(merged, e.ctx.Source, e.ctx.Target, e.floodOpt)
		timings = append(timings, StageTiming{"flooding", time.Since(t0)})
	}

	// Re-apply pinned user decisions: "once a link has been accepted or
	// rejected, the engine will not try to modify that link" (§4.3).
	t0 = time.Now()
	for k, d := range e.decisions {
		v := -1.0
		if d.Accepted {
			v = 1.0
		}
		merged.Set(k.src, k.tgt, v)
	}
	timings = append(timings, StageTiming{"pin-decisions", time.Since(t0)})
	e.merged = merged
	return timings
}

// Matrix returns the current confidence matrix, running the pipeline
// first if it has never run.
func (e *Engine) Matrix() *match.Matrix {
	if e.merged == nil {
		e.Run()
	}
	return e.merged
}

// Accept pins a pair at +1.
func (e *Engine) Accept(srcID, tgtID string) error {
	return e.decide(srcID, tgtID, true)
}

// Reject pins a pair at -1.
func (e *Engine) Reject(srcID, tgtID string) error {
	return e.decide(srcID, tgtID, false)
}

func (e *Engine) decide(srcID, tgtID string, accepted bool) error {
	m := e.Matrix()
	if m.SourceIndex(srcID) < 0 {
		return fmt.Errorf("harmony: unknown source element %q", srcID)
	}
	if m.TargetIndex(tgtID) < 0 {
		return fmt.Errorf("harmony: unknown target element %q", tgtID)
	}
	e.decSeq++
	e.decisions[pairKey{srcID, tgtID}] = Decision{Accepted: accepted, Seq: e.decSeq}
	v := -1.0
	if accepted {
		v = 1.0
	}
	m.Set(srcID, tgtID, v)
	return nil
}

// Unpin removes a user decision, letting the engine re-score the pair on
// the next Run.
func (e *Engine) Unpin(srcID, tgtID string) {
	delete(e.decisions, pairKey{srcID, tgtID})
}

// IsUserDefined reports whether the pair carries a user decision — the
// is-user-defined annotation of §5.1.2.
func (e *Engine) IsUserDefined(srcID, tgtID string) bool {
	_, ok := e.decisions[pairKey{srcID, tgtID}]
	return ok
}

// Decisions returns a copy of all user decisions keyed by (src, tgt) IDs.
func (e *Engine) Decisions() map[[2]string]Decision {
	out := make(map[[2]string]Decision, len(e.decisions))
	for k, d := range e.decisions {
		out[[2]string{k.src, k.tgt}] = d
	}
	return out
}

// Learn updates the engine from accumulated decisions (§4.3): the merger
// re-weights voters by agreement with the user, and the documentation
// corpus re-weights words that proved predictive. Call Run afterwards to
// re-score with the learned parameters.
func (e *Engine) Learn() {
	if len(e.lastVotes) == 0 || len(e.decisions) == 0 {
		return
	}
	var fb []match.Feedback
	for k, d := range e.decisions {
		fb = append(fb, match.Feedback{SourceID: k.src, TargetID: k.tgt, Accepted: d.Accepted})
	}
	e.merger.LearnWeights(e.lastVotes, fb, 0.15)

	// Word-weight learning: words shared by accepted pairs' documentation
	// were predictive (upweight); words shared by rejected pairs misled
	// (downweight).
	srcByID := map[string]*model.Element{}
	for _, el := range e.ctx.Source.Elements() {
		srcByID[el.ID] = el
	}
	tgtByID := map[string]*model.Element{}
	for _, el := range e.ctx.Target.Elements() {
		tgtByID[el.ID] = el
	}
	for k, d := range e.decisions {
		s, t := srcByID[k.src], tgtByID[k.tgt]
		if s == nil || t == nil {
			continue
		}
		shared := intersectTokens(e.ctx.DocTokens(s), e.ctx.DocTokens(t))
		factor := 1.15
		if !d.Accepted {
			factor = 0.9
		}
		for _, w := range shared {
			e.ctx.Corpus.AdjustWordWeight(w, factor)
		}
	}
	e.ctx.InvalidateVectors()
}

func intersectTokens(a, b []string) []string {
	set := make(map[string]bool, len(a))
	for _, t := range a {
		set[t] = true
	}
	var out []string
	seen := map[string]bool{}
	for _, t := range b {
		if set[t] && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
