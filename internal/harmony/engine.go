// Package harmony implements the Harmony schema matcher (paper §4): the
// match engine that bundles linguistic preprocessing, a panel of match
// voters, the magnitude/performance-weighted vote merger and the
// similarity-flooding variant — plus the headless equivalents of the GUI:
// link/node filters (§4.2), accept/reject decisions, learning from
// feedback, sub-tree completion and progress tracking (§4.3).
package harmony

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/match"
	"repro/internal/matchcache"
	"repro/internal/model"
	"repro/internal/obs"
)

// pairKey identifies one (source, target) element pair by ID.
type pairKey struct{ src, tgt string }

// Decision is a user judgment on a pair: accepted pins the confidence at
// +1, rejected at -1 (paper §4.2: "links that were drawn by the
// integration engineer, or were explicitly marked as correct, have a
// confidence score of +1").
type Decision struct {
	Accepted bool
	// Time-ordering sequence, for provenance.
	Seq int
}

// Options configures an Engine.
type Options struct {
	// Voters is the match panel; nil means match.DefaultVoters().
	Voters []match.Voter
	// Flooding enables the structural adjustment stage (on by default
	// via NewEngine).
	Flooding bool
	// FloodOptions tunes the flooding stage.
	FloodOptions match.FloodOptions
	// ContextOptions customize linguistic preprocessing.
	ContextOptions []match.ContextOption
	// Metrics receives engine instrumentation (stage histograms, run
	// counter); nil means the process-wide obs.Default() registry.
	Metrics *obs.Registry
	// Blocking configures candidate generation (DESIGN.md §14). When
	// enabled, a blocking index prunes the source×target cross product to
	// a per-source top-K candidate pattern before any voter runs, and
	// every pipeline matrix is stored sparsely over that pattern. Off (the
	// zero value), the pipeline is bit-identical to the dense engine.
	Blocking match.BlockingOptions
	// Parallelism bounds the worker pool the pipeline fans out to: the
	// voter panel runs one goroutine per voter, each voter's pair sweep
	// and the flooding rounds shard matrix rows across the pool.
	// 0 = GOMAXPROCS, 1 = fully sequential (the historical behavior),
	// n = n workers. The merged matrix is bit-identical at any setting —
	// every cell is computed by exactly one goroutine on the same code
	// path — and StageTiming order stays the panel order. Custom voters
	// must tolerate concurrent Vote calls (read-only Context access) when
	// Parallelism != 1.
	Parallelism int
	// Cache, when non-nil, stores per-voter score matrices and the
	// merged/flooded intermediates across runs and across engines, keyed
	// by schema content hashes and an options fingerprint (DESIGN.md
	// §12). Cached matrices are shared and must be treated as immutable;
	// the engine never mutates them. Runs after Learn bypass the cache
	// entirely — learned corpus/merger state is not part of the key.
	Cache *matchcache.Cache
	// CacheSalt is folded into the cache fingerprint. Set it when engine
	// behavior differs in a way the fingerprint cannot see (for example,
	// a custom thesaurus whose content changes between runs).
	CacheSalt string
}

// Engine is one Harmony matching session over a (source, target) pair.
type Engine struct {
	ctx         *match.Context
	voters      []match.Voter
	merger      *match.Merger
	flooding    bool
	floodOpt    match.FloodOptions
	blocking    match.BlockingOptions
	metrics     *obs.Registry
	parallelism int

	// ctxOpts replays the caller's context options when Rematch rebuilds
	// the linguistic context after a schema edit.
	ctxOpts   []match.ContextOption
	cache     *matchcache.Cache
	cacheSalt string
	// learnGen counts Learn calls; learned corpus/merger state is not
	// content-addressable, so learnGen > 0 bypasses the cache and makes
	// Rematch fall back to a full run.
	learnGen int
	// snap is the recorded state of the last completed pipeline run —
	// what Rematch patches against.
	snap *runSnapshot
	// lastRematchMode records how the most recent Rematch resolved.
	lastRematchMode string

	// lastVotes holds each voter's matrix from the most recent Run, used
	// by Learn.
	lastVotes []match.Vote
	// merged is the current confidence matrix including pinned decisions.
	merged *match.Matrix
	// decisions holds user accept/reject pins.
	decisions map[pairKey]Decision
	decSeq    int
	// complete marks source elements whose matching is finished (§4.3).
	complete map[string]bool
}

// NewEngine preprocesses the schema pair and returns a ready engine.
func NewEngine(source, target *model.Schema, opts Options) *Engine {
	voters := opts.Voters
	if voters == nil {
		voters = match.DefaultVoters()
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = obs.Default()
	}
	metrics.Describe(MetricStageDuration, "Harmony pipeline stage wall-clock time, labeled by stage.")
	metrics.Describe(MetricRuns, "Completed Harmony pipeline runs.")
	metrics.Describe(MetricParallelism, "Resolved worker count of the most recent Harmony pipeline run.")
	// Options.Parallelism governs the whole pipeline, so it is applied
	// after the user's ContextOptions.
	ctxOpts := append(append([]match.ContextOption(nil), opts.ContextOptions...),
		match.WithParallelism(opts.Parallelism))
	floodOpt := opts.FloodOptions
	floodOpt.Parallelism = opts.Parallelism
	return &Engine{
		ctx:         match.NewContext(source, target, ctxOpts...),
		voters:      voters,
		merger:      match.NewMerger(),
		flooding:    opts.Flooding,
		floodOpt:    floodOpt,
		blocking:    opts.Blocking,
		metrics:     metrics,
		parallelism: opts.Parallelism,
		ctxOpts:     ctxOpts,
		cache:       opts.Cache,
		cacheSalt:   opts.CacheSalt,
		decisions:   map[pairKey]Decision{},
		complete:    map[string]bool{},
	}
}

// Metric names emitted by the engine (see DESIGN.md "Observability").
const (
	// MetricStageDuration is a histogram labeled stage="voter:<name>",
	// "merge", "flooding" or "pin-decisions" — the Figure 1 stages.
	MetricStageDuration = "harmony_stage_duration_seconds"
	// MetricRuns counts completed pipeline runs.
	MetricRuns = "harmony_runs_total"
	// MetricParallelism is a gauge holding the resolved worker count of
	// the most recent Run (1 = sequential).
	MetricParallelism = "harmony_parallelism"
)

// Context exposes the linguistic context (for learning experiments).
func (e *Engine) Context() *match.Context { return e.ctx }

// Merger exposes the vote merger (for learned-weight inspection).
func (e *Engine) Merger() *match.Merger { return e.merger }

// StageTiming records how long one pipeline stage took — the Figure 1
// reproduction reports these.
type StageTiming struct {
	Stage    string
	Duration time.Duration
}

// Workers resolves Options.Parallelism to the concrete worker count the
// pipeline fans out to (1 = sequential).
func (e *Engine) Workers() int { return match.ResolveWorkers(e.parallelism) }

// Run executes the full match pipeline (Figure 1): every voter votes, the
// merger combines, flooding adjusts, and user decisions are re-applied as
// pinned ±1 scores. It returns per-stage timings.
//
// Every stage is timed through an obs span, and the returned
// []StageTiming is derived from the tracer's finished spans — so the
// -timings output and the harmony_stage_duration_seconds histograms are
// two views of the same measurement and can never disagree. With
// Parallelism != 1 the voters run concurrently, so the sum of stage
// durations (CPU time) exceeds the run's wall-clock time; span order is
// normalized back to panel order so timings stay deterministic.
func (e *Engine) Run() []StageTiming {
	return e.RunContext(context.Background())
}

// RunContext is Run with request-trace propagation: when ctx carries a
// span (a server request), every stage span joins that trace with
// parent links, and cache lookups record their hit/miss inline — the
// stage histograms and StageTiming output are unchanged.
func (e *Engine) RunContext(ctx context.Context) []StageTiming {
	tr := obs.NewTracer(e.metrics, MetricStageDuration)
	tr.Bind(ctx)
	workers := e.Workers()
	e.metrics.Gauge(MetricParallelism).Set(float64(workers))

	// Content-addressed caching: schema hashes + options fingerprint name
	// each intermediate exactly, so a hit is bit-identical by
	// construction. Learned corpus/merger state is not part of the key,
	// hence the learnGen guard.
	useCache := e.cache != nil && e.learnGen == 0
	var snap runSnapshot
	snap.srcSig, snap.srcParent, snap.srcHash = schemaSignature(e.ctx.Source)
	snap.tgtSig, snap.tgtParent, snap.tgtHash = schemaSignature(e.ctx.Target)
	snap.corpusSig = corpusSignature(e.ctx)
	snap.mergerSig = mergerSignature(e.merger)
	snap.learnGen = e.learnGen
	var fp string
	if useCache {
		fp = e.cacheFingerprint()
	}

	// Blocking: build (or cache-fetch) the candidate pattern before any
	// voter runs; every matrix the pipeline allocates from here on is
	// sparse over it. A disabled blocking stage emits no span, keeping
	// dense -timings output identical to the pre-blocking engine.
	e.installCandidates(ctx, tr, snap.srcHash, snap.tgtHash, fp, useCache)

	// Voter panel: one goroutine per voter, bounded by the worker pool,
	// results collected positionally so lastVotes order — and therefore
	// the merger's input — is byte-identical to the sequential run.
	votes := make([]match.Vote, len(e.voters))
	runVoter := func(i int, v match.Voter) {
		sp := tr.Start("voter:" + v.Name())
		defer sp.End()
		if useCache {
			key := voterCacheKey(snap.srcHash, snap.tgtHash, fp, v.Name())
			if got, ok := e.cache.GetTraced(obs.ContextWithSpan(ctx, sp), key); ok {
				votes[i] = match.Vote{Voter: v.Name(), Matrix: got.(*match.Matrix)}
				return
			}
			m := v.Vote(e.ctx)
			e.cache.Put(key, m, match.MatrixBytes(m))
			votes[i] = match.Vote{Voter: v.Name(), Matrix: m}
			return
		}
		votes[i] = match.Vote{Voter: v.Name(), Matrix: v.Vote(e.ctx)}
	}
	if workers <= 1 || len(e.voters) <= 1 {
		for i, v := range e.voters {
			runVoter(i, v)
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, v := range e.voters {
			wg.Add(1)
			go func(i int, v match.Voter) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				runVoter(i, v)
			}(i, v)
		}
		wg.Wait()
	}
	e.lastVotes = votes
	snap.votes = votes

	// Merge + flooding, as one cached unit (the flood state rides along
	// so a later Rematch can warm-start from the recorded rounds).
	gotMerged := false
	if useCache {
		if got, ok := e.cache.GetTraced(ctx, mergedCacheKey(snap.srcHash, snap.tgtHash, fp, snap.mergerSig)); ok {
			me := got.(*mergedEntry)
			snap.premerge, snap.flood, snap.prepin = me.premerge, me.flood, me.prepin
			gotMerged = true
			// Keep the span sequence identical on the cache-hit path so
			// -timings always lists the same stages.
			tr.Start("merge").End()
			if e.flooding {
				tr.Start("flooding").End()
			}
		}
	}
	if !gotMerged {
		sp := tr.Start("merge")
		snap.premerge = e.merger.Merge(votes)
		sp.End()
		snap.prepin = snap.premerge
		if e.flooding {
			sp = tr.Start("flooding")
			snap.prepin, snap.flood = match.HarmonyFloodState(snap.premerge, e.ctx.Source, e.ctx.Target, e.floodOpt)
			sp.End()
		}
		if useCache {
			me := &mergedEntry{premerge: snap.premerge, flood: snap.flood, prepin: snap.prepin}
			e.cache.Put(mergedCacheKey(snap.srcHash, snap.tgtHash, fp, snap.mergerSig), me, me.bytes())
		}
	}

	// Re-apply pinned user decisions: "once a link has been accepted or
	// rejected, the engine will not try to modify that link" (§4.3).
	// Pins land on a clone — snap.prepin stays pristine (and possibly
	// shared through the cache) for incremental reuse.
	sp := tr.Start("pin-decisions")
	merged := snap.prepin.Clone()
	e.applyPins(merged)
	sp.End()
	e.merged = merged
	e.snap = &snap
	e.metrics.Counter(MetricRuns).Inc()

	// Concurrent voters finish in scheduler order; normalize the spans
	// back to pipeline order (panel, merge, flooding, pin-decisions) so
	// the returned timings are deterministic and identical between
	// sequential and parallel runs.
	return e.orderedTimings(tr)
}

// installCandidates builds (or cache-fetches) the blocking pattern over
// the engine's current context and installs it, so ctx.NewMatrix()
// allocates sparsely. No-op when blocking is off. The pattern is a
// deterministic function of the schema pair and the options fingerprint,
// so it shares the content-addressed cache discipline of the matrices
// computed over it.
func (e *Engine) installCandidates(ctx context.Context, tr *obs.Tracer, srcHash, tgtHash, fp string, useCache bool) {
	if !e.blocking.Enabled {
		return
	}
	sp := tr.Start("blocking")
	defer sp.End()
	if useCache {
		key := patternCacheKey(srcHash, tgtHash, fp)
		if got, ok := e.cache.GetTraced(obs.ContextWithSpan(ctx, sp), key); ok {
			e.ctx.SetCandidates(got.(*match.Pattern))
			return
		}
		pat := match.BuildCandidates(e.ctx, e.blocking)
		e.cache.Put(key, pat, pat.Bytes())
		e.ctx.SetCandidates(pat)
		return
	}
	e.ctx.SetCandidates(match.BuildCandidates(e.ctx, e.blocking))
}

// applyPins writes every user decision into m as a pinned ±1.
func (e *Engine) applyPins(m *match.Matrix) {
	for k, d := range e.decisions {
		v := -1.0
		if d.Accepted {
			v = 1.0
		}
		m.Set(k.src, k.tgt, v)
	}
}

// orderedTimings converts a tracer's finished spans to StageTimings in
// pipeline order (panel order, then merge/flooding/pin-decisions, with
// Rematch's extra stages leading).
func (e *Engine) orderedTimings(tr *obs.Tracer) []StageTiming {
	rank := make(map[string]int, len(e.voters)+6)
	rank["signatures"] = -3
	rank["context"] = -2
	rank["blocking"] = -1
	for i, v := range e.voters {
		rank["voter:"+v.Name()] = i
	}
	rank["merge"] = len(e.voters)
	rank["flooding"] = len(e.voters) + 1
	rank["pin-decisions"] = len(e.voters) + 2
	spans := tr.Finished()
	sort.SliceStable(spans, func(a, b int) bool { return rank[spans[a].Name] < rank[spans[b].Name] })
	timings := make([]StageTiming, len(spans))
	for i, rec := range spans {
		timings[i] = StageTiming{rec.Name, rec.Duration}
	}
	return timings
}

// Matrix returns the current confidence matrix, running the pipeline
// first if it has never run.
func (e *Engine) Matrix() *match.Matrix {
	if e.merged == nil {
		e.Run()
	}
	return e.merged
}

// Accept pins a pair at +1.
func (e *Engine) Accept(srcID, tgtID string) error {
	return e.decide(srcID, tgtID, true)
}

// Reject pins a pair at -1.
func (e *Engine) Reject(srcID, tgtID string) error {
	return e.decide(srcID, tgtID, false)
}

// decide records a user pin. IDs are validated against the schemas
// directly — validating through Matrix() would run the whole pipeline as
// a side effect on a fresh engine. The pin lands on the merged matrix
// immediately when one exists; otherwise the pin-decisions stage of the
// next Run applies it.
func (e *Engine) decide(srcID, tgtID string, accepted bool) error {
	if el := e.ctx.Source.Element(srcID); el == nil || el == e.ctx.Source.Root() {
		return fmt.Errorf("harmony: unknown source element %q", srcID)
	}
	if el := e.ctx.Target.Element(tgtID); el == nil || el == e.ctx.Target.Root() {
		return fmt.Errorf("harmony: unknown target element %q", tgtID)
	}
	e.decSeq++
	e.decisions[pairKey{srcID, tgtID}] = Decision{Accepted: accepted, Seq: e.decSeq}
	if e.merged != nil {
		v := -1.0
		if accepted {
			v = 1.0
		}
		e.merged.Set(srcID, tgtID, v)
	}
	return nil
}

// Unpin removes a user decision, letting the engine re-score the pair on
// the next Run.
func (e *Engine) Unpin(srcID, tgtID string) {
	delete(e.decisions, pairKey{srcID, tgtID})
}

// IsUserDefined reports whether the pair carries a user decision — the
// is-user-defined annotation of §5.1.2.
func (e *Engine) IsUserDefined(srcID, tgtID string) bool {
	_, ok := e.decisions[pairKey{srcID, tgtID}]
	return ok
}

// Decisions returns a copy of all user decisions keyed by (src, tgt) IDs.
func (e *Engine) Decisions() map[[2]string]Decision {
	out := make(map[[2]string]Decision, len(e.decisions))
	for k, d := range e.decisions {
		out[[2]string{k.src, k.tgt}] = d
	}
	return out
}

// Learn updates the engine from accumulated decisions (§4.3): the merger
// re-weights voters by agreement with the user, and the documentation
// corpus re-weights words that proved predictive. Call Run afterwards to
// re-score with the learned parameters.
func (e *Engine) Learn() {
	if len(e.lastVotes) == 0 || len(e.decisions) == 0 {
		return
	}
	var fb []match.Feedback
	for k, d := range e.decisions {
		fb = append(fb, match.Feedback{SourceID: k.src, TargetID: k.tgt, Accepted: d.Accepted})
	}
	e.merger.LearnWeights(e.lastVotes, fb, 0.15)
	// Learned state is invisible to the content-addressed cache keys, so
	// from here on this engine bypasses the cache and Rematch falls back
	// to full runs (see Options.Cache).
	e.learnGen++

	// Word-weight learning: words shared by accepted pairs' documentation
	// were predictive (upweight); words shared by rejected pairs misled
	// (downweight).
	srcByID := map[string]*model.Element{}
	for _, el := range e.ctx.Source.Elements() {
		srcByID[el.ID] = el
	}
	tgtByID := map[string]*model.Element{}
	for _, el := range e.ctx.Target.Elements() {
		tgtByID[el.ID] = el
	}
	for k, d := range e.decisions {
		s, t := srcByID[k.src], tgtByID[k.tgt]
		if s == nil || t == nil {
			continue
		}
		shared := intersectTokens(e.ctx.DocTokens(s), e.ctx.DocTokens(t))
		factor := 1.15
		if !d.Accepted {
			factor = 0.9
		}
		for _, w := range shared {
			e.ctx.Corpus.AdjustWordWeight(w, factor)
		}
	}
	e.ctx.InvalidateVectors()
}

func intersectTokens(a, b []string) []string {
	set := make(map[string]bool, len(a))
	for _, t := range a {
		set[t] = true
	}
	var out []string
	seen := map[string]bool{}
	for _, t := range b {
		if set[t] && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
