package harmony

import (
	"testing"

	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/obs"
)

// Figure 2 fixtures, shared across the harmony tests.

func poSource() *model.Schema {
	s := model.NewSchema("purchaseOrder", "xsd")
	po := s.AddElement(nil, "purchaseOrder", model.KindEntity, model.ContainsElement)
	po.Doc = "A purchase order submitted by a customer"
	shipTo := s.AddElement(po, "shipTo", model.KindEntity, model.ContainsElement)
	shipTo.Doc = "Shipping destination address for the order"
	fn := s.AddElement(shipTo, "firstName", model.KindAttribute, model.ContainsAttribute)
	fn.DataType = "string"
	fn.Doc = "Given name of the person receiving the shipment"
	ln := s.AddElement(shipTo, "lastName", model.KindAttribute, model.ContainsAttribute)
	ln.DataType = "string"
	ln.Doc = "Family name of the person receiving the shipment"
	st := s.AddElement(shipTo, "subtotal", model.KindAttribute, model.ContainsAttribute)
	st.DataType = "decimal"
	st.Doc = "Sum of line item prices before tax"
	return s
}

func siTarget() *model.Schema {
	s := model.NewSchema("shippingInfo", "xsd")
	si := s.AddElement(nil, "shippingInfo", model.KindEntity, model.ContainsElement)
	si.Doc = "Information about where an order ships"
	nm := s.AddElement(si, "name", model.KindAttribute, model.ContainsAttribute)
	nm.DataType = "string"
	nm.Doc = "Full name of the shipment recipient"
	tot := s.AddElement(si, "total", model.KindAttribute, model.ContainsAttribute)
	tot.DataType = "decimal"
	tot.Doc = "Total price of the order including tax"
	return s
}

const (
	shipToID   = "purchaseOrder/purchaseOrder/shipTo"
	firstID    = "purchaseOrder/purchaseOrder/shipTo/firstName"
	lastID     = "purchaseOrder/purchaseOrder/shipTo/lastName"
	subtotalID = "purchaseOrder/purchaseOrder/shipTo/subtotal"
	siID       = "shippingInfo/shippingInfo"
	nameID     = "shippingInfo/shippingInfo/name"
	totalID    = "shippingInfo/shippingInfo/total"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	return NewEngine(poSource(), siTarget(), Options{Flooding: true})
}

func TestRunProducesSensibleScores(t *testing.T) {
	e := newEngine(t)
	timings := e.Run()
	if len(timings) < 8 { // 6 voters + merge + flooding + pin
		t.Errorf("timings = %d stages", len(timings))
	}
	m := e.Matrix()
	// The Figure 3 intuition: shipTo↔shippingInfo positive; shipTo vs
	// name/total (entity vs attribute) negative.
	if got := m.Get(shipToID, siID); got <= 0 {
		t.Errorf("shipTo↔shippingInfo = %g, want positive", got)
	}
	if got := m.Get(shipToID, nameID); got >= 0 {
		t.Errorf("shipTo↔name = %g, want negative", got)
	}
	// subtotal↔total should beat firstName↔total.
	if m.Get(subtotalID, totalID) <= m.Get(firstID, totalID) {
		t.Error("subtotal should prefer total over firstName")
	}
}

func TestMatrixLazyRun(t *testing.T) {
	e := newEngine(t)
	if e.Matrix() == nil {
		t.Fatal("Matrix should auto-run")
	}
}

func TestAcceptRejectPinning(t *testing.T) {
	e := newEngine(t)
	if err := e.Accept(firstID, nameID); err != nil {
		t.Fatal(err)
	}
	if err := e.Reject(firstID, totalID); err != nil {
		t.Fatal(err)
	}
	m := e.Matrix()
	if m.Get(firstID, nameID) != 1 || m.Get(firstID, totalID) != -1 {
		t.Error("decisions not pinned at ±1")
	}
	if !e.IsUserDefined(firstID, nameID) || e.IsUserDefined(lastID, nameID) {
		t.Error("user-defined tracking wrong")
	}
	// Pins survive re-runs (§4.3: links do not mysteriously disappear).
	e.Run()
	m = e.Matrix()
	if m.Get(firstID, nameID) != 1 || m.Get(firstID, totalID) != -1 {
		t.Error("decisions lost after re-run")
	}
}

func TestDecideErrors(t *testing.T) {
	e := newEngine(t)
	if err := e.Accept("ghost", nameID); err == nil {
		t.Error("unknown source should error")
	}
	if err := e.Reject(firstID, "ghost"); err == nil {
		t.Error("unknown target should error")
	}
}

func TestUnpin(t *testing.T) {
	e := newEngine(t)
	_ = e.Accept(firstID, nameID)
	e.Unpin(firstID, nameID)
	e.Run()
	if e.Matrix().Get(firstID, nameID) == 1 {
		t.Error("unpinned pair should be re-scored")
	}
	if e.IsUserDefined(firstID, nameID) {
		t.Error("unpinned pair should not be user-defined")
	}
}

func TestDecisionsCopy(t *testing.T) {
	e := newEngine(t)
	_ = e.Accept(firstID, nameID)
	d := e.Decisions()
	if len(d) != 1 || !d[[2]string{firstID, nameID}].Accepted {
		t.Errorf("Decisions = %v", d)
	}
}

func TestLearnAdjustsVoterWeights(t *testing.T) {
	e := newEngine(t)
	e.Run()
	// Confirm pairs the name and doc voters favored.
	_ = e.Accept(shipToID, siID)
	_ = e.Accept(subtotalID, totalID)
	_ = e.Reject(firstID, totalID)
	before := e.Merger().Weight("name")
	e.Learn()
	after := e.Merger().Weight("name")
	if after == before {
		t.Errorf("name voter weight unchanged after learning: %g", after)
	}
}

func TestLearnNoOpWithoutRunsOrDecisions(t *testing.T) {
	e := newEngine(t)
	e.Learn() // no votes yet: must not panic
	e.Run()
	e.Learn() // no decisions: no-op
	if w := e.Merger().Weight("name"); w != 1 {
		t.Errorf("weight moved without feedback: %g", w)
	}
}

func TestLearnWordWeights(t *testing.T) {
	e := newEngine(t)
	e.Run()
	// firstName's and name's docs share recipient/name/shipment words.
	_ = e.Accept(firstID, nameID)
	e.Learn()
	// A shared predictive word got upweighted; "shipment" appears in
	// firstName's doc and name's doc.
	if w := e.Context().Corpus.WordWeight("shipment"); w <= 1 {
		// tokens are stemmed: check the stem too
		if w2 := e.Context().Corpus.WordWeight("recipi"); w2 <= 1 {
			t.Errorf("no shared doc word upweighted (shipment=%g, recipi=%g)", w, w2)
		}
	}
}

func TestIterativeLearningIsGentleAndPreservesRanking(t *testing.T) {
	// §4.3: "learning new weights must be done carefully". One round of
	// feedback must not swing related scores wildly, and the correct
	// target must stay top-ranked for the related element.
	e := newEngine(t)
	e.Run()
	before := e.Matrix().Get(lastID, nameID)
	_ = e.Accept(firstID, nameID) // related pair shares doc vocabulary
	e.Learn()
	e.Run()
	after := e.Matrix().Get(lastID, nameID)
	if diff := after - before; diff < -0.15 || diff > 0.5 {
		t.Errorf("learning swung related pair too hard: %g → %g", before, after)
	}
	m := e.Matrix()
	if m.Get(lastID, nameID) <= m.Get(lastID, totalID) {
		t.Error("correct target no longer top-ranked for lastName")
	}
}

func TestStageTimingsCoverVoters(t *testing.T) {
	e := NewEngine(poSource(), siTarget(), Options{
		Voters:   []match.Voter{match.NameVoter{}, match.DocVoter{}},
		Flooding: false,
	})
	timings := e.Run()
	names := map[string]bool{}
	for _, st := range timings {
		names[st.Stage] = true
	}
	for _, want := range []string{"voter:name", "voter:documentation", "merge", "pin-decisions"} {
		if !names[want] {
			t.Errorf("missing stage %q in %v", want, names)
		}
	}
	if names["flooding"] {
		t.Error("flooding stage present though disabled")
	}
}

func TestRunTimingsAgreeWithMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	e := NewEngine(poSource(), siTarget(), Options{Flooding: true, Metrics: reg})
	timings := e.Run()
	timings = append(timings, e.Run()...)

	hist, ok := reg.Find(MetricStageDuration)
	if !ok {
		t.Fatalf("%s not in registry", MetricStageDuration)
	}
	// Sum the timings per stage and compare against the histogram sums:
	// both must describe the identical measurements.
	wantSum := map[string]float64{}
	for _, st := range timings {
		wantSum[st.Stage] += st.Duration.Seconds()
	}
	gotSum := map[string]float64{}
	for _, s := range hist.Series {
		if s.Count != 2 {
			t.Errorf("stage %q observed %d times, want 2", s.Labels["stage"], s.Count)
		}
		gotSum[s.Labels["stage"]] = s.Sum
	}
	if len(gotSum) != len(wantSum) {
		t.Fatalf("stage sets differ: metrics %v vs timings %v", gotSum, wantSum)
	}
	for stage, want := range wantSum {
		got, ok := gotSum[stage]
		if !ok {
			t.Errorf("stage %q missing from metrics", stage)
			continue
		}
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("stage %q: metric sum %v != timing sum %v", stage, got, want)
		}
	}
	if runs, _ := reg.Find(MetricRuns); len(runs.Series) != 1 || runs.Series[0].Value != 2 {
		t.Errorf("%s = %+v, want 2", MetricRuns, runs)
	}
	// Every voter plus merge, flooding and pin-decisions must be present.
	for _, want := range []string{"voter:name", "voter:documentation", "merge", "flooding", "pin-decisions"} {
		if _, ok := wantSum[want]; !ok {
			t.Errorf("stage %q missing from timings", want)
		}
	}
}
