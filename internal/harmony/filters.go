package harmony

import (
	"repro/internal/match"
	"repro/internal/model"
)

// Filters are the headless equivalents of the Harmony GUI's clutter
// controls (paper §4.2): link filters decide whether a candidate
// correspondence is displayed; node filters decide whether a schema
// element is enabled ("a disabled element is grayed out and its links are
// not displayed").

// Link augments a correspondence with its display metadata.
type Link struct {
	match.Correspondence
	// UserDefined reports whether the confidence was pinned by the user.
	UserDefined bool
}

// LinkFilter is a predicate over candidate links.
type LinkFilter func(Link) bool

// NodeFilter is a predicate over schema elements; false disables the
// element and hides its links.
type NodeFilter func(*model.Element) bool

// ConfidenceFilter keeps links whose confidence is at least threshold —
// the paper's confidence slider.
func ConfidenceFilter(threshold float64) LinkFilter {
	return func(l Link) bool { return l.Confidence >= threshold }
}

// OriginFilter keeps either human-generated or machine-suggested links —
// the paper's second link filter.
func OriginFilter(humanOnly bool) LinkFilter {
	return func(l Link) bool { return l.UserDefined == humanOnly }
}

// DepthFilter enables elements at the given depth or above (closer to the
// root) — the paper's example: "using this filter, the engineer can focus
// exclusively on matching entities".
func DepthFilter(maxDepth int) NodeFilter {
	return func(e *model.Element) bool { return e.Depth() <= maxDepth }
}

// SubtreeFilter enables only elements inside the subtree rooted at root —
// "focus one's attention on the 'Facility' sub-schema".
func SubtreeFilter(root *model.Element) NodeFilter {
	return func(e *model.Element) bool { return e.InSubtree(root) }
}

// KindFilter enables only elements of the given kind.
func KindFilter(k model.Kind) NodeFilter {
	return func(e *model.Element) bool { return e.Kind == k }
}

// View selects which links are displayed. MaxConfidence applies the
// paper's third link filter: per enabled source element, only the
// maximal-confidence link(s) survive (ties possible).
type View struct {
	LinkFilters []LinkFilter
	// SourceNodeFilters and TargetNodeFilters disable elements per side.
	SourceNodeFilters []NodeFilter
	TargetNodeFilters []NodeFilter
	// MaxConfidence keeps only each source element's best link(s).
	MaxConfidence bool
}

// Links returns the links the view displays, in matrix row-major order.
func (e *Engine) Links(v View) []Link {
	m := e.Matrix()
	enabledSrc := make([]bool, len(m.Sources))
	for i, s := range m.Sources {
		enabledSrc[i] = nodeEnabled(s, v.SourceNodeFilters)
	}
	enabledTgt := make([]bool, len(m.Targets))
	for j, t := range m.Targets {
		enabledTgt[j] = nodeEnabled(t, v.TargetNodeFilters)
	}

	var out []Link
	for i, s := range m.Sources {
		if !enabledSrc[i] {
			continue
		}
		rowBest := -2.0
		if v.MaxConfidence {
			for j := range m.Targets {
				if enabledTgt[j] && m.At(i, j) > rowBest {
					rowBest = m.At(i, j)
				}
			}
		}
		for j, t := range m.Targets {
			if !enabledTgt[j] {
				continue
			}
			if v.MaxConfidence && m.At(i, j) < rowBest {
				continue
			}
			l := Link{
				Correspondence: match.Correspondence{Source: s, Target: t, Confidence: m.At(i, j)},
				UserDefined:    e.IsUserDefined(s.ID, t.ID),
			}
			if !linkPasses(l, v.LinkFilters) {
				continue
			}
			out = append(out, l)
		}
	}
	return out
}

func nodeEnabled(e *model.Element, fs []NodeFilter) bool {
	for _, f := range fs {
		if !f(e) {
			return false
		}
	}
	return true
}

func linkPasses(l Link, fs []LinkFilter) bool {
	for _, f := range fs {
		if !f(l) {
			return false
		}
	}
	return true
}
