// Package workspace partitions one workbench service into isolated
// tenants. Each workspace owns a full engine bundle — blackboard,
// workbench manager, and (when durable) a private WAL partition under
// <data-dir>/ws/<name>/ — while process-wide resources (the match
// cache, whose keys are content-addressed, and the metrics registry,
// which gains a `workspace` label per tenant) stay shared. The manager
// recovers every partition on boot, adopts a pre-workspace data dir as
// the `default` tenant, lazily reopens idle-closed stores on first
// touch, and folds idle partitions back into snapshots after a TTL.
package workspace

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"repro/internal/blackboard"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/wal"
	"repro/internal/wbmgr"
)

// DefaultName is the tenant behind every bare (un-prefixed) API route
// and every pre-workspace on-disk layout.
const DefaultName = "default"

// DefaultIdleTTL is how long a non-default workspace's WAL store stays
// open without traffic before the sweeper folds and closes it.
const DefaultIdleTTL = 15 * time.Minute

// nameRe bounds workspace names to path- and label-safe tokens. The
// leading class keeps ".." (and hidden dirs) impossible.
var nameRe = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]{0,63}$`)

// ValidName reports whether name is an acceptable workspace name.
func ValidName(name string) bool { return nameRe.MatchString(name) }

// Quota bounds one workspace. Zero fields mean unlimited.
type Quota struct {
	// MaxTriples caps the workspace's blackboard size; a transaction
	// that would exceed it is rolled back.
	MaxTriples int `json:"max_triples,omitempty"`
	// MaxWALBytes refuses new transactions while the workspace's WAL
	// log segment is at or over this size (a snapshot fold resets it).
	MaxWALBytes int64 `json:"max_wal_bytes,omitempty"`
}

// QuotaError reports which named limit a request hit; the server maps
// it to 429.
type QuotaError struct {
	Workspace string
	Limit     string // "max_triples" or "max_wal_bytes"
	Max       int64
	Observed  int64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("workspace %q over quota %s: %d exceeds limit %d",
		e.Workspace, e.Limit, e.Observed, e.Max)
}

// Options assembles a Manager.
type Options struct {
	// Root is the service data directory; workspace partitions live
	// under Root/ws/<name>/. Empty means every workspace is in-memory.
	Root string
	// SnapshotEvery and ReplBufferTxns forward to wal.Options for every
	// partition (0 = the wal defaults).
	SnapshotEvery  int
	ReplBufferTxns int
	// Metrics is the process-wide registry. Every workspace gets a
	// WithLabels("workspace", name) view of it. nil = obs.Default().
	Metrics *obs.Registry
	// IdleTTL is how long a non-default workspace's store may sit idle
	// before being folded closed (0 = DefaultIdleTTL, negative =
	// never close).
	IdleTTL time.Duration
	// DefaultQuota applies to workspaces created without an explicit
	// quota (including recovered and default ones).
	DefaultQuota Quota
	// OnOpen is called (under the manager lock) for every workspace as
	// it is opened or created, before it is visible to Get. The server
	// uses it to attach per-tenant request state and subscriptions. An
	// error aborts the open.
	OnOpen func(ws *Workspace) error
}

// Manager owns the tenant table.
type Manager struct {
	opts Options
	reg  *obs.Registry

	mu     sync.Mutex
	wss    map[string]*Workspace
	closed bool

	sweepStop chan struct{}
	sweepDone chan struct{}
}

// NewManager scans Root/ws/* (adopting a legacy flat layout as the
// default partition first), opens every workspace found, and always
// ends with a live default workspace.
func NewManager(opts Options) (*Manager, error) {
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	m := &Manager{opts: opts, reg: reg, wss: map[string]*Workspace{}}
	m.mu.Lock()
	defer m.mu.Unlock()
	if opts.Root != "" {
		if err := adoptLegacy(opts.Root); err != nil {
			return nil, err
		}
		wsRoot := filepath.Join(opts.Root, "ws")
		if err := os.MkdirAll(wsRoot, 0o755); err != nil {
			return nil, err
		}
		entries, err := os.ReadDir(wsRoot)
		if err != nil {
			return nil, err
		}
		for _, ent := range entries {
			if !ent.IsDir() {
				continue
			}
			if _, err := m.openLocked(ent.Name(), opts.DefaultQuota); err != nil {
				m.closeLocked()
				return nil, fmt.Errorf("workspace %q: %w", ent.Name(), err)
			}
		}
	}
	if _, ok := m.wss[DefaultName]; !ok {
		if _, err := m.openLocked(DefaultName, opts.DefaultQuota); err != nil {
			m.closeLocked()
			return nil, err
		}
	}
	ttl := opts.IdleTTL
	if ttl == 0 {
		ttl = DefaultIdleTTL
	}
	if opts.Root != "" && ttl > 0 {
		m.sweepStop = make(chan struct{})
		m.sweepDone = make(chan struct{})
		go m.sweepLoop(ttl)
	}
	return m, nil
}

// adoptLegacy moves a pre-workspace flat data dir (snapshot.nt, wal.log,
// wal.header at the top level) into ws/default/ so old deployments come
// up as the default tenant with history intact.
func adoptLegacy(root string) error {
	defDir := filepath.Join(root, "ws", DefaultName)
	if _, err := os.Stat(defDir); err == nil {
		return nil // already partitioned
	}
	legacy := []string{wal.SnapshotFile, wal.LogFile, wal.HeaderFile}
	found := false
	for _, f := range legacy {
		if _, err := os.Stat(filepath.Join(root, f)); err == nil {
			found = true
			break
		}
	}
	if !found {
		return nil
	}
	if err := os.MkdirAll(defDir, 0o755); err != nil {
		return err
	}
	for _, f := range legacy {
		src := filepath.Join(root, f)
		if _, err := os.Stat(src); err != nil {
			continue
		}
		if err := os.Rename(src, filepath.Join(defDir, f)); err != nil {
			return fmt.Errorf("adopting legacy data dir: %w", err)
		}
	}
	return nil
}

// openLocked builds (and wires) one workspace; m.mu must be held.
func (m *Manager) openLocked(name string, q Quota) (*Workspace, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("invalid workspace name %q (want %s)", name, nameRe)
	}
	if _, ok := m.wss[name]; ok {
		return nil, fmt.Errorf("workspace %q already exists", name)
	}
	wsReg := m.reg.WithLabels("workspace", name)
	ws := &Workspace{
		name:  name,
		reg:   wsReg,
		quota: q,
		walOpts: wal.Options{
			SnapshotEvery:  m.opts.SnapshotEvery,
			ReplBufferTxns: m.opts.ReplBufferTxns,
			Metrics:        wsReg,
		},
		lastTouch: time.Now(),
	}
	if m.opts.Root != "" {
		ws.dir = filepath.Join(m.opts.Root, "ws", name)
		if err := os.MkdirAll(ws.dir, 0o755); err != nil {
			return nil, err
		}
		store, err := wal.Open(ws.dir, ws.walOpts)
		if err != nil {
			return nil, err
		}
		ws.store = store
		ws.recovery = store.Stats().String()
		ws.openHighWater = store.LastTxn()
		ws.lastTxn = store.LastTxn()
		ws.bb = blackboard.NewFromGraph(store.Graph())
	} else {
		ws.bb = blackboard.New()
	}
	ws.bb.SetMetrics(wsReg)
	ws.mgr = wbmgr.NewWith(ws.bb)
	ws.mgr.SetMetrics(wsReg)
	if ws.dir != "" {
		// Durability gate: every committed transaction reaches this
		// workspace's WAL partition (and fsync) before Commit returns.
		ws.mgr.SetCommitHook(func(ctx context.Context, _ string, ops []rdf.ChangeOp) error {
			return ws.AppendTxn(ctx, ops)
		})
	}
	if m.opts.OnOpen != nil {
		if err := m.opts.OnOpen(ws); err != nil {
			if ws.store != nil {
				ws.store.Close()
			}
			return nil, err
		}
	}
	m.wss[name] = ws
	return ws, nil
}

// Get returns the named workspace. It never creates one: unknown names
// are the caller's 404.
func (m *Manager) Get(name string) (*Workspace, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ws, ok := m.wss[name]
	return ws, ok
}

// Default returns the default workspace (always present).
func (m *Manager) Default() *Workspace {
	ws, _ := m.Get(DefaultName)
	return ws
}

// Create adds a new workspace. A zero quota inherits the manager's
// default quota.
func (m *Manager) Create(name string, q Quota) (*Workspace, error) {
	if q == (Quota{}) {
		q = m.opts.DefaultQuota
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("workspace manager closed")
	}
	return m.openLocked(name, q)
}

// Ensure returns the named workspace, creating it if absent — used by
// the replica supervisor mirroring the primary's tenant table, never by
// request routing.
func (m *Manager) Ensure(name string, q Quota) (*Workspace, error) {
	if ws, ok := m.Get(name); ok {
		return ws, nil
	}
	ws, err := m.Create(name, q)
	if err != nil {
		if ws, ok := m.Get(name); ok { // lost a create race
			return ws, nil
		}
		return nil, err
	}
	return ws, nil
}

// Delete removes a workspace and its partition from disk. The default
// workspace is load-bearing (it backs every bare /v1 route) and cannot
// be deleted.
func (m *Manager) Delete(name string) error {
	if name == DefaultName {
		return fmt.Errorf("workspace %q cannot be deleted", DefaultName)
	}
	m.mu.Lock()
	ws, ok := m.wss[name]
	if ok {
		delete(m.wss, name)
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("workspace %q not found", name)
	}
	ws.storeMu.Lock()
	if ws.store != nil {
		ws.store.Close()
		ws.store = nil
	}
	ws.deleted = true
	ws.storeMu.Unlock()
	if ws.dir != "" {
		return os.RemoveAll(ws.dir)
	}
	return nil
}

// List returns every workspace sorted by name.
func (m *Manager) List() []*Workspace {
	m.mu.Lock()
	out := make([]*Workspace, 0, len(m.wss))
	for _, ws := range m.wss {
		out = append(out, ws)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Names returns every workspace name, sorted.
func (m *Manager) Names() []string {
	wss := m.List()
	out := make([]string, len(wss))
	for i, ws := range wss {
		out[i] = ws.name
	}
	return out
}

func (m *Manager) sweepLoop(ttl time.Duration) {
	defer close(m.sweepDone)
	tick := ttl / 4
	if tick < time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.sweepStop:
			return
		case <-t.C:
			m.SweepIdle(time.Now(), ttl)
		}
	}
}

// SweepIdle folds and closes the store of every non-default workspace
// untouched for at least ttl, returning how many it closed. The default
// workspace stays open: it carries the node's replication epoch header
// and every bare-route client. Exported so tests can drive the sweep
// deterministically.
func (m *Manager) SweepIdle(now time.Time, ttl time.Duration) int {
	closed := 0
	for _, ws := range m.List() {
		if ws.name == DefaultName {
			continue
		}
		if ws.closeIfIdle(now, ttl) {
			closed++
		}
	}
	return closed
}

// Close stops the sweeper and folds every open store.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	stop, done := m.sweepStop, m.sweepDone
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closeLocked()
}

func (m *Manager) closeLocked() error {
	var first error
	for _, ws := range m.wss {
		if err := ws.CloseStore(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
