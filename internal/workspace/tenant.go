package workspace

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/blackboard"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/wal"
	"repro/internal/wbmgr"
)

// Workspace is one isolated tenant: its own blackboard, workbench
// manager, and WAL partition. The exported TxnMu serializes the
// tenant's mutating transactions — per workspace, not process-wide, so
// tenants never queue behind each other's commits.
type Workspace struct {
	name    string
	dir     string // "" when the service runs in-memory
	reg     *obs.Registry
	bb      *blackboard.Blackboard
	mgr     *wbmgr.Manager
	walOpts wal.Options

	recovery      string // recovery summary from the boot-time open
	openHighWater uint64 // txn high-water mark at the boot-time open

	// TxnMu serializes this workspace's mutating API requests: the
	// manager allows one active transaction, so concurrent writers
	// queue here rather than bouncing off ErrTxnActive.
	TxnMu sync.Mutex

	quotaMu sync.Mutex
	quota   Quota

	// storeMu guards the store handle lifecycle (lazy reopen, idle
	// close) and is held across appends so a fold can never race a
	// write.
	storeMu   sync.Mutex
	store     *wal.Store
	lastTouch time.Time
	lastTxn   uint64 // high-water cache, authoritative while store == nil
	deleted   bool

	// Ext hangs arbitrary per-tenant state off the workspace; the
	// server keeps its sessions, match engines and event feed here.
	Ext any
}

// Name returns the workspace name.
func (w *Workspace) Name() string { return w.name }

// Dir returns the partition directory ("" when in-memory).
func (w *Workspace) Dir() string { return w.dir }

// Durable reports whether the workspace has a WAL partition.
func (w *Workspace) Durable() bool { return w.dir != "" }

// Metrics returns the workspace-labeled registry view.
func (w *Workspace) Metrics() *obs.Registry { return w.reg }

// Blackboard returns the tenant's blackboard.
func (w *Workspace) Blackboard() *blackboard.Blackboard { return w.bb }

// Manager returns the tenant's workbench manager.
func (w *Workspace) Manager() *wbmgr.Manager { return w.mgr }

// Recovery returns the boot-time recovery summary ("" when in-memory).
func (w *Workspace) Recovery() string { return w.recovery }

// OpenHighWater returns the txn high-water mark recovered at boot; the
// server seeds session-ID sequences from it so post-restart IDs never
// collide with pre-restart ones.
func (w *Workspace) OpenHighWater() uint64 { return w.openHighWater }

// Quota returns the current quota.
func (w *Workspace) Quota() Quota {
	w.quotaMu.Lock()
	defer w.quotaMu.Unlock()
	return w.quota
}

// SetQuota replaces the quota.
func (w *Workspace) SetQuota(q Quota) {
	w.quotaMu.Lock()
	w.quota = q
	w.quotaMu.Unlock()
}

// Touch marks the workspace as in use, deferring the idle sweep.
func (w *Workspace) Touch() {
	w.storeMu.Lock()
	w.lastTouch = time.Now()
	w.storeMu.Unlock()
}

// Store returns the open WAL store, lazily reopening one that the idle
// sweeper folded closed. Returns (nil, nil) for in-memory workspaces.
func (w *Workspace) Store() (*wal.Store, error) {
	w.storeMu.Lock()
	defer w.storeMu.Unlock()
	return w.storeLocked()
}

// StoreIfOpen returns the store handle only if currently open.
func (w *Workspace) StoreIfOpen() *wal.Store {
	w.storeMu.Lock()
	defer w.storeMu.Unlock()
	return w.store
}

// storeLocked reopens the partition if needed; storeMu must be held.
// The reopened store recovers its own graph copy, which is then
// discarded in favor of the still-live blackboard graph (equal content:
// the close folded every committed txn, and writes require an open
// store), so feeds and engines keep their object identity.
func (w *Workspace) storeLocked() (*wal.Store, error) {
	if w.deleted {
		return nil, fmt.Errorf("workspace %q deleted", w.name)
	}
	w.lastTouch = time.Now()
	if w.store != nil || w.dir == "" {
		return w.store, nil
	}
	store, err := wal.Open(w.dir, w.walOpts)
	if err != nil {
		return nil, fmt.Errorf("reopening workspace %q: %w", w.name, err)
	}
	store.SetGraph(w.bb.Graph())
	w.store = store
	w.lastTxn = store.LastTxn()
	return store, nil
}

// AppendTxn durably logs one committed transaction to the partition.
// It holds storeMu for the duration so an idle fold cannot race the
// append.
func (w *Workspace) AppendTxn(ctx context.Context, ops []rdf.ChangeOp) error {
	w.storeMu.Lock()
	defer w.storeMu.Unlock()
	store, err := w.storeLocked()
	if err != nil {
		return err
	}
	if store == nil {
		return nil
	}
	if err := store.AppendTxnContext(ctx, ops); err != nil {
		return err
	}
	w.lastTxn = store.LastTxn()
	return nil
}

// AppendTxnAt logs a transaction under an explicit id (replication
// apply). In-memory workspaces just advance the cached high-water mark.
func (w *Workspace) AppendTxnAt(ctx context.Context, txn uint64, ops []rdf.ChangeOp) error {
	w.storeMu.Lock()
	defer w.storeMu.Unlock()
	store, err := w.storeLocked()
	if err != nil {
		return err
	}
	if store == nil {
		if txn > w.lastTxn {
			w.lastTxn = txn
		}
		return nil
	}
	if err := store.AppendTxnAt(ctx, txn, ops); err != nil {
		return err
	}
	w.lastTxn = store.LastTxn()
	return nil
}

// HighWater returns the highest committed txn id (from the open store,
// or the cache left by the last fold).
func (w *Workspace) HighWater() uint64 {
	w.storeMu.Lock()
	defer w.storeMu.Unlock()
	if w.store != nil {
		return w.store.LastTxn()
	}
	return w.lastTxn
}

// WALSize returns the partition's live log size in bytes (0 when folded
// closed — a fold truncates the log).
func (w *Workspace) WALSize() int64 {
	w.storeMu.Lock()
	defer w.storeMu.Unlock()
	if w.store != nil {
		return w.store.LogSize()
	}
	return 0
}

// SnapshotNow folds the partition's log into a fresh snapshot. The
// caller must hold TxnMu (no concurrent commits during the fold).
func (w *Workspace) SnapshotNow() error {
	w.storeMu.Lock()
	defer w.storeMu.Unlock()
	store, err := w.storeLocked()
	if err != nil {
		return err
	}
	if store == nil {
		return fmt.Errorf("workspace %q has no data dir", w.name)
	}
	return store.SnapshotNow()
}

// PreTxnQuota rejects a new transaction while the WAL partition is at
// or over its byte quota. (A snapshot fold shrinks the log and lifts
// the refusal.)
func (w *Workspace) PreTxnQuota() error {
	q := w.Quota()
	if q.MaxWALBytes <= 0 {
		return nil
	}
	if size := w.WALSize(); size >= q.MaxWALBytes {
		return &QuotaError{Workspace: w.name, Limit: "max_wal_bytes", Max: q.MaxWALBytes, Observed: size}
	}
	return nil
}

// PostTxnQuota checks the triple quota against the blackboard as it
// stands inside an open transaction; an error means the caller must
// abort.
func (w *Workspace) PostTxnQuota() error {
	q := w.Quota()
	if q.MaxTriples <= 0 {
		return nil
	}
	if n := w.bb.Graph().Len(); n > q.MaxTriples {
		return &QuotaError{Workspace: w.name, Limit: "max_triples", Max: int64(q.MaxTriples), Observed: int64(n)}
	}
	return nil
}

// closeIfIdle folds and closes the store when untouched for ttl.
func (w *Workspace) closeIfIdle(now time.Time, ttl time.Duration) bool {
	w.storeMu.Lock()
	defer w.storeMu.Unlock()
	if w.store == nil || now.Sub(w.lastTouch) < ttl {
		return false
	}
	w.lastTxn = w.store.LastTxn()
	if err := w.store.Close(); err != nil {
		// The handle is unusable either way; drop it so the next touch
		// reopens from disk.
		w.store = nil
		return true
	}
	w.store = nil
	return true
}

// CloseStore folds and closes the partition (manager shutdown).
func (w *Workspace) CloseStore() error {
	w.storeMu.Lock()
	defer w.storeMu.Unlock()
	if w.store == nil {
		return nil
	}
	w.lastTxn = w.store.LastTxn()
	err := w.store.Close()
	w.store = nil
	return err
}

// StoreOpen reports whether the partition is currently open (tests).
func (w *Workspace) StoreOpen() bool {
	w.storeMu.Lock()
	defer w.storeMu.Unlock()
	return w.store != nil
}
