package workspace

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
)

func mustTriple(t *testing.T, line string) rdf.Triple {
	t.Helper()
	tr, err := rdf.ParseTriple(line)
	if err != nil {
		t.Fatalf("ParseTriple(%q): %v", line, err)
	}
	return tr
}

// commit mimics the wbmgr commit hook: mutate the blackboard graph,
// then durably log the ops.
func commit(t *testing.T, ws *Workspace, line string) {
	t.Helper()
	tr := mustTriple(t, line)
	ws.Blackboard().Graph().Add(tr)
	if err := ws.AppendTxn(context.Background(), []rdf.ChangeOp{{Add: true, T: tr}}); err != nil {
		t.Fatalf("AppendTxn: %v", err)
	}
}

func TestValidName(t *testing.T) {
	for name, want := range map[string]bool{
		"default": true, "team-a": true, "a.b_c-9": true, "0x": true,
		"": false, "UPPER": false, "has space": false, "-lead": false,
		".lead": false, "slash/y": false,
		strings.Repeat("a", 64): true,
		strings.Repeat("a", 65): false,
	} {
		if got := ValidName(name); got != want {
			t.Errorf("ValidName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestManagerLifecycle(t *testing.T) {
	m, err := NewManager(Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	defer m.Close()

	if m.Default() == nil || m.Default().Name() != DefaultName {
		t.Fatal("manager without a default workspace")
	}
	if _, err := m.Create("team-a", Quota{}); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := m.Create("team-a", Quota{}); err == nil ||
		!strings.Contains(err.Error(), "already exists") {
		t.Fatalf("duplicate create: err=%v", err)
	}
	if _, err := m.Create("Bad Name", Quota{}); err == nil {
		t.Fatal("invalid name accepted")
	}
	if _, ok := m.Get("ghost"); ok {
		t.Fatal("Get invented a workspace")
	}
	if err := m.Delete(DefaultName); err == nil ||
		!strings.Contains(err.Error(), "cannot be deleted") {
		t.Fatalf("delete default: err=%v", err)
	}
	if got := m.Names(); len(got) != 2 || got[0] != DefaultName || got[1] != "team-a" {
		t.Fatalf("Names = %v", got)
	}
	if err := m.Delete("team-a"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := m.Delete("team-a"); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("double delete: err=%v", err)
	}

	// Ensure is the replica supervisor's idempotent create.
	w1, err := m.Ensure("mirror", Quota{})
	if err != nil {
		t.Fatalf("Ensure: %v", err)
	}
	w2, err := m.Ensure("mirror", Quota{})
	if err != nil || w1 != w2 {
		t.Fatalf("Ensure not idempotent: %p %p %v", w1, w2, err)
	}
}

func TestIdleSweepFoldsAndLazilyReopens(t *testing.T) {
	m, err := NewManager(Options{
		Root:    t.TempDir(),
		Metrics: obs.NewRegistry(),
		IdleTTL: -1, // no background sweeper; driven explicitly below
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	defer m.Close()

	ws, err := m.Create("idle", Quota{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	commit(t, ws, `<urn:s> <urn:p> "kept"`)
	commit(t, m.Default(), `<urn:s> <urn:p> "busy"`)
	if !ws.StoreOpen() || ws.WALSize() == 0 {
		t.Fatalf("freshly written partition: open=%v size=%d", ws.StoreOpen(), ws.WALSize())
	}

	// Everything is stale an hour from now — but only the non-default
	// tenant folds; the default partition holds node-wide epoch state.
	n := m.SweepIdle(time.Now().Add(time.Hour), time.Minute)
	if n != 1 {
		t.Fatalf("SweepIdle closed %d stores, want 1", n)
	}
	if ws.StoreOpen() {
		t.Fatal("idle workspace still open after sweep")
	}
	if !m.Default().StoreOpen() {
		t.Fatal("sweep folded the default workspace")
	}

	// Folded state still answers reads: the high-water mark is cached
	// and the blackboard graph stays live.
	if ws.HighWater() != 1 {
		t.Fatalf("folded HighWater = %d, want 1", ws.HighWater())
	}
	if ws.Blackboard().Graph().Len() != 1 {
		t.Fatal("fold lost the blackboard graph")
	}

	// The next write reopens the partition and binds the recovered store
	// back to the live graph; history continues from the fold.
	commit(t, ws, `<urn:s> <urn:p> "after"`)
	if !ws.StoreOpen() || ws.HighWater() != 2 {
		t.Fatalf("after reopen: open=%v hw=%d", ws.StoreOpen(), ws.HighWater())
	}
	st, err := ws.Store()
	if err != nil || st.Graph() != ws.Blackboard().Graph() {
		t.Fatalf("reopened store not bound to the live graph (err=%v)", err)
	}
}

func TestQuotaErrors(t *testing.T) {
	m, err := NewManager(Options{Root: t.TempDir(), Metrics: obs.NewRegistry(), IdleTTL: -1})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	defer m.Close()

	ws, err := m.Create("small", Quota{MaxTriples: 1, MaxWALBytes: 1})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := ws.PreTxnQuota(); err != nil {
		t.Fatalf("empty partition refused entry: %v", err)
	}
	commit(t, ws, `<urn:s> <urn:p> "one"`)

	err = ws.PreTxnQuota()
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Limit != "max_wal_bytes" || qe.Workspace != "small" {
		t.Fatalf("PreTxnQuota = %v, want *QuotaError{max_wal_bytes, small}", err)
	}
	if !strings.Contains(err.Error(), "max_wal_bytes") || !strings.Contains(err.Error(), `"small"`) {
		t.Fatalf("quota error does not name limit and tenant: %v", err)
	}

	if err := ws.PostTxnQuota(); err != nil {
		t.Fatalf("at-limit triple count rejected: %v", err)
	}
	ws.Blackboard().Graph().Add(mustTriple(t, `<urn:s> <urn:p> "two"`))
	err = ws.PostTxnQuota()
	qe = nil
	if !errors.As(err, &qe) || qe.Limit != "max_triples" || qe.Max != 1 || qe.Observed != 2 {
		t.Fatalf("PostTxnQuota = %v, want *QuotaError{max_triples, 1, 2}", err)
	}

	// SetQuota lifts the limits live.
	ws.SetQuota(Quota{})
	if ws.PreTxnQuota() != nil || ws.PostTxnQuota() != nil {
		t.Fatal("zero quota still enforced")
	}
}

func TestOpenHighWaterSurvivesReboot(t *testing.T) {
	root := t.TempDir()
	m1, err := NewManager(Options{Root: root, Metrics: obs.NewRegistry(), IdleTTL: -1})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	for i, line := range []string{
		`<urn:s> <urn:p> "a"`, `<urn:s> <urn:p> "b"`, `<urn:s> <urn:p> "c"`,
	} {
		commit(t, m1.Default(), line)
		if hw := m1.Default().HighWater(); hw != uint64(i+1) {
			t.Fatalf("HighWater after txn %d = %d", i+1, hw)
		}
	}
	if err := m1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m2, err := NewManager(Options{Root: root, Metrics: obs.NewRegistry(), IdleTTL: -1})
	if err != nil {
		t.Fatalf("NewManager (reboot): %v", err)
	}
	defer m2.Close()
	ws := m2.Default()
	if ws.OpenHighWater() != 3 {
		t.Fatalf("OpenHighWater after reboot = %d, want 3 (session ids would collide)", ws.OpenHighWater())
	}
	if ws.Blackboard().Graph().Len() != 3 {
		t.Fatalf("recovered graph = %d triples, want 3", ws.Blackboard().Graph().Len())
	}
	if ws.Recovery() == "" {
		t.Fatal("no recovery summary after reboot")
	}
}

func TestDeleteRemovesPartitionDir(t *testing.T) {
	root := t.TempDir()
	m, err := NewManager(Options{Root: root, Metrics: obs.NewRegistry(), IdleTTL: -1})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	defer m.Close()
	ws, err := m.Create("doomed", Quota{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	commit(t, ws, `<urn:s> <urn:p> "gone"`)
	dir := ws.Dir()
	if dir != filepath.Join(root, "ws", "doomed") {
		t.Fatalf("partition dir = %q", dir)
	}
	if err := m.Delete("doomed"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := ws.Store(); err == nil {
		t.Fatal("deleted workspace reopened its store")
	}
	if _, statErr := os.Stat(dir); statErr == nil {
		t.Fatalf("partition dir %q survives deletion", dir)
	}
}
