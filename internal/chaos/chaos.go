// Package chaos is a zero-dependency failpoint framework for fault
// injection testing. Production code threads named injection sites
// (chaos.Inject calls) through its critical paths; tests and the chaos
// simulator arm those sites with deterministic seeded triggers that
// return errors, panic, or delay.
//
// Cost model: a disarmed process pays exactly one atomic load per
// Inject call (a package-level armed counter); nothing else is touched.
// Arming any site switches Inject onto a mutex-guarded slow path, so
// production builds that never arm a site see no measurable overhead.
//
// Determinism: every armed site draws from its own math/rand stream
// seeded by the global seed mixed with the site name, so a single
// workload replayed with the same seed and site list hits the same
// faults in the same per-site order. (Across goroutines the interleaving
// of sites may vary; invariants must hold for every interleaving.)
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// MetricFaults counts injected faults, labeled site=<site>, kind=<kind>.
const MetricFaults = "chaos_faults_total"

// Site names one injection point, conventionally "package.operation"
// (e.g. "wbmgr.commit"). Packages register their sites at init so that
// "all" in a spec expands to the full list.
type Site string

// FaultKind is what happens when a trigger fires.
type FaultKind string

// The three fault kinds.
const (
	// FaultError makes Inject return ErrInjected wrapped with the site.
	FaultError FaultKind = "error"
	// FaultPanic makes Inject panic with a *Fault value.
	FaultPanic FaultKind = "panic"
	// FaultDelay makes Inject sleep for the rule's Delay, then return nil.
	FaultDelay FaultKind = "delay"
)

// ErrInjected is the sentinel wrapped by every injected error; test code
// uses errors.Is(err, chaos.ErrInjected) to tell injected faults from
// real ones.
var ErrInjected = fmt.Errorf("chaos: injected fault")

// Fault is the value thrown by FaultPanic injections and carried by
// injected errors. Recovery code can type-assert on *Fault to recognize
// an injected panic.
type Fault struct {
	Site Site
	Kind FaultKind
}

// Error implements error; FaultError injections return a *Fault wrapping
// ErrInjected.
func (f *Fault) Error() string {
	return fmt.Sprintf("chaos: injected %s at site %q", f.Kind, f.Site)
}

// Unwrap ties every injected error to the ErrInjected sentinel.
func (f *Fault) Unwrap() error { return ErrInjected }

// Rule decides when and how an armed site fires.
type Rule struct {
	Kind FaultKind
	// Prob is the per-hit firing probability in (0,1]; it is evaluated
	// against the site's seeded random stream. Ignored when Every > 0.
	Prob float64
	// Every fires deterministically on every Nth hit (1 = every hit).
	Every int
	// Delay is the sleep duration for FaultDelay (default 1ms).
	Delay time.Duration
	// Limit caps the number of fires (0 = unlimited).
	Limit int
}

// site is one armed injection point's state.
type siteState struct {
	rule  Rule
	rng   *rand.Rand
	hits  int
	fires int
}

var (
	// armed is the fast-path gate: number of currently armed sites.
	armed atomic.Int32

	mu        sync.Mutex
	seed      int64
	sites     map[Site]*siteState // armed sites
	known     map[Site]string     // registered sites → description
	metricReg atomic.Pointer[obs.Registry]
)

func init() {
	sites = map[Site]*siteState{}
	known = map[Site]string{}
}

// RegisterSite declares an injection site so that specs can refer to
// "all" and tooling can enumerate sites. Packages call this from init.
func RegisterSite(s Site, description string) {
	mu.Lock()
	defer mu.Unlock()
	known[s] = description
}

// Sites returns every registered site, sorted.
func Sites() []Site {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Site, 0, len(known))
	for s := range known {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetMetrics redirects fault counters to reg (nil resets to
// obs.Default()).
func SetMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default()
	}
	reg.Describe(MetricFaults, "Faults injected by the chaos framework, by site and kind.")
	metricReg.Store(reg)
}

func registry() *obs.Registry {
	if r := metricReg.Load(); r != nil {
		return r
	}
	return obs.Default()
}

// SetSeed fixes the seed mixed into every site's random stream. Call
// before Enable; changing the seed re-seeds sites armed afterwards only.
func SetSeed(s int64) {
	mu.Lock()
	defer mu.Unlock()
	seed = s
}

// Enable arms a site with a rule. An unregistered site is registered on
// the fly (tests may use ad hoc sites). Re-enabling replaces the rule
// and resets the site's hit and fire counts and random stream.
func Enable(s Site, r Rule) {
	if r.Kind == "" {
		r.Kind = FaultError
	}
	if r.Prob <= 0 && r.Every <= 0 {
		r.Every = 1
	}
	if r.Kind == FaultDelay && r.Delay <= 0 {
		r.Delay = time.Millisecond
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := known[s]; !ok {
		known[s] = "(ad hoc)"
	}
	if _, rearm := sites[s]; !rearm {
		armed.Add(1)
	}
	sites[s] = &siteState{rule: r, rng: rand.New(rand.NewSource(seed ^ siteHash(s)))}
}

// Disable disarms one site.
func Disable(s Site) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[s]; ok {
		delete(sites, s)
		armed.Add(-1)
	}
}

// Reset disarms every site and clears the seed. Tests defer this.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(sites)))
	sites = map[Site]*siteState{}
	seed = 0
}

// Armed reports whether any site is armed (the fast-path gate value).
func Armed() bool { return armed.Load() > 0 }

// Fired returns how many times a site has fired since it was armed.
func Fired(s Site) int {
	mu.Lock()
	defer mu.Unlock()
	if st, ok := sites[s]; ok {
		return st.fires
	}
	return 0
}

// Inject is the injection point. Disarmed processes pay one atomic load.
// When the site's rule fires, Inject returns an error (FaultError),
// panics with *Fault (FaultPanic), or sleeps (FaultDelay, returns nil).
func Inject(s Site) error {
	if armed.Load() == 0 {
		return nil
	}
	return injectSlow(s)
}

func injectSlow(s Site) error {
	mu.Lock()
	st, ok := sites[s]
	if !ok {
		mu.Unlock()
		return nil
	}
	st.hits++
	fire := false
	if st.rule.Limit <= 0 || st.fires < st.rule.Limit {
		if st.rule.Every > 0 {
			fire = st.hits%st.rule.Every == 0
		} else {
			fire = st.rng.Float64() < st.rule.Prob
		}
	}
	if fire {
		st.fires++
	}
	rule := st.rule
	mu.Unlock()
	if !fire {
		return nil
	}
	registry().Counter(MetricFaults, "site", string(s), "kind", string(rule.Kind)).Inc()
	f := &Fault{Site: s, Kind: rule.Kind}
	switch rule.Kind {
	case FaultPanic:
		panic(f)
	case FaultDelay:
		time.Sleep(rule.Delay)
		return nil
	default:
		return f
	}
}

// siteHash mixes the site name into the seed (FNV-1a).
func siteHash(s Site) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h)
}

// ---- Spec parsing (the CLI's -chaos-sites syntax) ----

// ParseSpec parses a comma-separated site spec into rules:
//
//	site                    error fault, probability 0.2
//	site=kind               kind ∈ error|panic|delay, probability 0.2
//	site=kind:0.5           explicit probability
//	site=kind:n7            deterministic: fire every 7th hit
//	site=delay:10ms:0.5     delay duration, then optional probability
//	all[=...]               expands over every registered site
//
// ParseSpec only parses; call Apply (or Enable per entry) to arm.
func ParseSpec(spec string) (map[Site]Rule, error) {
	out := map[Site]Rule{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, ruleText, _ := strings.Cut(entry, "=")
		rule := Rule{Kind: FaultError, Prob: 0.2}
		if ruleText != "" {
			parts := strings.Split(ruleText, ":")
			switch FaultKind(parts[0]) {
			case FaultError, FaultPanic, FaultDelay:
				rule.Kind = FaultKind(parts[0])
			default:
				return nil, fmt.Errorf("chaos: unknown fault kind %q in %q", parts[0], entry)
			}
			rest := parts[1:]
			if rule.Kind == FaultDelay && len(rest) > 0 {
				d, err := time.ParseDuration(rest[0])
				if err != nil {
					return nil, fmt.Errorf("chaos: bad delay in %q: %w", entry, err)
				}
				rule.Delay = d
				rest = rest[1:]
			}
			if len(rest) > 0 {
				if err := parseTrigger(rest[0], &rule); err != nil {
					return nil, fmt.Errorf("chaos: %w in %q", err, entry)
				}
				rest = rest[1:]
			}
			if len(rest) > 0 {
				return nil, fmt.Errorf("chaos: trailing %q in %q", strings.Join(rest, ":"), entry)
			}
		}
		if name == "all" {
			for _, s := range Sites() {
				out[s] = rule
			}
			continue
		}
		out[Site(name)] = rule
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("chaos: empty site spec %q", spec)
	}
	return out, nil
}

// parseTrigger reads "0.5" (probability) or "n7" (every 7th hit).
func parseTrigger(s string, rule *Rule) error {
	if strings.HasPrefix(s, "n") {
		n, err := strconv.Atoi(s[1:])
		if err != nil || n <= 0 {
			return fmt.Errorf("bad every-N trigger %q", s)
		}
		rule.Every = n
		rule.Prob = 0
		return nil
	}
	p, err := strconv.ParseFloat(s, 64)
	if err != nil || p <= 0 || p > 1 {
		return fmt.Errorf("bad probability %q", s)
	}
	rule.Prob = p
	rule.Every = 0
	return nil
}

// Apply arms every site in the parsed spec under one seed, returning the
// sorted armed site list (for replay reports).
func Apply(seed int64, rules map[Site]Rule) []Site {
	SetSeed(seed)
	armedSites := make([]Site, 0, len(rules))
	for s, r := range rules {
		Enable(s, r)
		armedSites = append(armedSites, s)
	}
	sort.Slice(armedSites, func(i, j int) bool { return armedSites[i] < armedSites[j] })
	return armedSites
}
