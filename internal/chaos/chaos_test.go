package chaos

import (
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestDisarmedInjectIsNil(t *testing.T) {
	Reset()
	if err := Inject("test.site"); err != nil {
		t.Fatalf("disarmed Inject returned %v", err)
	}
	if Armed() {
		t.Fatal("Armed() true with no sites enabled")
	}
}

func TestEveryNTrigger(t *testing.T) {
	defer Reset()
	Enable("test.every", Rule{Every: 3})
	fired := 0
	for i := 0; i < 9; i++ {
		if err := Inject("test.every"); err != nil {
			fired++
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error not tied to sentinel: %v", err)
			}
			var f *Fault
			if !errors.As(err, &f) || f.Site != "test.every" || f.Kind != FaultError {
				t.Fatalf("wrong fault payload: %#v", err)
			}
		}
	}
	if fired != 3 {
		t.Fatalf("Every=3 over 9 hits fired %d times, want 3", fired)
	}
	if Fired("test.every") != 3 {
		t.Fatalf("Fired = %d, want 3", Fired("test.every"))
	}
}

func TestProbTriggerDeterministicPerSeed(t *testing.T) {
	defer Reset()
	run := func(seed int64) []bool {
		Reset()
		SetSeed(seed)
		Enable("test.prob", Rule{Prob: 0.5})
		out := make([]bool, 40)
		for i := range out {
			out[i] = Inject("test.prob") != nil
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault schedules (suspicious)")
	}
}

func TestPanicKind(t *testing.T) {
	defer Reset()
	Enable("test.panic", Rule{Kind: FaultPanic})
	defer func() {
		r := recover()
		f, ok := r.(*Fault)
		if !ok || f.Kind != FaultPanic || f.Site != "test.panic" {
			t.Fatalf("recovered %#v, want *Fault{test.panic, panic}", r)
		}
	}()
	_ = Inject("test.panic")
	t.Fatal("Inject did not panic")
}

func TestDelayKind(t *testing.T) {
	defer Reset()
	Enable("test.delay", Rule{Kind: FaultDelay, Delay: 10 * time.Millisecond})
	t0 := time.Now()
	if err := Inject("test.delay"); err != nil {
		t.Fatalf("delay fault returned error %v", err)
	}
	if d := time.Since(t0); d < 10*time.Millisecond {
		t.Fatalf("delay fault slept only %v", d)
	}
}

func TestLimitCapsFires(t *testing.T) {
	defer Reset()
	Enable("test.limit", Rule{Every: 1, Limit: 2})
	fired := 0
	for i := 0; i < 10; i++ {
		if Inject("test.limit") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("Limit=2 fired %d times", fired)
	}
}

func TestDisableAndReset(t *testing.T) {
	defer Reset()
	Enable("test.a", Rule{Every: 1})
	Enable("test.b", Rule{Every: 1})
	Disable("test.a")
	if Inject("test.a") != nil {
		t.Fatal("disabled site still fires")
	}
	if Inject("test.b") == nil {
		t.Fatal("sibling site disarmed by Disable")
	}
	Reset()
	if Armed() {
		t.Fatal("Armed() after Reset")
	}
}

func TestFaultMetricCounted(t *testing.T) {
	defer Reset()
	reg := obs.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)
	Enable("test.metric", Rule{Every: 1})
	_ = Inject("test.metric")
	_ = Inject("test.metric")
	m, ok := reg.Find(MetricFaults)
	if !ok {
		t.Fatal("chaos_faults_total not in registry")
	}
	total := 0.0
	for _, s := range m.Series {
		if s.Labels["site"] == "test.metric" && s.Labels["kind"] == "error" {
			total += s.Value
		}
	}
	if total != 2 {
		t.Fatalf("chaos_faults_total{site=test.metric} = %v, want 2", total)
	}
}

func TestRegisterAndSites(t *testing.T) {
	RegisterSite("test.registered", "a test site")
	found := false
	for _, s := range Sites() {
		if s == "test.registered" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered site missing from Sites()")
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		site Site
		want Rule
	}{
		{"a.b", "a.b", Rule{Kind: FaultError, Prob: 0.2}},
		{"a.b=panic", "a.b", Rule{Kind: FaultPanic, Prob: 0.2}},
		{"a.b=error:0.7", "a.b", Rule{Kind: FaultError, Prob: 0.7}},
		{"a.b=error:n5", "a.b", Rule{Kind: FaultError, Every: 5}},
		{"a.b=delay:25ms:0.5", "a.b", Rule{Kind: FaultDelay, Delay: 25 * time.Millisecond, Prob: 0.5}},
	}
	for _, c := range cases {
		rules, err := ParseSpec(c.spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.spec, err)
			continue
		}
		if got := rules[c.site]; got != c.want {
			t.Errorf("ParseSpec(%q)[%s] = %+v, want %+v", c.spec, c.site, got, c.want)
		}
	}
	for _, bad := range []string{"", "a.b=explode", "a.b=error:2.0", "a.b=error:n0", "a.b=delay:xx", "a.b=error:0.5:junk"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestParseSpecAllExpandsAndOverrides(t *testing.T) {
	RegisterSite("test.x", "x")
	RegisterSite("test.y", "y")
	rules, err := ParseSpec("all=error:0.3,test.x=panic:n2")
	if err != nil {
		t.Fatal(err)
	}
	if r := rules["test.y"]; r.Kind != FaultError || r.Prob != 0.3 {
		t.Fatalf("all did not reach test.y: %+v", r)
	}
	if r := rules["test.x"]; r.Kind != FaultPanic || r.Every != 2 {
		t.Fatalf("later entry did not override all for test.x: %+v", r)
	}
}

func TestApplyArmsAndReturnsSortedSites(t *testing.T) {
	defer Reset()
	rules := map[Site]Rule{"test.zz": {Every: 1}, "test.aa": {Every: 1}}
	sites := Apply(11, rules)
	if len(sites) != 2 || sites[0] != "test.aa" || sites[1] != "test.zz" {
		t.Fatalf("Apply returned %v", sites)
	}
	if Inject("test.aa") == nil {
		t.Fatal("Apply did not arm test.aa")
	}
}

func TestReenableResetsCounters(t *testing.T) {
	defer Reset()
	Enable("test.rearm", Rule{Every: 1})
	_ = Inject("test.rearm")
	Enable("test.rearm", Rule{Every: 2})
	if Fired("test.rearm") != 0 {
		t.Fatal("re-enable kept old fire count")
	}
	if Inject("test.rearm") != nil {
		t.Fatal("Every=2 fired on first hit after rearm")
	}
	if Inject("test.rearm") == nil {
		t.Fatal("Every=2 did not fire on second hit")
	}
}
