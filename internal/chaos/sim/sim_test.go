package sim

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/chaos"
)

// TestSimInvariantsUnderFullChaos is the tentpole acceptance test: with
// every registered failpoint armed, the five invariants must hold for
// several distinct seeds. Run under -race in the tier-1 suite.
func TestSimInvariantsUnderFullChaos(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rep := Run(Config{Seed: seed})
			t.Log(rep.String())
			if rep.Failed() {
				t.Fatalf("invariant violations:\n%s", rep.String())
			}
			if rep.Faults == 0 {
				t.Fatalf("no faults injected — chaos was not exercised:\n%s", rep.String())
			}
			if rep.Commits == 0 {
				t.Fatalf("no transaction ever committed — workload too hostile:\n%s", rep.String())
			}
			if rep.Aborts+rep.CommitFaults == 0 {
				t.Fatalf("no rollback ever happened — atomicity never tested:\n%s", rep.String())
			}
		})
	}
}

// TestSimCommitErrorFaults drives the commit-error path specifically:
// DefaultSpec arms commit with panics, so this run re-arms every site
// with errors and expects fault-failed commits that still roll back.
func TestSimCommitErrorFaults(t *testing.T) {
	rep := Run(Config{Seed: 5, Spec: "all=error:0.4"})
	t.Log(rep.String())
	if rep.Failed() {
		t.Fatalf("invariant violations:\n%s", rep.String())
	}
	if rep.CommitFaults == 0 {
		t.Fatalf("no commit was ever failed by an injected error:\n%s", rep.String())
	}
}

// TestSimDeterministicFaultStreams replays one seed twice and expects
// the same per-site trigger decisions to be available; the aggregate
// invariants must hold both times (interleavings may differ, outcomes
// must not).
func TestSimReplaySameSeedStillPasses(t *testing.T) {
	for i := 0; i < 2; i++ {
		rep := Run(Config{Seed: 99, Tools: 2, Ops: 25})
		if rep.Failed() {
			t.Fatalf("replay %d failed:\n%s", i, rep.String())
		}
	}
}

func TestSimBadSpecReported(t *testing.T) {
	rep := Run(Config{Seed: 1, Spec: "wbmgr.commit=exotic"})
	if !rep.Failed() {
		t.Fatal("bad chaos spec should fail the run")
	}
	if !strings.Contains(rep.Violations[0], "bad chaos spec") {
		t.Fatalf("unexpected violation: %s", rep.Violations[0])
	}
}

// TestReportReplayRecipe checks the failure report carries everything
// needed for a deterministic replay: seed, site list, and CLI line.
func TestReportReplayRecipe(t *testing.T) {
	rep := &Report{
		Seed:       9,
		Spec:       "all=error:0.5",
		Sites:      []chaos.Site{"wbmgr.begin", "wbmgr.commit"},
		Violations: []string{"atomicity: residue"},
	}
	s := rep.String()
	for _, want := range []string{
		"FAIL seed=9",
		"sites=wbmgr.begin,wbmgr.commit",
		`replay: workbench sim -chaos-seed 9 -chaos-sites "all=error:0.5"`,
		"violation: atomicity: residue",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	ok := &Report{Seed: 3}
	if got := ok.String(); !strings.Contains(got, "PASS seed=3") || strings.Contains(got, "replay:") {
		t.Errorf("passing report wrong:\n%s", got)
	}
}
