// Package sim is a deterministic randomized workload simulator for the
// workbench under fault injection. It drives N concurrent simulated
// tools through seeded sequences of load/match/map/query/txn operations
// with chaos failpoints armed at every site, then checks five
// system-wide invariants:
//
//  1. transaction atomicity — an aborted or fault-failed transaction
//     leaves the blackboard graph bit-identical to its pre-transaction
//     triple set;
//  2. revision monotonicity — the blackboard revision counter never
//     decreases, even across rollbacks;
//  3. event-log/graph consistency — exactly the events of committed
//     transactions appear in the manager's event log, and no event from
//     an aborted transaction does;
//  4. structural integrity — no orphan cell/row/column triples survive
//     (blackboard.CheckIntegrity);
//  5. no lost subscriber tokens — every live subscription still receives
//     events after the storm, and no unsubscribed token does.
//
// A failed run reports the seed and armed site list so the exact fault
// schedule can be replayed: `workbench sim -chaos-seed S -chaos-sites L`.
// The simulator is designed to run under -race: reads, queries and
// subscription churn proceed concurrently with the writing transaction.
package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/blackboard"
	"repro/internal/chaos"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/wbmgr"
)

// DefaultSpec arms every registered site with error faults and layers
// panic faults on the paths that exercise recovery. Later entries
// override earlier ones per site.
const DefaultSpec = "all=error:0.3," +
	"blackboard.setcell=panic:0.15," +
	"wbmgr.commit=panic:0.1," +
	"wbmgr.publish=panic:0.3"

// Config parameterizes one simulation run.
type Config struct {
	// Seed drives every random stream (workload and fault triggers).
	Seed int64
	// Tools is the number of concurrent simulated tools (default 4).
	Tools int
	// Ops is the operation count per tool (default 40).
	Ops int
	// Spec is the chaos site spec (ParseSpec syntax; default DefaultSpec).
	Spec string
	// Registry collects metrics for the run (default: a fresh registry,
	// so a chaotic run never pollutes the process-global one).
	Registry *obs.Registry
}

// Report is the outcome of one simulation run.
type Report struct {
	Seed  int64
	Spec  string
	Sites []chaos.Site

	Ops           int // operations attempted across all tools
	Commits       int // transactions committed
	Aborts        int // transactions aborted voluntarily or on op error
	CommitFaults  int // commits failed by an injected fault (rolled back)
	BeginFailures int // Begin calls refused (injected or contention)
	Panics        int // injected panics recovered by tools
	Faults        int // total faults injected (chaos_faults_total)

	Violations []string
}

// Failed reports whether any invariant was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// String renders the report; on failure it includes the replay recipe.
func (r *Report) String() string {
	var b strings.Builder
	status := "PASS"
	if r.Failed() {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "chaos-sim %s seed=%d sites=%s\n", status, r.Seed, joinSites(r.Sites))
	fmt.Fprintf(&b, "  ops=%d commits=%d aborts=%d commit-faults=%d begin-failures=%d panics=%d faults=%d\n",
		r.Ops, r.Commits, r.Aborts, r.CommitFaults, r.BeginFailures, r.Panics, r.Faults)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  violation: %s\n", v)
	}
	if r.Failed() {
		fmt.Fprintf(&b, "  replay: workbench sim -chaos-seed %d -chaos-sites %q\n", r.Seed, r.Spec)
	}
	return b.String()
}

func joinSites(sites []chaos.Site) string {
	parts := make([]string, len(sites))
	for i, s := range sites {
		parts[i] = string(s)
	}
	return strings.Join(parts, ",")
}

// runMu serializes simulation runs: the chaos framework's armed sites
// are process-global state.
var runMu sync.Mutex

// subRecord tracks one subscription token for the lost-token invariant.
type subRecord struct {
	token int
	kind  wbmgr.EventKind
	live  bool
	seen  *atomic.Int64
}

// worker is one simulated tool.
type worker struct {
	idx  int
	name string
	rng  *rand.Rand
	m    *wbmgr.Manager
	bb   *blackboard.Blackboard

	txnMu *sync.Mutex // serializes writer lifecycles so atomicity checks are exact

	seq     int
	lastRev int

	committed []string // event keys of committed transactions
	aborted   []string // event keys of rolled-back transactions
	pending   []string // event keys emitted by the op in flight

	subs []*subRecord

	commits, aborts, commitFaults, beginFailures, panics, ops int

	violations []string
}

// Run executes one simulation and returns its report. Runs are
// serialized process-wide (chaos sites are global); the workload itself
// is concurrent.
func Run(cfg Config) *Report {
	runMu.Lock()
	defer runMu.Unlock()

	if cfg.Tools <= 0 {
		cfg.Tools = 4
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 40
	}
	if cfg.Spec == "" {
		cfg.Spec = DefaultSpec
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}

	chaos.Reset()
	defer chaos.Reset()
	chaos.SetMetrics(reg)
	defer chaos.SetMetrics(nil)

	m := wbmgr.New()
	m.SetMetrics(reg)
	m.Blackboard().SetMetrics(reg)
	m.EnableEventLog = true
	m.SetEventLogCapacity(cfg.Tools*cfg.Ops*6 + 64)

	// Seed the board with shared base schemata before any site is armed,
	// so every worker has guaranteed mapping endpoints.
	seedRng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < baseSchemas; i++ {
		txn, err := m.Begin("seed")
		if err != nil {
			panic(fmt.Sprintf("sim: seeding begin: %v", err))
		}
		if _, err := m.Blackboard().PutSchema(synthSchema(baseName(i), seedRng)); err != nil {
			panic(fmt.Sprintf("sim: seeding put: %v", err))
		}
		if err := txn.Commit(); err != nil {
			panic(fmt.Sprintf("sim: seeding commit: %v", err))
		}
	}

	rules, err := chaos.ParseSpec(cfg.Spec)
	if err != nil {
		return &Report{Seed: cfg.Seed, Spec: cfg.Spec,
			Violations: []string{fmt.Sprintf("bad chaos spec: %v", err)}}
	}
	armedSites := chaos.Apply(cfg.Seed, rules)

	rep := &Report{Seed: cfg.Seed, Spec: cfg.Spec, Sites: armedSites}

	var txnMu sync.Mutex
	workers := make([]*worker, cfg.Tools)
	var wg sync.WaitGroup
	for i := range workers {
		workers[i] = &worker{
			idx:   i,
			name:  fmt.Sprintf("tool%d", i),
			rng:   rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(i) + 1)),
			m:     m,
			bb:    m.Blackboard(),
			txnMu: &txnMu,
		}
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for k := 0; k < cfg.Ops; k++ {
				w.step()
			}
		}(workers[i])
	}
	wg.Wait()

	// The storm is over: disarm before probing and checking so the
	// checks themselves cannot be fault-injected.
	chaos.Reset()

	for _, w := range workers {
		rep.Ops += w.ops
		rep.Commits += w.commits
		rep.Aborts += w.aborts
		rep.CommitFaults += w.commitFaults
		rep.BeginFailures += w.beginFailures
		rep.Panics += w.panics
		rep.Violations = append(rep.Violations, w.violations...)
	}
	if fam, ok := reg.Find(chaos.MetricFaults); ok {
		for _, s := range fam.Series {
			rep.Faults += int(s.Value)
		}
	}

	checkEventLog(m, workers, rep)
	checkSubscribers(m, workers, rep)
	for _, err := range m.Blackboard().CheckIntegrity() {
		rep.Violations = append(rep.Violations, fmt.Sprintf("integrity: %v", err))
	}
	return rep
}

const baseSchemas = 3

func baseName(i int) string { return fmt.Sprintf("base%d", i) }

// synthSchema builds a small synthetic schema: one entity with a few
// attributes.
func synthSchema(name string, rng *rand.Rand) *model.Schema {
	s := model.NewSchema(name, "synthetic")
	ent := s.AddElement(nil, "entity", model.KindEntity, model.ContainsTable)
	n := 2 + rng.Intn(3)
	for i := 0; i < n; i++ {
		s.AddElement(ent, fmt.Sprintf("attr%d", i), model.KindAttribute, model.ContainsAttribute)
	}
	return s
}

// step runs one randomly chosen operation and samples the revision
// counter for the monotonicity invariant.
func (w *worker) step() {
	w.ops++
	w.seq++
	switch p := w.rng.Intn(100); {
	case p < 55:
		w.txnOp()
	case p < 65:
		w.bareBegin()
	case p < 85:
		w.readOp()
	default:
		w.subOp()
	}
	w.observeRevision()
}

// observeRevision checks invariant 2 from this worker's viewpoint: the
// revision counter it reads never goes backwards.
func (w *worker) observeRevision() {
	rev := w.bb.Revision()
	if rev < w.lastRev {
		w.violations = append(w.violations,
			fmt.Sprintf("revision went backwards: %d after %d (tool %s)", rev, w.lastRev, w.name))
	}
	w.lastRev = rev
}

// bareBegin exercises Begin contention without holding the writer lock:
// a successful bare transaction is aborted immediately, untouched.
func (w *worker) bareBegin() {
	defer func() {
		if r := recover(); r != nil {
			if _, injected := r.(*chaos.Fault); !injected {
				panic(r)
			}
			w.panics++
		}
	}()
	txn, err := w.m.Begin(w.name)
	if err != nil {
		w.beginFailures++
		return
	}
	_ = txn.Abort()
	w.aborts++
}

// txnOp runs one transactional mutation under the writer lock. The lock
// spans Begin through the atomicity check so that no other writer can
// mutate between rollback and comparison; readers and subscribers stay
// unlocked and concurrent.
func (w *worker) txnOp() {
	w.txnMu.Lock()
	defer w.txnMu.Unlock()
	w.pending = w.pending[:0]

	var txn *wbmgr.Txn
	var snap *rdf.Graph
	defer func() {
		if r := recover(); r != nil {
			if _, injected := r.(*chaos.Fault); !injected {
				panic(r) // a real bug — surface it loudly
			}
			w.panics++
			if txn == nil {
				return // Begin itself panicked; nothing to clean up
			}
			// An injected panic escaped the op body or Commit. Abort is
			// fault-tolerant; if the commit fault already rolled back,
			// it reports "finished" and the state is already restored.
			_ = txn.Abort()
			w.abortedTxn(snap)
		}
	}()

	t, err := w.m.Begin(w.name)
	if err != nil {
		w.beginFailures++
		return
	}
	txn = t
	// Only this goroutine can mutate until the txn closes, so this clone
	// is exactly the pre-transaction triple set.
	snap = w.bb.Graph().Clone()

	err = w.mutate(txn)
	if err == nil && w.rng.Intn(100) < 75 {
		if cerr := txn.Commit(); cerr != nil {
			w.commitFaults++
			w.abortedTxn(snap)
			return
		}
		w.commits++
		w.committed = append(w.committed, w.pending...)
		return
	}
	_ = txn.Abort()
	w.abortedTxn(snap)
}

// abortedTxn records the rolled-back transaction's events and checks
// invariant 1: the graph must be bit-identical to the pre-txn snapshot.
func (w *worker) abortedTxn(snap *rdf.Graph) {
	w.aborts++
	w.aborted = append(w.aborted, w.pending...)
	g := w.bb.Graph()
	if rdf.Equal(snap, g) {
		return
	}
	added, removed := g.Diff(snap)
	w.violations = append(w.violations, fmt.Sprintf(
		"atomicity: rolled-back txn left residue (tool %s op %d): +%d/-%d triples, e.g. %s",
		w.name, w.seq, len(added), len(removed), residueSample(added, removed)))
}

func residueSample(added, removed []rdf.Triple) string {
	var parts []string
	for i, t := range added {
		if i == 2 {
			break
		}
		parts = append(parts, "+"+t.String())
	}
	for i, t := range removed {
		if i == 2 {
			break
		}
		parts = append(parts, "-"+t.String())
	}
	return strings.Join(parts, " ")
}

// emit queues an event on the transaction and remembers its key. The
// subject carries a unique op tag so the event-log invariant can match
// log entries to committed transactions exactly.
func (w *worker) emit(txn *wbmgr.Txn, kind wbmgr.EventKind, subject string) {
	tagged := fmt.Sprintf("%s#op%d.%d.%d", subject, w.idx, w.seq, len(w.pending))
	txn.Emit(kind, tagged)
	w.pending = append(w.pending, eventKey(wbmgr.Event{Kind: kind, Tool: w.name, Subject: tagged}))
}

func eventKey(e wbmgr.Event) string {
	return string(e.Kind) + "|" + e.Tool + "|" + e.Subject
}

// mutate performs one randomly chosen multi-triple write inside txn.
// Errors (most of them injected) make the caller abort.
func (w *worker) mutate(txn *wbmgr.Txn) error {
	bb := w.bb
	switch p := w.rng.Intn(100); {
	case p < 30: // re-put a shared schema (exercises archival/versioning)
		name := baseName(w.rng.Intn(baseSchemas))
		if _, err := bb.PutSchema(synthSchema(name, w.rng)); err != nil {
			return err
		}
		w.emit(txn, wbmgr.EventSchemaGraph, name)
		return nil
	case p < 45: // create a mapping between base schemata
		id := fmt.Sprintf("m%d-%d", w.idx, w.seq)
		src := baseName(w.rng.Intn(baseSchemas))
		tgt := baseName(w.rng.Intn(baseSchemas))
		if _, err := bb.NewMapping(id, src, tgt); err != nil {
			return err
		}
		w.emit(txn, wbmgr.EventMappingMatrix, id)
		return nil
	case p < 75: // score some cells in an existing mapping
		mp, err := w.pickMapping()
		if err != nil {
			return err
		}
		n := 1 + w.rng.Intn(3)
		for i := 0; i < n; i++ {
			src := fmt.Sprintf("entity/attr%d", w.rng.Intn(4))
			tgt := fmt.Sprintf("entity/attr%d", w.rng.Intn(4))
			conf := w.rng.Float64()*2 - 1
			if err := mp.SetCell(src, tgt, conf, w.rng.Intn(4) == 0, w.name); err != nil {
				return err
			}
			w.emit(txn, wbmgr.EventMappingCell, fmt.Sprintf("%s|%s|%s", mp.ID, src, tgt))
		}
		return nil
	case p < 88: // annotate rows/columns
		mp, err := w.pickMapping()
		if err != nil {
			return err
		}
		id := fmt.Sprintf("entity/attr%d", w.rng.Intn(4))
		mp.SetRowVariable(id, "$"+id)
		mp.SetColumnCode(id, "out = $"+id, w.name)
		w.emit(txn, wbmgr.EventMappingVector, mp.ID+"|"+id)
		return nil
	default: // delete a mapping
		ids := bb.Mappings()
		if len(ids) == 0 {
			return nil
		}
		id := ids[w.rng.Intn(len(ids))]
		if err := bb.DeleteMapping(id); err != nil {
			return err
		}
		w.emit(txn, wbmgr.EventMappingMatrix, id)
		return nil
	}
}

// pickMapping opens a random existing mapping, or creates a private one
// when the library is empty.
func (w *worker) pickMapping() (*blackboard.Mapping, error) {
	ids := w.bb.Mappings()
	if len(ids) == 0 {
		return w.bb.NewMapping(fmt.Sprintf("m%d-%d", w.idx, w.seq),
			baseName(0), baseName(1))
	}
	return w.bb.GetMapping(ids[w.rng.Intn(len(ids))])
}

// readOp exercises the concurrent read paths: schema reconstruction,
// mapping scans, and ad hoc queries, all without the writer lock.
func (w *worker) readOp() {
	bb := w.bb
	switch w.rng.Intn(4) {
	case 0:
		_, _ = bb.GetSchema(baseName(w.rng.Intn(baseSchemas)))
	case 1:
		for _, id := range bb.Mappings() {
			if mp, err := bb.GetMapping(id); err == nil {
				_ = mp.Cells()
				break
			}
		}
	case 2:
		_, _ = w.m.Query("?s <"+rdf.RDFType.Value()+"> ?t", "s", "t")
	default:
		_ = bb.Schemas()
	}
}

// subOp churns subscriptions: subscribe with a counting handler, or drop
// a random live token. The records feed the lost-token invariant.
func (w *worker) subOp() {
	kinds := []wbmgr.EventKind{
		wbmgr.EventSchemaGraph, wbmgr.EventMappingCell,
		wbmgr.EventMappingVector, wbmgr.EventMappingMatrix,
	}
	var live []*subRecord
	for _, r := range w.subs {
		if r.live {
			live = append(live, r)
		}
	}
	if len(live) > 0 && w.rng.Intn(2) == 0 {
		r := live[w.rng.Intn(len(live))]
		w.m.Unsubscribe(r.token)
		r.live = false
		return
	}
	seen := &atomic.Int64{}
	kind := kinds[w.rng.Intn(len(kinds))]
	token := w.m.Subscribe(kind, w.name, func(wbmgr.Event) { seen.Add(1) })
	w.subs = append(w.subs, &subRecord{token: token, kind: kind, live: true, seen: seen})
}

// checkEventLog verifies invariant 3: the manager's log holds exactly
// the events of committed transactions (each once) and none from
// aborted ones. Skipped if the ring buffer dropped entries.
func checkEventLog(m *wbmgr.Manager, workers []*worker, rep *Report) {
	logged := map[string]int{}
	for _, e := range m.EventLog() {
		if e.Tool == "prober" || e.Tool == "seed" {
			continue
		}
		logged[eventKey(e)]++
	}
	for _, w := range workers {
		for _, key := range w.committed {
			switch n := logged[key]; n {
			case 1:
				delete(logged, key)
			case 0:
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("event-log: committed event missing from log: %s", key))
			default:
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("event-log: committed event logged %d times: %s", n, key))
				delete(logged, key)
			}
		}
		for _, key := range w.aborted {
			if logged[key] > 0 {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("event-log: aborted txn's event reached the log: %s", key))
			}
		}
	}
	for key := range logged {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("event-log: logged event from no committed txn: %s", key))
	}
}

// checkSubscribers verifies invariant 5: with chaos disarmed, a probe
// transaction emitting one event of every kind must reach every live
// token exactly once and no unsubscribed token at all.
func checkSubscribers(m *wbmgr.Manager, workers []*worker, rep *Report) {
	before := map[*subRecord]int64{}
	for _, w := range workers {
		for _, r := range w.subs {
			before[r] = r.seen.Load()
		}
	}
	txn, err := m.Begin("prober")
	if err != nil {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("subscriber probe: begin failed: %v", err))
		return
	}
	for _, kind := range []wbmgr.EventKind{
		wbmgr.EventSchemaGraph, wbmgr.EventMappingCell,
		wbmgr.EventMappingVector, wbmgr.EventMappingMatrix,
	} {
		txn.Emit(kind, "probe|"+string(kind))
	}
	if err := txn.Commit(); err != nil {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("subscriber probe: commit failed: %v", err))
		return
	}
	for _, w := range workers {
		for _, r := range w.subs {
			delta := r.seen.Load() - before[r]
			switch {
			case r.live && delta != 1:
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"subscriber: live token %d (%s, %s) saw %d probe events, want 1",
					r.token, w.name, r.kind, delta))
			case !r.live && delta != 0:
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"subscriber: dead token %d (%s, %s) saw %d probe events, want 0",
					r.token, w.name, r.kind, delta))
			}
		}
	}
}
