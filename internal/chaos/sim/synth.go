package sim

import (
	"fmt"
	"math/rand"
	"strings"
)

// BaseSchemas is the number of shared base schemata the simulator (and
// the loadgen harness, which reuses this workload model) seeds before
// the storm: every worker can rely on base0..base{N-1} existing.
const BaseSchemas = baseSchemas

// BaseSchemaName returns the i-th shared base schema name ("base0"...).
func BaseSchemaName(i int) string { return baseName(i) }

// SynthSchemaSQL renders the simulator's synthetic schema shape — one
// entity with a few attributes — as SQL DDL text, for workloads that
// load schemas over the wire instead of constructing model.Schema
// in-process (the loadgen harness). The attribute count and types are
// drawn from rng, so re-loading a schema under the same name exercises
// the versioning and rematch paths with real diffs.
func SynthSchemaSQL(rng *rand.Rand) string {
	types := []string{"INT", "VARCHAR(64)", "DATE", "DECIMAL(10,2)"}
	n := 2 + rng.Intn(3)
	var b strings.Builder
	b.WriteString("CREATE TABLE entity (\n")
	for i := 0; i < n; i++ {
		sep := ","
		if i == n-1 {
			sep = ""
		}
		fmt.Fprintf(&b, "  attr%d %s%s\n", i, types[rng.Intn(len(types))], sep)
	}
	b.WriteString(");\n")
	return b.String()
}
