// Package lingo provides the linguistic preprocessing used by the Harmony
// match engine (paper §4, Figure 1: "tokenization, stop-word removal, and
// stemming" of element names and documentation), plus the string- and
// vector-similarity primitives the match voters are built from.
package lingo

import (
	"strings"
	"unicode"
)

// Tokenize splits an identifier or free text into lowercase word tokens.
// It understands the conventions found in schema element names:
//
//   - camelCase and PascalCase boundaries ("shipTo" → ship, to)
//   - acronym runs ("XMLSchema" → xml, schema; "IDNumber" → id, number)
//   - snake_case, kebab-case, dotted.names and whitespace
//   - digit runs become their own tokens ("address2" → address, 2)
//
// Punctuation is discarded. The result preserves input order.
func Tokenize(s string) []string {
	var tokens []string
	runes := []rune(s)
	n := len(runes)
	i := 0
	flush := func(start, end int) {
		if end > start {
			tokens = append(tokens, strings.ToLower(string(runes[start:end])))
		}
	}
	for i < n {
		r := runes[i]
		switch {
		case unicode.IsDigit(r):
			start := i
			for i < n && unicode.IsDigit(runes[i]) {
				i++
			}
			flush(start, i)
		case unicode.IsLetter(r):
			start := i
			if unicode.IsUpper(r) {
				// Consume an uppercase run. If it is followed by a
				// lowercase letter, the last upper belongs to the next
				// word ("XMLSchema" → "XML" + "Schema").
				j := i
				for j < n && unicode.IsUpper(runes[j]) {
					j++
				}
				if j-i > 1 && j < n && unicode.IsLower(runes[j]) {
					flush(start, j-1)
					i = j - 1
					continue
				}
				if j-i > 1 {
					flush(start, j)
					i = j
					continue
				}
			}
			// Lowercase (or single-upper-then-lowercase) word.
			i++
			for i < n && unicode.IsLower(runes[i]) {
				i++
			}
			flush(start, i)
		default:
			i++
		}
	}
	return tokens
}

// stopWords is the default English stop-word list, tuned for schema
// documentation: function words plus metadata boilerplate ("code",
// "value", "identifier" stay — they carry signal in coding-scheme
// definitions).
var stopWords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "for": true, "from": true, "has": true,
	"have": true, "in": true, "is": true, "it": true, "its": true,
	"of": true, "on": true, "or": true, "that": true, "the": true,
	"this": true, "to": true, "was": true, "were": true, "which": true,
	"will": true, "with": true, "each": true, "used": true, "uses": true,
	"use": true, "may": true, "can": true, "such": true, "any": true,
	"all": true, "one": true, "per": true, "into": true, "than": true,
	"then": true, "when": true, "where": true, "who": true, "whom": true,
	"i": true, "we": true, "you": true, "they": true, "he": true, "she": true,
	"not": true, "no": true, "but": true, "if": true, "so": true, "also": true,
}

// IsStopWord reports whether the (lowercase) token is on the stop list.
func IsStopWord(tok string) bool { return stopWords[tok] }

// RemoveStopWords filters stop words from a token list, preserving order.
func RemoveStopWords(tokens []string) []string {
	out := tokens[:0:0]
	for _, t := range tokens {
		if !stopWords[t] {
			out = append(out, t)
		}
	}
	return out
}

// Preprocess runs the full Harmony preprocessing pipeline over free text:
// tokenize, drop stop words, stem. This is applied to both element names
// and documentation before any voter sees them.
func Preprocess(text string) []string {
	tokens := RemoveStopWords(Tokenize(text))
	for i, t := range tokens {
		tokens[i] = Stem(t)
	}
	return tokens
}

// PreprocessNoStem is Preprocess without stemming; used by the stemming
// ablation (DESIGN.md §5).
func PreprocessNoStem(text string) []string {
	return RemoveStopWords(Tokenize(text))
}
