package lingo

import "unicode/utf8"

// String-similarity primitives used by the name-based match voters.

// Levenshtein returns the edit distance between a and b (unit costs).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// EditSimilarity maps Levenshtein distance to [0,1]: 1 for identical
// strings, 0 for completely different ones.
func EditSimilarity(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

// JaroWinkler returns the Jaro-Winkler similarity in [0,1], the metric
// of choice for short identifier-like strings (rewards common prefixes,
// which abbreviation-heavy schema names exhibit).
func JaroWinkler(a, b string) float64 {
	j := jaro(a, b)
	if j == 0 {
		return 0
	}
	// Common prefix length, up to 4.
	ra, rb := []rune(a), []rune(b)
	l := 0
	for l < len(ra) && l < len(rb) && l < 4 && ra[l] == rb[l] {
		l++
	}
	const p = 0.1
	return j + float64(l)*p*(1-j)
}

func jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Transpositions.
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// NGrams returns the multiset of character n-grams of s as a frequency
// map, padding with '#' so that edges carry signal (standard trigram
// practice in schema matching).
func NGrams(s string, n int) map[string]int {
	if n <= 0 {
		return nil
	}
	// Capacity in runes, not bytes: len(s) over-sizes the buffer for any
	// multi-byte name, and the gram loop below is rune-indexed anyway.
	pad := make([]rune, 0, utf8.RuneCountInString(s)+2*(n-1))
	for i := 0; i < n-1; i++ {
		pad = append(pad, '#')
	}
	pad = append(pad, []rune(s)...)
	for i := 0; i < n-1; i++ {
		pad = append(pad, '#')
	}
	grams := make(map[string]int)
	for i := 0; i+n <= len(pad); i++ {
		grams[string(pad[i:i+n])]++
	}
	return grams
}

// TrigramSimilarity returns the Dice coefficient over character trigrams.
func TrigramSimilarity(a, b string) float64 {
	ga, gb := NGrams(a, 3), NGrams(b, 3)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	inter, total := 0, 0
	for g, ca := range ga {
		total += ca
		if cb, ok := gb[g]; ok {
			if ca < cb {
				inter += ca
			} else {
				inter += cb
			}
		}
	}
	for _, cb := range gb {
		total += cb
	}
	if total == 0 {
		return 0
	}
	return 2 * float64(inter) / float64(total)
}

// Jaccard returns the Jaccard similarity of two token sets.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	setA := make(map[string]bool, len(a))
	for _, t := range a {
		setA[t] = true
	}
	setB := make(map[string]bool, len(b))
	for _, t := range b {
		setB[t] = true
	}
	inter := 0
	for t := range setA {
		if setB[t] {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// OverlapCoefficient returns |A∩B| / min(|A|,|B|) over token sets; used by
// the domain-value voter where one coding scheme may be a subset of the
// other.
func OverlapCoefficient(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	setA := make(map[string]bool, len(a))
	for _, t := range a {
		setA[t] = true
	}
	setB := make(map[string]bool, len(b))
	for _, t := range b {
		setB[t] = true
	}
	inter := 0
	for t := range setA {
		if setB[t] {
			inter++
		}
	}
	m := len(setA)
	if len(setB) < m {
		m = len(setB)
	}
	if m == 0 {
		return 0
	}
	return float64(inter) / float64(m)
}
