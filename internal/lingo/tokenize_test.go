package lingo

import (
	"reflect"
	"testing"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"shipTo", []string{"ship", "to"}},
		{"firstName", []string{"first", "name"}},
		{"PurchaseOrder", []string{"purchase", "order"}},
		{"XMLSchema", []string{"xml", "schema"}},
		{"IDNumber", []string{"id", "number"}},
		{"ACID", []string{"acid"}},
		{"first_name", []string{"first", "name"}},
		{"first-name", []string{"first", "name"}},
		{"ship.to.address", []string{"ship", "to", "address"}},
		{"address2", []string{"address", "2"}},
		{"2ndLine", []string{"2", "nd", "line"}},
		{"the quick Brown fox", []string{"the", "quick", "brown", "fox"}},
		{"", nil},
		{"___", nil},
		{"AIRPORT_CODE", []string{"airport", "code"}},
		{"aircraftTypeID", []string{"aircraft", "type", "id"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRemoveStopWords(t *testing.T) {
	got := RemoveStopWords([]string{"the", "code", "of", "aircraft", "a"})
	want := []string{"code", "aircraft"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RemoveStopWords = %v, want %v", got, want)
	}
}

func TestIsStopWord(t *testing.T) {
	if !IsStopWord("the") || IsStopWord("aircraft") {
		t.Error("stop word classification wrong")
	}
}

func TestPreprocess(t *testing.T) {
	got := Preprocess("The identifier of the shipping address")
	// "the"/"of" dropped; remaining stemmed.
	want := []string{"identifi", "ship", "address"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Preprocess = %v, want %v", got, want)
	}
}

func TestPreprocessNoStem(t *testing.T) {
	got := PreprocessNoStem("The shipping address")
	want := []string{"shipping", "address"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PreprocessNoStem = %v, want %v", got, want)
	}
}

func TestTokenizePreservesOrder(t *testing.T) {
	got := Tokenize("sourceTargetMapping")
	want := []string{"source", "target", "mapping"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order wrong: %v", got)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("caféBar")
	want := []string{"café", "bar"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize unicode = %v, want %v", got, want)
	}
}
