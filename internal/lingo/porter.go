package lingo

// Stem implements the classic Porter stemming algorithm (Porter, 1980),
// the stemmer conventionally used by bag-of-words schema matchers. Input
// is expected to be a lowercase ASCII word; other inputs are returned
// with non-letter content untouched where the algorithm does not apply.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	b := []byte(word)
	for _, c := range b {
		if c < 'a' || c > 'z' {
			return word // digits/punctuation: leave as-is
		}
	}
	b = step1a(b)
	b = step1b(b)
	b = step1c(b)
	b = step2(b)
	b = step3(b)
	b = step4(b)
	b = step5a(b)
	b = step5b(b)
	return string(b)
}

// isConsonant reports whether b[i] is a consonant in Porter's sense:
// 'y' is a consonant when at the start or after a vowel.
func isConsonant(b []byte, i int) bool {
	switch b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isConsonant(b, i-1)
	default:
		return true
	}
}

// measure computes Porter's m: the number of VC sequences in b[:k].
func measure(b []byte) int {
	n := len(b)
	m := 0
	i := 0
	// Skip initial consonants.
	for i < n && isConsonant(b, i) {
		i++
	}
	for i < n {
		// Vowel run.
		for i < n && !isConsonant(b, i) {
			i++
		}
		if i >= n {
			break
		}
		// Consonant run: one VC found.
		m++
		for i < n && isConsonant(b, i) {
			i++
		}
	}
	return m
}

// hasVowel reports whether the stem contains a vowel.
func hasVowel(b []byte) bool {
	for i := range b {
		if !isConsonant(b, i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether b ends with a doubled consonant.
func endsDoubleConsonant(b []byte) bool {
	n := len(b)
	return n >= 2 && b[n-1] == b[n-2] && isConsonant(b, n-1)
}

// endsCVC reports whether b ends consonant-vowel-consonant where the final
// consonant is not w, x or y.
func endsCVC(b []byte) bool {
	n := len(b)
	if n < 3 {
		return false
	}
	if !isConsonant(b, n-3) || isConsonant(b, n-2) || !isConsonant(b, n-1) {
		return false
	}
	c := b[n-1]
	return c != 'w' && c != 'x' && c != 'y'
}

func hasSuffix(b []byte, s string) bool {
	if len(b) < len(s) {
		return false
	}
	return string(b[len(b)-len(s):]) == s
}

// replaceSuffix replaces suffix old with new when the stem before old has
// measure >= minM. It reports whether the suffix matched (regardless of
// whether the measure condition allowed the replacement).
func replaceSuffix(b []byte, old, new string, minM int) ([]byte, bool) {
	if !hasSuffix(b, old) {
		return b, false
	}
	stem := b[:len(b)-len(old)]
	if measure(stem) >= minM {
		return append(stem[:len(stem):len(stem)], new...), true
	}
	return b, true
}

func step1a(b []byte) []byte {
	switch {
	case hasSuffix(b, "sses"):
		return b[:len(b)-2]
	case hasSuffix(b, "ies"):
		return b[:len(b)-2]
	case hasSuffix(b, "ss"):
		return b
	case hasSuffix(b, "s"):
		return b[:len(b)-1]
	}
	return b
}

func step1b(b []byte) []byte {
	if hasSuffix(b, "eed") {
		if measure(b[:len(b)-3]) > 0 {
			return b[:len(b)-1]
		}
		return b
	}
	var stem []byte
	switch {
	case hasSuffix(b, "ed") && hasVowel(b[:len(b)-2]):
		stem = b[:len(b)-2]
	case hasSuffix(b, "ing") && hasVowel(b[:len(b)-3]):
		stem = b[:len(b)-3]
	default:
		return b
	}
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case endsDoubleConsonant(stem):
		c := stem[len(stem)-1]
		if c != 'l' && c != 's' && c != 'z' {
			return stem[:len(stem)-1]
		}
		return stem
	case measure(stem) == 1 && endsCVC(stem):
		return append(stem, 'e')
	}
	return stem
}

func step1c(b []byte) []byte {
	if hasSuffix(b, "y") && hasVowel(b[:len(b)-1]) {
		b = append(b[:len(b)-1:len(b)-1], 'i')
	}
	return b
}

// step2 suffix table, applied when the stem measure is > 0.
var step2Rules = []struct{ old, new string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(b []byte) []byte {
	for _, r := range step2Rules {
		if out, matched := replaceSuffix(b, r.old, r.new, 1); matched {
			return out
		}
	}
	return b
}

var step3Rules = []struct{ old, new string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(b []byte) []byte {
	for _, r := range step3Rules {
		if out, matched := replaceSuffix(b, r.old, r.new, 1); matched {
			return out
		}
	}
	return b
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(b []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(b, s) {
			continue
		}
		stem := b[:len(b)-len(s)]
		if measure(stem) <= 1 {
			return b
		}
		if s == "ion" {
			n := len(stem)
			if n == 0 || (stem[n-1] != 's' && stem[n-1] != 't') {
				return b
			}
		}
		return stem
	}
	return b
}

func step5a(b []byte) []byte {
	if !hasSuffix(b, "e") {
		return b
	}
	stem := b[:len(b)-1]
	m := measure(stem)
	if m > 1 || (m == 1 && !endsCVC(stem)) {
		return stem
	}
	return b
}

func step5b(b []byte) []byte {
	if hasSuffix(b, "ll") && measure(b) > 1 {
		return b[:len(b)-1]
	}
	return b
}
