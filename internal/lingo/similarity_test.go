package lingo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"name", "name", 0},
		{"shipTo", "shipto", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	symmetric := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error("symmetry:", err)
	}
	identity := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Error("identity:", err)
	}
	triangle := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(triangle, &quick.Config{MaxCount: 50}); err != nil {
		t.Error("triangle inequality:", err)
	}
}

func TestEditSimilarity(t *testing.T) {
	if EditSimilarity("abc", "abc") != 1 {
		t.Error("identical strings should be 1")
	}
	if EditSimilarity("", "") != 1 {
		t.Error("two empties should be 1")
	}
	if got := EditSimilarity("abc", "xyz"); got != 0 {
		t.Errorf("disjoint = %g, want 0", got)
	}
	if got := EditSimilarity("abcd", "abce"); got != 0.75 {
		t.Errorf("EditSimilarity(abcd,abce) = %g, want 0.75", got)
	}
}

func TestJaroWinkler(t *testing.T) {
	if got := JaroWinkler("martha", "marhta"); math.Abs(got-0.9611) > 0.001 {
		t.Errorf("JaroWinkler(martha,marhta) = %g, want ≈0.9611", got)
	}
	if got := JaroWinkler("dixon", "dicksonx"); math.Abs(got-0.8133) > 0.001 {
		t.Errorf("JaroWinkler(dixon,dicksonx) = %g, want ≈0.8133", got)
	}
	if JaroWinkler("same", "same") != 1 {
		t.Error("identical should be 1")
	}
	if JaroWinkler("abc", "xyz") != 0 {
		t.Error("disjoint should be 0")
	}
	if JaroWinkler("", "") != 1 {
		t.Error("empty-empty should be 1")
	}
	if JaroWinkler("a", "") != 0 {
		t.Error("one empty should be 0")
	}
}

func TestJaroWinklerRange(t *testing.T) {
	f := func(a, b string) bool {
		v := JaroWinkler(a, b)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaroWinklerPrefixBonus(t *testing.T) {
	// Common-prefix pairs should beat same-distance suffix pairs.
	if JaroWinkler("airport", "airports") <= JaroWinkler("airport", "xirports") {
		t.Error("prefix bonus missing")
	}
}

func TestNGrams(t *testing.T) {
	g := NGrams("ab", 3)
	// Padded: ##ab## → ##a, #ab, ab#, b##
	want := []string{"##a", "#ab", "ab#", "b##"}
	if len(g) != 4 {
		t.Fatalf("NGrams = %v", g)
	}
	for _, w := range want {
		if g[w] != 1 {
			t.Errorf("missing gram %q in %v", w, g)
		}
	}
	if NGrams("x", 0) != nil {
		t.Error("n<=0 should be nil")
	}
}

func TestNGramsNonASCII(t *testing.T) {
	// Regression for the byte-vs-rune confusion family (PR 2's
	// containmentSim bug): grams must be built over runes, so a
	// multi-byte name yields runeCount+n-1 gram positions, each n runes
	// long — never split mid-codepoint.
	for _, tc := range []struct {
		s string
		n int
	}{
		{"müller", 3},
		{"日付", 3},
		{"numéro", 2},
		{"日本語スキーマ", 3},
	} {
		g := NGrams(tc.s, tc.n)
		positions := 0
		for gram, count := range g {
			if got := len([]rune(gram)); got != tc.n {
				t.Errorf("NGrams(%q,%d): gram %q has %d runes", tc.s, tc.n, gram, got)
			}
			positions += count
		}
		want := len([]rune(tc.s)) + tc.n - 1
		if positions != want {
			t.Errorf("NGrams(%q,%d): %d gram positions, want %d", tc.s, tc.n, positions, want)
		}
	}
}

func TestTrigramSimilarityNonASCII(t *testing.T) {
	for _, s := range []string{"müller", "日付データ", "crédit"} {
		if got := TrigramSimilarity(s, s); got != 1 {
			t.Errorf("TrigramSimilarity(%q,%q) = %g, want 1", s, s, got)
		}
	}
	// Shared non-ASCII substring must register as similarity, and the
	// measure must be symmetric.
	a, b := "numéro", "numérotation"
	s1, s2 := TrigramSimilarity(a, b), TrigramSimilarity(b, a)
	if s1 <= 0 || s1 >= 1 {
		t.Errorf("TrigramSimilarity(%q,%q) = %g, want in (0,1)", a, b, s1)
	}
	if s1 != s2 {
		t.Errorf("asymmetric: %g vs %g", s1, s2)
	}
}

func TestJaroWinklerNonASCII(t *testing.T) {
	for _, s := range []string{"müller", "日付", "crédit"} {
		if got := JaroWinkler(s, s); got != 1 {
			t.Errorf("JaroWinkler(%q,%q) = %g, want 1", s, s, got)
		}
	}
	a, b := "müller", "mueller"
	s1, s2 := JaroWinkler(a, b), JaroWinkler(b, a)
	if s1 <= 0 || s1 >= 1 {
		t.Errorf("JaroWinkler(%q,%q) = %g, want in (0,1)", a, b, s1)
	}
	if s1 != s2 {
		t.Errorf("asymmetric: %g vs %g", s1, s2)
	}
}

func TestTrigramSimilarity(t *testing.T) {
	if TrigramSimilarity("night", "night") != 1 {
		t.Error("identical should be 1")
	}
	if TrigramSimilarity("", "") != 1 {
		t.Error("empty-empty should be 1")
	}
	a := TrigramSimilarity("night", "nacht")
	if a <= 0 || a >= 1 {
		t.Errorf("night/nacht = %g, want in (0,1)", a)
	}
	if TrigramSimilarity("abc", "xyz") != 0 {
		t.Error("disjoint should be 0")
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []string
		want float64
	}{
		{nil, nil, 1},
		{[]string{"a"}, nil, 0},
		{[]string{"a", "b"}, []string{"b", "c"}, 1.0 / 3},
		{[]string{"a", "a", "b"}, []string{"a", "b"}, 1}, // multiset collapses
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jaccard(%v,%v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestOverlapCoefficient(t *testing.T) {
	// Subset should be a perfect overlap — key for coding-scheme subsets.
	got := OverlapCoefficient([]string{"a", "b"}, []string{"a", "b", "c", "d"})
	if got != 1 {
		t.Errorf("subset overlap = %g, want 1", got)
	}
	if OverlapCoefficient(nil, []string{"a"}) != 0 {
		t.Error("empty side should be 0")
	}
	if got := OverlapCoefficient([]string{"a", "b"}, []string{"b", "c"}); got != 0.5 {
		t.Errorf("overlap = %g, want 0.5", got)
	}
}
