package lingo

import (
	"math"
	"testing"
)

func TestCorpusIDF(t *testing.T) {
	c := NewCorpus()
	c.AddDocument([]string{"code", "airport"})
	c.AddDocument([]string{"code", "runway"})
	c.AddDocument([]string{"code", "code"}) // dup within doc counts once
	if c.DocCount() != 3 {
		t.Fatalf("DocCount = %d", c.DocCount())
	}
	if c.docFreq["code"] != 3 {
		t.Errorf("df(code) = %d, want 3", c.docFreq["code"])
	}
	// Rarer words get higher IDF.
	if c.IDF("runway") <= c.IDF("code") {
		t.Error("rare word should have higher IDF")
	}
	// Unknown words get the highest IDF.
	if c.IDF("zzz") <= c.IDF("runway") {
		t.Error("unseen word should have highest IDF")
	}
}

func TestVectorAndCosine(t *testing.T) {
	c := NewCorpus()
	c.AddDocument([]string{"aircraft", "code"})
	c.AddDocument([]string{"runway", "code"})
	v1 := c.Vector([]string{"aircraft", "code"})
	v2 := c.Vector([]string{"aircraft", "code"})
	if got := Cosine(v1, v2); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical vectors cosine = %g", got)
	}
	v3 := c.Vector([]string{"runway"})
	if got := Cosine(v1, v3); got != 0 {
		t.Errorf("disjoint cosine = %g", got)
	}
	v4 := c.Vector([]string{"aircraft"})
	mid := Cosine(v1, v4)
	if mid <= 0 || mid >= 1 {
		t.Errorf("partial cosine = %g, want in (0,1)", mid)
	}
}

func TestCosineEmpty(t *testing.T) {
	c := NewCorpus()
	if Cosine(nil, c.Vector([]string{"a"})) != 0 {
		t.Error("nil vector cosine should be 0")
	}
	if c.Vector(nil) != nil {
		t.Error("Vector(nil) should be nil")
	}
}

func TestCosineSymmetric(t *testing.T) {
	c := NewCorpus()
	c.AddDocument([]string{"a", "b", "c"})
	v1 := c.Vector([]string{"a", "b"})
	v2 := c.Vector([]string{"b", "c", "d"})
	if math.Abs(Cosine(v1, v2)-Cosine(v2, v1)) > 1e-12 {
		t.Error("cosine not symmetric")
	}
}

func TestWordWeightLearning(t *testing.T) {
	c := NewCorpus()
	c.AddDocument([]string{"code", "airport"})
	if c.WordWeight("code") != 1 {
		t.Error("default weight should be 1")
	}
	c.AdjustWordWeight("code", 2)
	if c.WordWeight("code") != 2 {
		t.Errorf("weight = %g, want 2", c.WordWeight("code"))
	}
	// Clamping.
	for i := 0; i < 20; i++ {
		c.AdjustWordWeight("code", 2)
	}
	if c.WordWeight("code") != 10 {
		t.Errorf("weight should clamp at 10, got %g", c.WordWeight("code"))
	}
	for i := 0; i < 40; i++ {
		c.AdjustWordWeight("code", 0.5)
	}
	if c.WordWeight("code") != 0.1 {
		t.Errorf("weight should clamp at 0.1, got %g", c.WordWeight("code"))
	}
	// Learned weight flows into vectors.
	v := c.Vector([]string{"code"})
	c.ResetWordWeights()
	v2 := c.Vector([]string{"code"})
	if v["code"] >= v2["code"] {
		t.Error("down-weighted word should have smaller TF-IDF weight")
	}
}

func TestVectorTermFrequencyDamping(t *testing.T) {
	c := NewCorpus()
	c.AddDocument([]string{"a"})
	v1 := c.Vector([]string{"a"})
	v3 := c.Vector([]string{"a", "a", "a"})
	if v3["a"] <= v1["a"] {
		t.Error("higher TF should weigh more")
	}
	if v3["a"] >= 3*v1["a"] {
		t.Error("TF should be log-damped, not linear")
	}
}

func TestCosineDeterministicAcrossCalls(t *testing.T) {
	c := NewCorpus()
	docs := [][]string{
		{"price", "total", "order", "tax", "sum"},
		{"price", "cost", "amount", "order"},
		{"ship", "address", "city", "zip", "order", "total"},
	}
	for _, d := range docs {
		c.AddDocument(d)
	}
	a := c.Vector(docs[0])
	b := c.Vector(docs[2])
	want := Cosine(a, b)
	for i := 0; i < 100; i++ {
		if got := Cosine(a, b); got != want {
			t.Fatalf("Cosine nondeterministic: %v vs %v", got, want)
		}
		// Rebuilt maps must not change the result either.
		if got := Cosine(c.Vector(docs[0]), c.Vector(docs[2])); got != want {
			t.Fatalf("Cosine over rebuilt vectors: %v vs %v", got, want)
		}
	}
}

func TestCosineSortedMatchesCosine(t *testing.T) {
	c := NewCorpus()
	c.AddDocument([]string{"alpha", "beta", "gamma"})
	c.AddDocument([]string{"beta", "delta"})
	a := c.Vector([]string{"alpha", "beta", "beta", "gamma"})
	b := c.Vector([]string{"beta", "delta", "gamma"})
	if got, want := CosineSorted(a.Sorted(), b.Sorted()), Cosine(a, b); got != want {
		t.Errorf("CosineSorted = %v, Cosine = %v", got, want)
	}
	// Symmetry and empty-vector behavior.
	if CosineSorted(a.Sorted(), b.Sorted()) != CosineSorted(b.Sorted(), a.Sorted()) {
		t.Error("CosineSorted not symmetric")
	}
	if CosineSorted(Vector{}.Sorted(), a.Sorted()) != 0 {
		t.Error("empty vector should score 0")
	}
}
