package lingo

import (
	"reflect"
	"strings"
	"testing"
)

func TestThesaurusBasics(t *testing.T) {
	th := NewThesaurus()
	th.AddSynset("car", "auto", "automobile")
	if !th.AreSynonyms("car", "auto") || !th.AreSynonyms("AUTO", "automobile") {
		t.Error("synset members should be synonyms (case-insensitive)")
	}
	if th.AreSynonyms("car", "truck") {
		t.Error("non-members should not be synonyms")
	}
	if !th.AreSynonyms("truck", "truck") {
		t.Error("every word is its own synonym")
	}
	syn := th.Synonyms("car")
	if !reflect.DeepEqual(syn, []string{"auto", "automobile"}) {
		t.Errorf("Synonyms = %v", syn)
	}
	if th.Synonyms("unknown") != nil && len(th.Synonyms("unknown")) != 0 {
		t.Error("unknown word should have no synonyms")
	}
}

func TestThesaurusOverlappingSynsets(t *testing.T) {
	th := NewThesaurus()
	th.AddSynset("total", "sum")
	th.AddSynset("total", "amount")
	syn := th.Synonyms("total")
	if !reflect.DeepEqual(syn, []string{"amount", "sum"}) {
		t.Errorf("overlapping synsets union = %v", syn)
	}
	// Transitivity is NOT implied: sum and amount share no set.
	if th.AreSynonyms("sum", "amount") {
		t.Error("synonymy must not be transitive across synsets")
	}
}

func TestThesaurusExpand(t *testing.T) {
	th := NewThesaurus()
	th.AddSynset("ship", "delivery")
	got := th.Expand([]string{"ship", "to"})
	want := []string{"ship", "to", "delivery"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Expand = %v, want %v", got, want)
	}
	// Deduplication.
	got = th.Expand([]string{"ship", "ship", "delivery"})
	if !reflect.DeepEqual(got, []string{"ship", "delivery"}) {
		t.Errorf("Expand dedup = %v", got)
	}
}

func TestThesaurusAddSynsetDegenerate(t *testing.T) {
	th := NewThesaurus()
	th.AddSynset("only")
	th.AddSynset()
	th.AddSynset("a", "  ")
	if th.Len() != 1 {
		// AddSynset("a", "  ") keeps "a" only after trimming; it is
		// recorded but yields no synonym pairs.
		t.Logf("Len = %d", th.Len())
	}
	if len(th.Synonyms("only")) != 0 {
		t.Error("single-word synset should produce no synonyms")
	}
}

func TestThesaurusLoad(t *testing.T) {
	src := `
# commerce glossary
order, purchase , po
vendor,supplier
`
	th := NewThesaurus()
	if err := th.Load(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if th.Len() != 2 {
		t.Errorf("Len = %d, want 2", th.Len())
	}
	if !th.AreSynonyms("order", "po") || !th.AreSynonyms("vendor", "supplier") {
		t.Error("loaded synonyms missing")
	}
}

func TestThesaurusLoadError(t *testing.T) {
	th := NewThesaurus()
	err := th.Load(strings.NewReader("just-one-word\n"))
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("err = %v, want line-1 error", err)
	}
}

func TestDefaultThesaurus(t *testing.T) {
	th := DefaultThesaurus()
	if th.Len() < 40 {
		t.Errorf("default thesaurus has %d synsets, want a substantial table", th.Len())
	}
	// Spot checks across the three domains.
	pairs := [][2]string{
		{"order", "purchase"},
		{"vendor", "supplier"},
		{"airport", "facility"},
		{"aircraft", "flight"},
		{"employee", "staff"},
		{"salary", "pay"},
		{"id", "identifier"},
		{"last", "surname"},
	}
	for _, p := range pairs {
		if !th.AreSynonyms(p[0], p[1]) {
			t.Errorf("default thesaurus should relate %q and %q", p[0], p[1])
		}
	}
}
