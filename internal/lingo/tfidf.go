package lingo

import (
	"math"
	"sort"
)

// TF-IDF vector space used by the documentation bag-of-words voter. The
// paper's learning mechanism ("a bag-of-words matcher that weights each
// word based on inverted frequency increases or decreases word weight
// based on which words were most predictive", §4.3) is supported through
// per-word weight overrides.

// Corpus accumulates document frequencies so that IDF can be computed.
type Corpus struct {
	docCount int
	docFreq  map[string]int
	// wordWeight holds learned multiplicative overrides (default 1.0);
	// the Harmony engine adjusts these from user feedback.
	wordWeight map[string]float64
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{
		docFreq:    make(map[string]int),
		wordWeight: make(map[string]float64),
	}
}

// AddDocument records one document's tokens for document-frequency
// purposes. Duplicate tokens within a document count once.
func (c *Corpus) AddDocument(tokens []string) {
	c.docCount++
	seen := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		if !seen[t] {
			seen[t] = true
			c.docFreq[t]++
		}
	}
}

// DocCount returns the number of documents added.
func (c *Corpus) DocCount() int { return c.docCount }

// IDF returns the smoothed inverse document frequency of a token.
func (c *Corpus) IDF(token string) float64 {
	df := c.docFreq[token]
	return math.Log(float64(c.docCount+1)/float64(df+1)) + 1
}

// WordWeight returns the learned weight override for a token (1.0 when
// unlearned).
func (c *Corpus) WordWeight(token string) float64 {
	if w, ok := c.wordWeight[token]; ok {
		return w
	}
	return 1
}

// AdjustWordWeight multiplies a token's learned weight by factor, clamped
// to [0.1, 10] so that feedback cannot silence or dominate a word forever.
func (c *Corpus) AdjustWordWeight(token string, factor float64) {
	w := c.WordWeight(token) * factor
	if w < 0.1 {
		w = 0.1
	}
	if w > 10 {
		w = 10
	}
	c.wordWeight[token] = w
}

// ResetWordWeights clears all learned word weights.
func (c *Corpus) ResetWordWeights() {
	c.wordWeight = make(map[string]float64)
}

// Vector is a sparse TF-IDF vector.
type Vector map[string]float64

// Vector builds the TF-IDF vector of the given tokens against the corpus,
// applying learned word weights.
func (c *Corpus) Vector(tokens []string) Vector {
	if len(tokens) == 0 {
		return nil
	}
	tf := make(map[string]int, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	v := make(Vector, len(tf))
	for t, f := range tf {
		v[t] = (1 + math.Log(float64(f))) * c.IDF(t) * c.WordWeight(t)
	}
	return v
}

// Cosine returns the cosine similarity of two sparse vectors in [0,1].
// Terms are accumulated in sorted order so the floating-point sums — and
// therefore the result — are bit-identical across calls; map iteration
// order would otherwise leak ULP-level nondeterminism into every score.
func Cosine(a, b Vector) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	return CosineSorted(a.Sorted(), b.Sorted())
}

// SortedVector is a Vector frozen into sorted-term order with its
// Euclidean norm precomputed. It makes repeated cosine computations
// deterministic, hash-free and allocation-free — the representation the
// documentation voter sweeps O(|S|·|T|) pairs with.
type SortedVector struct {
	Terms   []string
	Weights []float64
	Norm    float64
}

// Sorted freezes the vector into term-sorted order.
func (v Vector) Sorted() SortedVector {
	terms := make([]string, 0, len(v))
	for t := range v {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	weights := make([]float64, len(terms))
	var norm float64
	for i, t := range terms {
		w := v[t]
		weights[i] = w
		norm += w * w
	}
	return SortedVector{Terms: terms, Weights: weights, Norm: math.Sqrt(norm)}
}

// CosineSorted returns the cosine similarity of two sorted vectors via a
// merge join over their term lists. Equivalent to Cosine up to summation
// order, and deterministic because that order is fixed.
func CosineSorted(a, b SortedVector) float64 {
	if len(a.Terms) == 0 || len(b.Terms) == 0 || a.Norm == 0 || b.Norm == 0 {
		return 0
	}
	var dot float64
	i, j := 0, 0
	for i < len(a.Terms) && j < len(b.Terms) {
		switch {
		case a.Terms[i] == b.Terms[j]:
			dot += a.Weights[i] * b.Weights[j]
			i++
			j++
		case a.Terms[i] < b.Terms[j]:
			i++
		default:
			j++
		}
	}
	return dot / (a.Norm * b.Norm)
}
