package lingo

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Thesaurus maps words to synonym sets. The paper's thesaurus voter
// "expands the elements' names using a thesaurus" (§4); enterprise
// deployments load domain glossaries, and a built-in table covers the
// domains exercised by the examples and the synthetic registry.
type Thesaurus struct {
	// synsets maps each word to the set ids it belongs to.
	synsets map[string][]int
	// members maps set id to its (sorted) member words.
	members map[int][]string
	nextID  int
}

// NewThesaurus returns an empty thesaurus.
func NewThesaurus() *Thesaurus {
	return &Thesaurus{
		synsets: make(map[string][]int),
		members: make(map[int][]string),
	}
}

// AddSynset records that the given words are mutually synonymous. Words
// are lowercased. Adding overlapping synsets is permitted; expansion
// unions all sets a word belongs to.
func (t *Thesaurus) AddSynset(words ...string) {
	if len(words) < 2 {
		return
	}
	id := t.nextID
	t.nextID++
	normalized := make([]string, 0, len(words))
	for _, w := range words {
		w = strings.ToLower(strings.TrimSpace(w))
		if w == "" {
			continue
		}
		normalized = append(normalized, w)
		t.synsets[w] = append(t.synsets[w], id)
	}
	sort.Strings(normalized)
	t.members[id] = normalized
}

// Synonyms returns all synonyms of word (excluding word itself), sorted.
func (t *Thesaurus) Synonyms(word string) []string {
	word = strings.ToLower(word)
	seen := map[string]bool{}
	for _, id := range t.synsets[word] {
		for _, m := range t.members[id] {
			if m != word {
				seen[m] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for w := range seen {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// AreSynonyms reports whether a and b share a synset (or are equal).
func (t *Thesaurus) AreSynonyms(a, b string) bool {
	a, b = strings.ToLower(a), strings.ToLower(b)
	if a == b {
		return true
	}
	idsA := t.synsets[a]
	idsB := t.synsets[b]
	for _, ia := range idsA {
		for _, ib := range idsB {
			if ia == ib {
				return true
			}
		}
	}
	return false
}

// Expand returns tokens plus every synonym of each token, deduplicated,
// original tokens first.
func (t *Thesaurus) Expand(tokens []string) []string {
	seen := make(map[string]bool, len(tokens))
	out := make([]string, 0, len(tokens))
	for _, tok := range tokens {
		if !seen[tok] {
			seen[tok] = true
			out = append(out, tok)
		}
	}
	for _, tok := range tokens {
		for _, syn := range t.Synonyms(tok) {
			if !seen[syn] {
				seen[syn] = true
				out = append(out, syn)
			}
		}
	}
	return out
}

// Len returns the number of synsets.
func (t *Thesaurus) Len() int { return len(t.members) }

// Load reads synsets from r, one per line, comma-separated; '#' starts a
// comment. This is the on-disk glossary format used by cmd/harmony's
// -thesaurus flag.
func (t *Thesaurus) Load(r io.Reader) error {
	sc := bufio.NewScanner(r)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		words := make([]string, 0, len(parts))
		for _, p := range parts {
			if w := strings.TrimSpace(p); w != "" {
				words = append(words, w)
			}
		}
		if len(words) < 2 {
			return fmt.Errorf("lingo: thesaurus line %d: need at least two words, got %q", ln, line)
		}
		t.AddSynset(words...)
	}
	return sc.Err()
}

// DefaultThesaurus returns a thesaurus preloaded with synonym sets for the
// domains the paper discusses: commerce (purchase orders), aviation (air
// traffic flow management), HR/personnel, plus generic schema vocabulary
// and common abbreviations.
func DefaultThesaurus() *Thesaurus {
	t := NewThesaurus()
	for _, set := range [][]string{
		// Generic schema vocabulary.
		{"id", "identifier", "key", "code"},
		{"name", "title", "label"},
		{"description", "definition", "comment", "remark", "note"},
		{"type", "kind", "category", "class"},
		{"number", "num", "no", "count"},
		{"date", "day"},
		{"time", "timestamp"},
		{"amount", "quantity", "qty", "total", "sum"},
		{"price", "cost", "charge", "fee", "rate"},
		{"address", "addr", "location", "place"},
		{"state", "province", "region"},
		{"zip", "zipcode", "postcode", "postal"},
		{"phone", "telephone", "tel"},
		{"start", "begin", "commence"},
		{"end", "finish", "stop", "terminate"},
		// Commerce.
		{"order", "purchase", "po"},
		{"customer", "client", "buyer", "purchaser"},
		{"vendor", "supplier", "seller", "merchant"},
		{"item", "product", "article", "goods", "line"},
		{"ship", "shipping", "shipment", "delivery", "deliver"},
		{"bill", "billing", "invoice"},
		{"subtotal", "total"},
		{"first", "given"},
		{"last", "family", "surname"},
		// Aviation / air traffic flow management.
		{"aircraft", "plane", "airplane", "flight"},
		{"airport", "aerodrome", "airfield", "facility"},
		{"runway", "strip"},
		{"route", "path", "airway", "course"},
		{"weather", "meteorology", "metar"},
		{"departure", "takeoff", "origin"},
		{"arrival", "landing", "destination"},
		{"carrier", "airline", "operator"},
		{"altitude", "elevation", "height", "level"},
		{"speed", "velocity"},
		{"latitude", "lat"},
		{"longitude", "lon", "long"},
		// HR / personnel.
		{"employee", "staff", "worker", "personnel"},
		{"salary", "pay", "wage", "compensation"},
		{"department", "dept", "division", "unit", "organization", "org"},
		{"manager", "supervisor", "boss"},
		{"person", "individual", "people"},
		{"birth", "born", "dob"},
		{"student", "pupil"},
		{"professor", "instructor", "teacher", "faculty"},
		{"course", "class"},
		{"grade", "mark", "score"},
	} {
		t.AddSynset(set...)
	}
	return t
}
