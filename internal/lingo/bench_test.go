package lingo

import "testing"

var benchDoc = "The unique identifier assigned to the departure facility " +
	"that originates the scheduled flight within the national airspace system"

func BenchmarkTokenize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize("scheduledDepartureFacilityIdentifierCode")
	}
}

func BenchmarkPreprocess(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Preprocess(benchDoc)
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"conditional", "shipping", "identification", "facilities", "departure"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Levenshtein("departureFacility", "facilityDeparture")
	}
}

func BenchmarkJaroWinkler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		JaroWinkler("departureFacility", "facilityDeparture")
	}
}

func BenchmarkTrigramSimilarity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		TrigramSimilarity("departureFacility", "facilityDeparture")
	}
}

func BenchmarkCosine(b *testing.B) {
	c := NewCorpus()
	t1 := Preprocess(benchDoc)
	t2 := Preprocess("Code identifying the facility from which the flight departs")
	c.AddDocument(t1)
	c.AddDocument(t2)
	v1, v2 := c.Vector(t1), c.Vector(t2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cosine(v1, v2)
	}
}

func BenchmarkThesaurusExpand(b *testing.B) {
	th := DefaultThesaurus()
	toks := []string{"departure", "facility", "identifier"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Expand(toks)
	}
}
