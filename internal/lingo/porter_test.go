package lingo

import "testing"

// TestStemKnownPairs checks the classic Porter reference examples plus
// schema-domain vocabulary.
func TestStemKnownPairs(t *testing.T) {
	cases := []struct{ in, want string }{
		// Step 1a.
		{"caresses", "caress"},
		{"ponies", "poni"},
		{"caress", "caress"},
		{"cats", "cat"},
		// Step 1b.
		{"feed", "feed"},
		{"agreed", "agre"},
		{"plastered", "plaster"},
		{"bled", "bled"},
		{"motoring", "motor"},
		{"sing", "sing"},
		{"conflated", "conflat"},
		{"troubled", "troubl"},
		{"sized", "size"},
		{"hopping", "hop"},
		{"tanned", "tan"},
		{"falling", "fall"},
		{"hissing", "hiss"},
		{"fizzed", "fizz"},
		{"failing", "fail"},
		{"filing", "file"},
		// Step 1c.
		{"happy", "happi"},
		{"sky", "sky"},
		// Step 2.
		{"relational", "relat"},
		{"conditional", "condit"},
		{"rational", "ration"},
		{"valenci", "valenc"},
		{"digitizer", "digit"},
		{"operator", "oper"},
		{"feudalism", "feudal"},
		{"decisiveness", "decis"},
		{"hopefulness", "hope"},
		{"callousness", "callous"},
		{"formaliti", "formal"},
		{"sensitiviti", "sensit"},
		{"sensibiliti", "sensibl"},
		// Step 3.
		{"triplicate", "triplic"},
		{"formative", "form"},
		{"formalize", "formal"},
		{"electriciti", "electr"},
		{"electrical", "electr"},
		{"hopeful", "hope"},
		{"goodness", "good"},
		// Step 4.
		{"revival", "reviv"},
		{"allowance", "allow"},
		{"inference", "infer"},
		{"airliner", "airlin"},
		{"adjustable", "adjust"},
		{"defensible", "defens"},
		{"irritant", "irrit"},
		{"replacement", "replac"},
		{"adjustment", "adjust"},
		{"dependent", "depend"},
		{"adoption", "adopt"},
		{"communism", "commun"},
		{"activate", "activ"},
		{"angulariti", "angular"},
		{"homologous", "homolog"},
		{"effective", "effect"},
		{"bowdlerize", "bowdler"},
		// Step 5.
		{"probate", "probat"},
		{"rate", "rate"},
		{"cease", "ceas"},
		{"controll", "control"},
		{"roll", "roll"},
		// Schema vocabulary: matching forms should collide.
		{"shipping", "ship"},
		{"shipped", "ship"},
		{"identification", "identif"},
		{"departure", "departur"},
	}
	for _, c := range cases {
		if got := Stem(c.in); got != c.want {
			t.Errorf("Stem(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStemCollisions(t *testing.T) {
	// The property that matters for matching: inflected forms of the same
	// word stem identically.
	groups := [][]string{
		{"connect", "connected", "connecting", "connection", "connections"},
		{"ship", "ships", "shipped", "shipping"},
		{"order", "orders", "ordered", "ordering"},
	}
	for _, g := range groups {
		base := Stem(g[0])
		for _, w := range g[1:] {
			if got := Stem(w); got != base {
				t.Errorf("Stem(%q) = %q, want %q (same as %q)", w, got, base, g[0])
			}
		}
	}
}

func TestStemShortAndNonAlpha(t *testing.T) {
	for _, w := range []string{"a", "is", "go", "42", "a1b", "café"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	words := []string{"shipping", "orders", "conditional", "aircraft",
		"runway", "departure", "weather", "facilities", "routing"}
	for _, w := range words {
		once := Stem(w)
		twice := Stem(once)
		// Porter is not guaranteed idempotent in general, but it must be
		// stable for our domain vocabulary so that preprocessing applied
		// twice (name + doc pipelines) agrees.
		if twice != once {
			t.Errorf("Stem not stable: %q → %q → %q", w, once, twice)
		}
	}
}

func TestMeasure(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"tr", 0}, {"ee", 0}, {"tree", 0}, {"y", 0}, {"by", 0},
		{"trouble", 1}, {"oats", 1}, {"trees", 1}, {"ivy", 1},
		{"troubles", 2}, {"private", 2}, {"oaten", 2},
	}
	for _, c := range cases {
		if got := measure([]byte(c.in)); got != c.want {
			t.Errorf("measure(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestEndsCVC(t *testing.T) {
	if !endsCVC([]byte("hop")) {
		t.Error("hop should be CVC")
	}
	for _, w := range []string{"snow", "box", "tray", "ho"} {
		if endsCVC([]byte(w)) {
			t.Errorf("%q should not be CVC (w/x/y rule or too short)", w)
		}
	}
}

func TestIsConsonantY(t *testing.T) {
	// 'y' at start is a consonant; after a vowel it is a consonant; after
	// a consonant it is a vowel.
	b := []byte("yoyo")
	if !isConsonant(b, 0) {
		t.Error("leading y should be consonant")
	}
	s := []byte("syzygy")
	if isConsonant(s, 1) {
		t.Error("y after consonant should be vowel")
	}
}
