-- Schema-set fixture: version v1 of the core orders schema.
CREATE TABLE orders (
  id     INTEGER PRIMARY KEY,
  status VARCHAR(16),
  ShipTo VARCHAR(64)
);
COMMENT ON TABLE orders IS 'Customer purchase orders';
COMMENT ON COLUMN orders.status IS 'Order fulfilment status code';
