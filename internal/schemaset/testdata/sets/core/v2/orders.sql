-- Schema-set fixture: version v2 bumps orders — status narrows, ShipTo
-- is re-cased, created_at is new.
CREATE TABLE orders (
  id         INTEGER PRIMARY KEY,
  status     CHAR(8),
  shipTo     VARCHAR(64),
  created_at DATE
);
COMMENT ON TABLE orders IS 'Customer purchase orders';
COMMENT ON COLUMN orders.status IS 'Order fulfilment status code';
