package schemaset

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/blackboard"
	"repro/internal/harmony"
	"repro/internal/model"
)

// Action classifies what apply would do to one schema.
type Action string

// Per-schema plan actions.
const (
	// ActionCreate: the blackboard has no schema under this name.
	ActionCreate Action = "create"
	// ActionUpdate: the blackboard copy differs from the declared file.
	ActionUpdate Action = "update"
	// ActionNoop: declared content hash equals the blackboard copy's.
	ActionNoop Action = "no-op"
)

// SchemaPlan is the computed plan for one declared schema.
type SchemaPlan struct {
	Name   string
	Format string
	Action Action
	// Hash is the declared file's content hash; LockHash what the
	// lockfile recorded at the last apply ("" = never locked); BBHash
	// the blackboard's current copy ("" = absent).
	Hash     string
	LockHash string
	BBHash   string
	// Drift is out-of-band change: the blackboard copy no longer
	// matches the lockfile — someone mutated shared state since the
	// last apply, and this apply will overwrite their change.
	Drift bool
	// Diff details an update (old blackboard copy → declared file).
	Diff []model.DiffEntry

	// Schema is the loaded declared schema apply will put.
	Schema *model.Schema
}

// Plan is the full change plan for one schema set: what apply would do,
// computed without mutating anything.
type Plan struct {
	Set     string
	Version string
	// LockVersion is the set version the lockfile recorded ("" = the
	// set was never applied).
	LockVersion string
	// Schemas is the per-schema plan, sorted by schema name.
	Schemas []SchemaPlan
}

// NewPlan diffs a set's declared schemas against the blackboard and the
// lockfile. schemas are the set's loaded declared files (LoadSet, or
// built programmatically); the blackboard is only read.
func NewPlan(bb *blackboard.Blackboard, set *Set, schemas []*model.Schema, lock *Lockfile) (*Plan, error) {
	if lock == nil {
		lock = &Lockfile{}
	}
	p := &Plan{Set: set.Name, Version: set.Version}
	ls := lock.Set(set.Name)
	if ls != nil {
		p.LockVersion = ls.Version
	}
	for _, sch := range schemas {
		if err := sch.Validate(); err != nil {
			return nil, fmt.Errorf("schemaset: set %q schema %q: %v", set.Name, sch.Name, err)
		}
		sp := SchemaPlan{
			Name:   sch.Name,
			Format: sch.Format,
			Hash:   harmony.SchemaHash(sch),
			Schema: sch,
		}
		if ls != nil {
			if lsc := ls.Schema(sch.Name); lsc != nil {
				sp.LockHash = lsc.Hash
			}
		}
		cur, err := bb.GetSchema(sch.Name)
		if err != nil {
			sp.Action = ActionCreate
		} else {
			sp.BBHash = harmony.SchemaHash(cur)
			if sp.BBHash == sp.Hash {
				sp.Action = ActionNoop
			} else {
				sp.Action = ActionUpdate
				sp.Diff = model.Diff(cur, sch)
			}
			if sp.LockHash != "" && sp.BBHash != sp.LockHash {
				sp.Drift = true
			}
		}
		p.Schemas = append(p.Schemas, sp)
	}
	sort.Slice(p.Schemas, func(i, j int) bool { return p.Schemas[i].Name < p.Schemas[j].Name })
	return p, nil
}

// NoOp reports whether apply would change nothing: every schema hashes
// equal to its blackboard copy. A no-op apply runs zero transactions.
func (p *Plan) NoOp() bool {
	for i := range p.Schemas {
		if p.Schemas[i].Action != ActionNoop {
			return false
		}
	}
	return true
}

// Changed counts schemas apply would create or update.
func (p *Plan) Changed() int {
	n := 0
	for i := range p.Schemas {
		if p.Schemas[i].Action != ActionNoop {
			n++
		}
	}
	return n
}

// DirtyFor returns the element IDs a mapping over the named schema
// should treat as dirty after this plan applies: the diff's removed,
// changed and renamed rows (old IDs) plus renamed/added new paths, each
// prefixed with the schema name to form full element IDs. The hints are
// advisory — Engine.Rematch unions them with its own signature diff —
// but naming them keeps apply's intent explicit in traces and tests.
func (p *Plan) DirtyFor(schemaName string) []string {
	var out []string
	for i := range p.Schemas {
		sp := &p.Schemas[i]
		if sp.Name != schemaName {
			continue
		}
		for _, d := range sp.Diff {
			switch d.Kind {
			case model.ElementRemoved, model.ElementChanged, model.ElementRenamed, model.ElementAdded:
				out = append(out, schemaName+"/"+d.ID)
			}
		}
	}
	sort.Strings(out)
	return out
}

// shortHash abbreviates a 16-hex hash for plan rendering.
func shortHash(h string) string {
	if h == "" {
		return "(none)"
	}
	if len(h) > 8 {
		return h[:8]
	}
	return h
}

// Render prints the human-readable change plan the CLI shows before the
// confirmation prompt. The output is deterministic for a given plan
// (schemas sorted by name, diff entries in model.Diff order) and is
// covered by a golden-file test — change it deliberately.
func (p *Plan) Render(w io.Writer) {
	if p.LockVersion == "" {
		fmt.Fprintf(w, "set %s → %s (not locked)\n", p.Set, p.Version)
	} else if p.LockVersion == p.Version {
		fmt.Fprintf(w, "set %s @ %s\n", p.Set, p.Version)
	} else {
		fmt.Fprintf(w, "set %s: %s → %s\n", p.Set, p.LockVersion, p.Version)
	}
	creates, updates, noops := 0, 0, 0
	for i := range p.Schemas {
		sp := &p.Schemas[i]
		switch sp.Action {
		case ActionCreate:
			creates++
			fmt.Fprintf(w, "  + %s (%s) create  %s\n", sp.Name, sp.Format, shortHash(sp.Hash))
		case ActionUpdate:
			updates++
			fmt.Fprintf(w, "  ~ %s (%s) update  %s → %s\n", sp.Name, sp.Format, shortHash(sp.BBHash), shortHash(sp.Hash))
			for _, d := range sp.Diff {
				fmt.Fprintf(w, "      %s\n", d)
			}
		case ActionNoop:
			noops++
			fmt.Fprintf(w, "  = %s (%s) no-op\n", sp.Name, sp.Format)
		}
		if sp.Drift {
			fmt.Fprintf(w, "  ! %s: blackboard copy (%s) drifted from lockfile (%s); apply overwrites it\n",
				sp.Name, shortHash(sp.BBHash), shortHash(sp.LockHash))
		}
	}
	fmt.Fprintf(w, "plan: %d to create, %d to update, %d unchanged\n", creates, updates, noops)
}

// LockSet converts the plan into the lock entry a successful apply
// records: every declared schema at its declared hash.
func (p *Plan) LockSet() LockSet {
	ls := LockSet{Name: p.Set, Version: p.Version}
	for i := range p.Schemas {
		sp := &p.Schemas[i]
		ls.Schemas = append(ls.Schemas, LockSchema{Name: sp.Name, Format: sp.Format, Hash: sp.Hash})
	}
	return ls
}
