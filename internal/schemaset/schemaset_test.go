package schemaset

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/blackboard"
	"repro/internal/model"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenCompare asserts got matches the committed golden file byte for
// byte; `go test ./internal/schemaset -update` rewrites the goldens.
func goldenCompare(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("%s: output drifted from golden file.\n--- golden ---\n%s\n--- got ---\n%s", path, want, got)
	}
}

// loadTestSet loads the committed core set at a version.
func loadTestSet(t *testing.T, version string) (*Config, *Set, []*model.Schema) {
	t.Helper()
	cfg, err := LoadConfig(filepath.Join("testdata", "schemasets.json"))
	if err != nil {
		t.Fatal(err)
	}
	set := cfg.Set("core")
	if set == nil {
		t.Fatal("testdata config lost its core set")
	}
	set.Version = version
	schemas, err := LoadSet(cfg.Root, set)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, set, schemas
}

func TestParseConfigValid(t *testing.T) {
	c, err := ParseConfig([]byte(`{"root": "r", "sets": [{"name": "a", "version": "v1", "schemas": ["x.sql"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Root != "r" || len(c.Sets) != 1 || c.Sets[0].Name != "a" || c.Sets[0].Version != "v1" {
		t.Fatalf("parsed config = %+v", c)
	}
	if got := c.SetNames(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("SetNames = %v", got)
	}
	if c.Set("missing") != nil {
		t.Fatal("Set(missing) != nil")
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []struct {
		name, input, want string
	}{
		{"not json", `{`, "parse config"},
		{"unknown field", `{"sets": [], "typo": 1}`, "unknown field"},
		{"trailing data", `{"sets": [{"name": "a", "version": "v1", "schemas": ["x.sql"]}]} {}`, "trailing data"},
		{"no sets", `{"sets": []}`, "declares no sets"},
		{"empty set name", `{"sets": [{"name": "", "version": "v1", "schemas": ["x.sql"]}]}`, "empty name"},
		{"path set name", `{"sets": [{"name": "a/b", "version": "v1", "schemas": ["x.sql"]}]}`, "bare name"},
		{"dotdot version", `{"sets": [{"name": "a", "version": "..", "schemas": ["x.sql"]}]}`, "bare name"},
		{"duplicate set", `{"sets": [{"name": "a", "version": "v1", "schemas": ["x.sql"]}, {"name": "a", "version": "v2", "schemas": ["x.sql"]}]}`, "duplicate set"},
		{"no schemas", `{"sets": [{"name": "a", "version": "v1", "schemas": []}]}`, "declares no schemas"},
		{"bad extension", `{"sets": [{"name": "a", "version": "v1", "schemas": ["x.csv"]}]}`, "unknown schema extension"},
		{"schema path escape", `{"sets": [{"name": "a", "version": "v1", "schemas": ["../x.sql"]}]}`, "bare name"},
		{"stem collision", `{"sets": [{"name": "a", "version": "v1", "schemas": ["x.sql", "x.ddl"]}]}`, "both load as schema"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseConfig([]byte(tc.input))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v; want substring %q", err, tc.want)
			}
		})
	}
}

func TestLoadConfigResolvesRoot(t *testing.T) {
	cfg, _, _ := loadTestSet(t, "v1")
	if want := filepath.Join("testdata", "sets"); cfg.Root != want {
		t.Fatalf("Root = %q; want %q", cfg.Root, want)
	}
}

func TestLoadSet(t *testing.T) {
	_, _, schemas := loadTestSet(t, "v1")
	if len(schemas) != 2 {
		t.Fatalf("LoadSet returned %d schemas; want 2", len(schemas))
	}
	if schemas[0].Name != "orders" || schemas[0].Format != "sql" {
		t.Fatalf("schema 0 = %s (%s)", schemas[0].Name, schemas[0].Format)
	}
	if schemas[1].Name != "shipping" || schemas[1].Format != "xsd" {
		t.Fatalf("schema 1 = %s (%s)", schemas[1].Name, schemas[1].Format)
	}

	cfg, set, _ := loadTestSet(t, "v1")
	set.Version = "v9"
	if _, err := LoadSet(cfg.Root, set); err == nil {
		t.Fatal("LoadSet with a missing version directory did not fail")
	}
}

func TestSchemaNameFormat(t *testing.T) {
	cases := []struct {
		file, name, format string
		ok                 bool
	}{
		{"orders.sql", "orders", "sql", true},
		{"orders.DDL", "orders", "sql", true},
		{"po.xsd", "po", "xsd", true},
		{"po.XML", "po", "xsd", true},
		{"flight.er", "flight", "er", true},
		{"notes.txt", "", "", false},
		{"plain", "", "", false},
	}
	for _, tc := range cases {
		name, format, err := SchemaNameFormat(tc.file)
		if tc.ok != (err == nil) || name != tc.name || format != tc.format {
			t.Errorf("SchemaNameFormat(%q) = %q, %q, %v; want %q, %q, ok=%t",
				tc.file, name, format, err, tc.name, tc.format, tc.ok)
		}
	}
}

func TestLockfileValidateErrors(t *testing.T) {
	cases := []struct {
		name, input, want string
	}{
		{"unknown field", `{"sets": [], "extra": true}`, "unknown field"},
		{"trailing data", `{"sets": []} []`, "trailing data"},
		{"empty set name", `{"sets": [{"name": "", "version": "v1", "schemas": []}]}`, "empty name"},
		{"duplicate set", `{"sets": [{"name": "a", "version": "v1", "schemas": []}, {"name": "a", "version": "v1", "schemas": []}]}`, "duplicate set"},
		{"no version", `{"sets": [{"name": "a", "version": "", "schemas": []}]}`, "has no version"},
		{"duplicate schema", `{"sets": [{"name": "a", "version": "v1", "schemas": [{"name": "x", "format": "sql", "hash": "0123456789abcdef"}, {"name": "x", "format": "sql", "hash": "0123456789abcdef"}]}]}`, "duplicate schema"},
		{"bad format", `{"sets": [{"name": "a", "version": "v1", "schemas": [{"name": "x", "format": "csv", "hash": "0123456789abcdef"}]}]}`, "unknown format"},
		{"short hash", `{"sets": [{"name": "a", "version": "v1", "schemas": [{"name": "x", "format": "sql", "hash": "abc"}]}]}`, "malformed hash"},
		{"uppercase hash", `{"sets": [{"name": "a", "version": "v1", "schemas": [{"name": "x", "format": "sql", "hash": "0123456789ABCDEF"}]}]}`, "malformed hash"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseLockfile([]byte(tc.input))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v; want substring %q", err, tc.want)
			}
		})
	}
}

// TestLockfileMarshalGolden pins the canonical serialized form: sets and
// schemas sorted by name regardless of insertion order, two-space
// indent, trailing newline.
func TestLockfileMarshalGolden(t *testing.T) {
	l := &Lockfile{}
	l.Upsert(LockSet{Name: "warehouse", Version: "2024.2", Schemas: []LockSchema{
		{Name: "stock", Format: "sql", Hash: "00112233aabbccdd"},
	}})
	l.Upsert(LockSet{Name: "core", Version: "v2", Schemas: []LockSchema{
		{Name: "shipping", Format: "xsd", Hash: "ffeeddccbbaa9988"},
		{Name: "orders", Format: "sql", Hash: "0123456789abcdef"},
	}})
	goldenCompare(t, filepath.Join("testdata", "lockfile.golden.json"), l.Marshal())

	// Marshal → Parse → Marshal is the identity on the bytes.
	first := l.Marshal()
	parsed, err := ParseLockfile(first)
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v", err)
	}
	if !bytes.Equal(first, parsed.Marshal()) {
		t.Error("Marshal→Parse→Marshal is not the identity")
	}

	empty := (&Lockfile{}).Marshal()
	if want := "{\n  \"sets\": []\n}\n"; string(empty) != want {
		t.Errorf("empty lockfile marshals as %q; want %q", empty, want)
	}
}

func TestLoadLockfileMissing(t *testing.T) {
	l, err := LoadLockfile(filepath.Join(t.TempDir(), "nope.lock.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Sets) != 0 {
		t.Fatalf("missing lockfile loaded as %+v", l)
	}
}

func TestWriteLockfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sets.lock.json")
	l := &Lockfile{Sets: []LockSet{{Name: "a", Version: "v1", Schemas: []LockSchema{
		{Name: "x", Format: "sql", Hash: "0123456789abcdef"},
	}}}}
	if err := WriteLockfile(path, l); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, l.Marshal()) {
		t.Error("written lockfile differs from Marshal output")
	}

	// Overwrite replaces atomically and leaves no temp files behind.
	l.Upsert(LockSet{Name: "a", Version: "v2", Schemas: l.Sets[0].Schemas})
	if err := WriteLockfile(path, l); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLockfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Set("a").Version != "v2" {
		t.Fatalf("reloaded version = %q; want v2", got.Set("a").Version)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("lock dir has %d entries after rewrite; want 1", len(entries))
	}
}

func TestUpsert(t *testing.T) {
	l := &Lockfile{}
	l.Upsert(LockSet{Name: "b", Version: "v1"})
	l.Upsert(LockSet{Name: "a", Version: "v1"})
	l.Upsert(LockSet{Name: "b", Version: "v2"})
	if len(l.Sets) != 2 || l.Sets[0].Name != "a" || l.Sets[1].Name != "b" || l.Sets[1].Version != "v2" {
		t.Fatalf("after upserts: %+v", l.Sets)
	}
}

// seedBlackboard puts the v1 core set on a fresh blackboard and returns
// it with the lock entry a v1 apply would have recorded.
func seedBlackboard(t *testing.T) (*blackboard.Blackboard, *Lockfile) {
	t.Helper()
	_, set, schemas := loadTestSet(t, "v1")
	bb := blackboard.New()
	for _, s := range schemas {
		if _, err := bb.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}
	p, err := NewPlan(bb, set, schemas, nil)
	if err != nil {
		t.Fatal(err)
	}
	lock := &Lockfile{}
	lock.Upsert(p.LockSet())
	return bb, lock
}

func TestPlanActions(t *testing.T) {
	_, set, v1 := loadTestSet(t, "v1")

	// Empty blackboard: everything is a create.
	p, err := NewPlan(blackboard.New(), set, v1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range p.Schemas {
		if sp.Action != ActionCreate || sp.BBHash != "" {
			t.Fatalf("fresh plan: %s action=%s bbhash=%q", sp.Name, sp.Action, sp.BBHash)
		}
	}
	if p.NoOp() || p.Changed() != 2 || p.LockVersion != "" {
		t.Fatalf("fresh plan: noop=%t changed=%d lockVersion=%q", p.NoOp(), p.Changed(), p.LockVersion)
	}

	// Re-planning the applied version is a pure no-op.
	bb, lock := seedBlackboard(t)
	p, err = NewPlan(bb, set, v1, lock)
	if err != nil {
		t.Fatal(err)
	}
	if !p.NoOp() || p.Changed() != 0 || p.LockVersion != "v1" {
		t.Fatalf("steady-state plan: noop=%t changed=%d lockVersion=%q", p.NoOp(), p.Changed(), p.LockVersion)
	}

	// The v2 bump updates orders (shipping's content is unchanged).
	_, set2, v2 := loadTestSet(t, "v2")
	p, err = NewPlan(bb, set2, v2, lock)
	if err != nil {
		t.Fatal(err)
	}
	if p.NoOp() || p.Changed() != 1 {
		t.Fatalf("v2 plan: noop=%t changed=%d", p.NoOp(), p.Changed())
	}
	var orders *SchemaPlan
	for i := range p.Schemas {
		if p.Schemas[i].Name == "orders" {
			orders = &p.Schemas[i]
		}
	}
	if orders == nil || orders.Action != ActionUpdate || len(orders.Diff) == 0 || orders.Drift {
		t.Fatalf("orders plan = %+v", orders)
	}
	renamed := false
	for _, d := range orders.Diff {
		if d.Kind == model.ElementRenamed {
			renamed = true
		}
	}
	if !renamed {
		t.Error("v2 diff misses the ShipTo → shipTo case rename")
	}

	dirty := p.DirtyFor("orders")
	if len(dirty) == 0 {
		t.Fatal("DirtyFor(orders) is empty for an update")
	}
	for _, id := range dirty {
		if !strings.HasPrefix(id, "orders/") {
			t.Fatalf("dirty hint %q lacks the schema prefix", id)
		}
	}
	if !sortedStrings(dirty) {
		t.Fatalf("dirty hints not sorted: %v", dirty)
	}
	if got := p.DirtyFor("shipping"); len(got) != 0 {
		t.Fatalf("DirtyFor(shipping) = %v; want none for a no-op schema", got)
	}

	ls := p.LockSet()
	if ls.Name != "core" || ls.Version != "v2" || len(ls.Schemas) != 2 {
		t.Fatalf("LockSet = %+v", ls)
	}
	for _, sc := range ls.Schemas {
		if !validHash(sc.Hash) {
			t.Fatalf("LockSet hash %q not canonical", sc.Hash)
		}
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

func TestPlanDrift(t *testing.T) {
	bb, lock := seedBlackboard(t)
	// Someone changed the blackboard behind the lockfile's back:
	// simulate by corrupting the recorded hash.
	lock.Set("core").Schema("orders").Hash = strings.Repeat("0", 16)
	_, set, v1 := loadTestSet(t, "v1")
	p, err := NewPlan(bb, set, v1, lock)
	if err != nil {
		t.Fatal(err)
	}
	var orders *SchemaPlan
	for i := range p.Schemas {
		if p.Schemas[i].Name == "orders" {
			orders = &p.Schemas[i]
		}
	}
	if orders == nil || !orders.Drift {
		t.Fatalf("orders plan = %+v; want Drift", orders)
	}
	var buf bytes.Buffer
	p.Render(&buf)
	if !strings.Contains(buf.String(), "drifted from lockfile") {
		t.Errorf("drift warning missing from render:\n%s", buf.String())
	}
}

// TestPlanRenderGolden pins the human-readable plan output the CLI shows
// before the confirmation prompt.
func TestPlanRenderGolden(t *testing.T) {
	_, set, v1 := loadTestSet(t, "v1")
	p, err := NewPlan(blackboard.New(), set, v1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var create bytes.Buffer
	p.Render(&create)
	goldenCompare(t, filepath.Join("testdata", "plan_create.golden"), create.Bytes())

	bb, lock := seedBlackboard(t)
	_, set2, v2 := loadTestSet(t, "v2")
	p, err = NewPlan(bb, set2, v2, lock)
	if err != nil {
		t.Fatal(err)
	}
	var upd bytes.Buffer
	p.Render(&upd)
	goldenCompare(t, filepath.Join("testdata", "plan_update.golden"), upd.Bytes())
}
