package schemaset

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Lockfile records what a prior apply put on the blackboard: for every
// set, the applied version and each schema's content hash
// (harmony.SchemaHash — the same fnv-1a digest the match cache
// revisions on). Plan compares three states — declared files, lockfile,
// blackboard — so it can distinguish a version bump (declared ≠ lock)
// from out-of-band drift (blackboard ≠ lock). The serialized form is
// byte-stable: sets and schemas sorted by name, two-space indent,
// trailing newline — so lockfiles diff cleanly under version control.
type Lockfile struct {
	Sets []LockSet `json:"sets"`
}

// LockSet is one set's locked state.
type LockSet struct {
	Name    string       `json:"name"`
	Version string       `json:"version"`
	Schemas []LockSchema `json:"schemas"`
}

// LockSchema pins one schema's content.
type LockSchema struct {
	Name   string `json:"name"`
	Format string `json:"format"`
	// Hash is the 16-hex-digit whole-schema content hash.
	Hash string `json:"hash"`
}

// Set returns the lock entry for a set name, or nil.
func (l *Lockfile) Set(name string) *LockSet {
	for i := range l.Sets {
		if l.Sets[i].Name == name {
			return &l.Sets[i]
		}
	}
	return nil
}

// Schema returns a lock set's entry for a schema name, or nil.
func (ls *LockSet) Schema(name string) *LockSchema {
	for i := range ls.Schemas {
		if ls.Schemas[i].Name == name {
			return &ls.Schemas[i]
		}
	}
	return nil
}

// Upsert replaces (or inserts) one set's lock entry, keeping the
// lockfile's canonical sort order.
func (l *Lockfile) Upsert(ls LockSet) {
	sort.Slice(ls.Schemas, func(i, j int) bool { return ls.Schemas[i].Name < ls.Schemas[j].Name })
	for i := range l.Sets {
		if l.Sets[i].Name == ls.Name {
			l.Sets[i] = ls
			return
		}
	}
	l.Sets = append(l.Sets, ls)
	sort.Slice(l.Sets, func(i, j int) bool { return l.Sets[i].Name < l.Sets[j].Name })
}

// validHash reports whether s is a 16-digit lowercase hex string — the
// exact shape harmony.SchemaHash emits.
func validHash(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Validate checks lock entries for structural sanity: unique path-safe
// names, known formats, and well-formed content hashes.
func (l *Lockfile) Validate() error {
	seen := map[string]bool{}
	for i := range l.Sets {
		ls := &l.Sets[i]
		if err := safeSegment(ls.Name); err != nil {
			return fmt.Errorf("schemaset: lock set name: %v", err)
		}
		if seen[ls.Name] {
			return fmt.Errorf("schemaset: lockfile: duplicate set %q", ls.Name)
		}
		seen[ls.Name] = true
		if ls.Version == "" {
			return fmt.Errorf("schemaset: lockfile: set %q has no version", ls.Name)
		}
		names := map[string]bool{}
		for _, sc := range ls.Schemas {
			if err := safeSegment(sc.Name); err != nil {
				return fmt.Errorf("schemaset: lockfile set %q: %v", ls.Name, err)
			}
			if names[sc.Name] {
				return fmt.Errorf("schemaset: lockfile set %q: duplicate schema %q", ls.Name, sc.Name)
			}
			names[sc.Name] = true
			switch sc.Format {
			case "xsd", "sql", "er":
			default:
				return fmt.Errorf("schemaset: lockfile set %q schema %q: unknown format %q", ls.Name, sc.Name, sc.Format)
			}
			if !validHash(sc.Hash) {
				return fmt.Errorf("schemaset: lockfile set %q schema %q: malformed hash %q", ls.Name, sc.Name, sc.Hash)
			}
		}
	}
	return nil
}

// ParseLockfile decodes and validates a lockfile. Unknown fields are
// rejected; malformed input returns an error, never panics.
func ParseLockfile(data []byte) (*Lockfile, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var l Lockfile
	if err := dec.Decode(&l); err != nil {
		return nil, fmt.Errorf("schemaset: parse lockfile: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("schemaset: parse lockfile: trailing data after JSON object")
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return &l, nil
}

// LoadLockfile reads a lockfile from disk. A missing file is not an
// error: it returns an empty lockfile, the state before any apply.
func LoadLockfile(path string) (*Lockfile, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Lockfile{}, nil
	}
	if err != nil {
		return nil, err
	}
	l, err := ParseLockfile(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return l, nil
}

// Marshal renders the canonical byte-stable form: sets and schemas
// sorted by name, two-space indent, trailing newline. Marshal→Parse→
// Marshal is the identity on the bytes.
func (l *Lockfile) Marshal() []byte {
	c := Lockfile{Sets: append([]LockSet(nil), l.Sets...)}
	for i := range c.Sets {
		c.Sets[i].Schemas = append([]LockSchema(nil), c.Sets[i].Schemas...)
		sort.Slice(c.Sets[i].Schemas, func(a, b int) bool {
			return c.Sets[i].Schemas[a].Name < c.Sets[i].Schemas[b].Name
		})
	}
	sort.Slice(c.Sets, func(i, j int) bool { return c.Sets[i].Name < c.Sets[j].Name })
	if c.Sets == nil {
		c.Sets = []LockSet{}
	}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		// Lockfile holds only strings and slices; MarshalIndent cannot
		// fail on it.
		panic(err)
	}
	return append(data, '\n')
}

// WriteLockfile atomically replaces the lockfile on disk (write to a
// temp file in the same directory, then rename), so a crash mid-write
// never leaves a half-written lock.
func WriteLockfile(path string, l *Lockfile) error {
	dir := "."
	if d := strings.LastIndexAny(path, `/\`); d >= 0 {
		dir = path[:d+1]
	}
	tmp, err := os.CreateTemp(dir, ".lock-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(l.Marshal())
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	return os.Rename(tmp.Name(), path)
}
