package schemaset

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/blackboard"
	"repro/internal/chaos"
	"repro/internal/harmony"
	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/registry"
	"repro/internal/wbmgr"
)

// Differential evolution suite: seeded random version-bump scripts
// (rename / add / drop / doc edits) drive Applier.Plan/Apply across
// v1→v2→v3, and after every apply the applier's warm engine must be
// bit-identical to a cold engine built from scratch over the post-apply
// blackboard schemas with the same analyst decisions. A chaos fault at
// apply.commit must leave the blackboard graph exactly as it was, and
// re-applying an unchanged lockfile must run zero transactions. Runs
// under -race via the tier-1 suite.

// evoPair generates a deterministic registry pair at roughly the given
// element count.
func evoPair(seed int64, entities, attributes, values int) (*model.Schema, *model.Schema) {
	cfg := registry.DefaultConfig()
	cfg.Seed = seed
	cfg.Models = 1
	cfg.ElementsTotal = entities
	cfg.AttributesTotal = attributes
	cfg.DomainValuesTotal = values
	reg := registry.Generate(cfg)
	src := reg.Models[0]
	tgt, _ := registry.Perturb(src, registry.DefaultPerturb())
	return src, tgt
}

// evoCopy deep-copies a schema so the next version can be edited without
// touching the one the blackboard holds. Same names in the same order
// produce the same element IDs, so an unedited copy hashes identically.
func evoCopy(in *model.Schema) *model.Schema {
	out := model.NewSchema(in.Name, in.Format)
	out.Doc = in.Doc
	for name, d := range in.Domains {
		out.Domains[name] = &model.Domain{Name: d.Name, Doc: d.Doc, Values: append([]model.DomainValue(nil), d.Values...)}
	}
	var walk func(src, dstParent *model.Element)
	walk = func(src, dstParent *model.Element) {
		for _, c := range src.Children() {
			n := out.AddElement(dstParent, c.Name, c.Kind, c.EdgeFromParent)
			n.DataType = c.DataType
			n.Doc = c.Doc
			n.DomainRef = c.DomainRef
			n.Key = c.Key
			n.Required = c.Required
			walk(c, n)
		}
	}
	walk(in.Root(), nil)
	return out
}

// evoEdit applies one random schema edit for a version bump and returns
// a description for failure messages.
func evoEdit(rng *rand.Rand, step int, sch *model.Schema) string {
	els := sch.Elements()
	e := els[rng.Intn(len(els))]
	switch op := rng.Intn(4); op {
	case 0: // rename
		e.Name = fmt.Sprintf("%sV%d", e.Name, step)
		return "rename " + e.ID
	case 1: // add an attribute under a random element
		added := sch.AddElement(e, fmt.Sprintf("evo%d", step), model.KindAttribute, model.ContainsAttribute)
		added.DataType = "string"
		added.Doc = fmt.Sprintf("synthetic attribute added by version bump %d", step)
		return "add " + added.ID
	case 2: // drop a subtree (keep the schema from emptying out)
		if len(els) < 8 {
			return evoEdit(rng, step, sch)
		}
		sch.RemoveElement(e.ID)
		return "drop " + e.ID
	default: // documentation edit → corpus-affecting change
		e.Doc = e.Doc + fmt.Sprintf(" amended wording %d", step)
		return "doc " + e.ID
	}
}

// evoReplay copies the applier engine's pins onto a cold engine.
func evoReplay(from, to *harmony.Engine) {
	for pair, d := range from.Decisions() {
		var err error
		if d.Accepted {
			err = to.Accept(pair[0], pair[1])
		} else {
			err = to.Reject(pair[0], pair[1])
		}
		if err != nil {
			// Pins can reference since-dropped elements; both engines
			// ignore them.
			continue
		}
	}
}

func evoAssertBitIdentical(t *testing.T, label string, want, got *match.Matrix) {
	t.Helper()
	if len(want.Sources) != len(got.Sources) || len(want.Targets) != len(got.Targets) {
		t.Fatalf("%s: dimensions %dx%d vs %dx%d", label,
			len(want.Sources), len(want.Targets), len(got.Sources), len(got.Targets))
	}
	for i := range want.Sources {
		if want.Sources[i].ID != got.Sources[i].ID {
			t.Fatalf("%s: source order differs at %d: %s vs %s", label, i, want.Sources[i].ID, got.Sources[i].ID)
		}
	}
	for j := range want.Targets {
		if want.Targets[j].ID != got.Targets[j].ID {
			t.Fatalf("%s: target order differs at %d: %s vs %s", label, j, want.Targets[j].ID, got.Targets[j].ID)
		}
	}
	if want.Sparse() != got.Sparse() {
		t.Fatalf("%s: storage mode differs: sparse %t vs %t", label, want.Sparse(), got.Sparse())
	}
	if want.Sparse() && !want.CandidatePattern().Equal(got.CandidatePattern()) {
		t.Fatalf("%s: candidate patterns differ", label)
	}
	for i := range want.Sources {
		for j := range want.Targets {
			if math.Float64bits(want.At(i, j)) != math.Float64bits(got.At(i, j)) {
				t.Fatalf("%s: cell (%s, %s): cold %v vs apply %v", label,
					want.Sources[i].ID, want.Targets[j].ID, want.At(i, j), got.At(i, j))
			}
		}
	}
}

// evoApplier builds an applier over a fresh blackboard with isolated
// metrics.
func evoApplier(t *testing.T) (*blackboard.Blackboard, *Applier) {
	t.Helper()
	bb := blackboard.New()
	bb.SetMetrics(obs.NewRegistry())
	ap := &Applier{
		BB:      bb,
		Mgr:     wbmgr.NewWith(bb),
		Metrics: obs.NewRegistry(),
		Engine:  harmony.Options{Flooding: true, Metrics: obs.NewRegistry()},
	}
	return bb, ap
}

// evoApply plans and applies one version of the pair, updating the lock.
func evoApply(t *testing.T, ap *Applier, set *Set, lock *Lockfile, src, tgt *model.Schema) *Result {
	t.Helper()
	plan, err := ap.Plan(set, []*model.Schema{src, tgt}, lock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ap.Apply(plan)
	if err != nil {
		t.Fatal(err)
	}
	lock.Upsert(plan.LockSet())
	return res
}

func TestEvolutionApplyMatchesColdRun(t *testing.T) {
	sizes := []struct {
		name                        string
		entities, attributes, codes int
	}{
		{"small", 6, 30, 40},
		{"medium", 12, 80, 100},
	}
	const bumps = 2 // v2 and v3
	const editsPerBump = 3
	for _, size := range sizes {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", size.name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				src, tgt := evoPair(seed, size.entities, size.attributes, size.codes)
				bb, ap := evoApplier(t)
				lock := &Lockfile{}
				set := &Set{Name: "evo", Version: "v1"}

				// v1: both schemas are creates; no mapping exists yet, so
				// the apply is exactly the one schema-put transaction.
				res := evoApply(t, ap, set, lock, src, tgt)
				if res.Txns != 1 || len(res.Applied) != 2 || len(res.Rematches) != 0 {
					t.Fatalf("v1 apply = %+v", res)
				}
				if _, err := bb.NewMapping("m", src.Name, tgt.Name); err != nil {
					t.Fatal(err)
				}

				cur, curT := src, tgt
				for bump := 0; bump < bumps; bump++ {
					next, nextT := evoCopy(cur), evoCopy(curT)
					var edits []string
					for e := 0; e < editsPerBump; e++ {
						side, sch := "src", next
						if rng.Intn(2) == 1 {
							side, sch = "tgt", nextT
						}
						edits = append(edits, side+" "+evoEdit(rng, bump*editsPerBump+e, sch))
					}
					// Re-copy to re-derive element IDs from the edited
					// names — the declared version of a set always comes
					// from freshly parsed files, whose IDs are name paths.
					next, nextT = evoCopy(next), evoCopy(nextT)
					set.Version = fmt.Sprintf("v%d", bump+2)
					label := fmt.Sprintf("%s (%v)", set.Version, edits)

					res := evoApply(t, ap, set, lock, next, nextT)
					// One schema-put txn plus one publish txn for mapping m.
					if res.Txns != 2 || len(res.Rematches) != 1 || res.Rematches[0].Mapping != "m" {
						t.Fatalf("%s: apply = %+v", label, res)
					}
					mode := res.Rematches[0].Mode
					if bump == 0 && mode != harmony.RematchCold {
						t.Fatalf("%s: first rematch mode = %s; want cold", label, mode)
					}
					if bump > 0 && mode == harmony.RematchCold {
						t.Fatalf("%s: warm applier re-matched cold", label)
					}

					// The applier's live matrix must be bit-identical to a
					// cold engine over the post-apply blackboard schemas
					// with the same decisions.
					live := ap.EngineFor("m")
					if live == nil {
						t.Fatalf("%s: no live engine", label)
					}
					bsrc, err := bb.GetSchema(src.Name)
					if err != nil {
						t.Fatal(err)
					}
					btgt, err := bb.GetSchema(tgt.Name)
					if err != nil {
						t.Fatal(err)
					}
					cold := harmony.NewEngine(bsrc, btgt, harmony.Options{Flooding: true, Metrics: obs.NewRegistry()})
					evoReplay(live, cold)
					cold.Run()
					evoAssertBitIdentical(t, label+" mode "+mode, cold.Matrix(), live.Matrix())

					// Pin an analyst decision on the blackboard so the next
					// bump exercises syncPins: accept the engine's current
					// best pair, reject a random one.
					mp, err := bb.GetMapping("m")
					if err != nil {
						t.Fatal(err)
					}
					links := live.Matrix().Above(0.0)
					if len(links) > 0 {
						best := links[0]
						if err := mp.SetCell(best.Source.ID, best.Target.ID, 1.0, true, "analyst"); err != nil {
							t.Fatal(err)
						}
					}
					sEl := live.Matrix().Sources[rng.Intn(len(live.Matrix().Sources))]
					tEl := live.Matrix().Targets[rng.Intn(len(live.Matrix().Targets))]
					if err := mp.SetCell(sEl.ID, tEl.ID, 0, true, "analyst"); err != nil {
						t.Fatal(err)
					}

					cur, curT = next, nextT
				}
			})
		}
	}
}

// TestEvolutionNoOpReapply proves apply is idempotent: re-applying a
// version whose content already matches the blackboard runs zero
// transactions and leaves the graph untouched.
func TestEvolutionNoOpReapply(t *testing.T) {
	src, tgt := evoPair(5, 6, 30, 40)
	bb, ap := evoApplier(t)
	lock := &Lockfile{}
	set := &Set{Name: "evo", Version: "v1"}
	evoApply(t, ap, set, lock, src, tgt)

	var pre bytes.Buffer
	if err := bb.Snapshot(&pre); err != nil {
		t.Fatal(err)
	}
	plan, err := ap.Plan(set, []*model.Schema{src, tgt}, lock)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.NoOp() {
		t.Fatalf("re-plan of applied version is not a no-op: %+v", plan.Schemas)
	}
	res, err := ap.Apply(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Txns != 0 || len(res.Applied) != 0 || len(res.Rematches) != 0 {
		t.Fatalf("no-op apply ran work: %+v", res)
	}
	restored := blackboard.New()
	if err := restored.Restore(bytes.NewReader(pre.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !rdf.Equal(bb.Graph(), restored.Graph()) {
		t.Fatal("no-op apply changed the graph")
	}

	// A version-only bump (same file contents under a new version dir)
	// is also a no-op apply; only the lockfile records the new version.
	set.Version = "v2"
	plan, err = ap.Plan(set, []*model.Schema{evoCopy(src), evoCopy(tgt)}, lock)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.NoOp() {
		t.Fatal("identical content under a new version is not a no-op")
	}
}

// TestEvolutionChaosRollback proves apply is all-or-nothing: an injected
// fault at the apply.commit site aborts the schema-put transaction and
// the rdf undo log restores the graph exactly — every put rolled back.
func TestEvolutionChaosRollback(t *testing.T) {
	src, tgt := evoPair(9, 6, 30, 40)
	bb, ap := evoApplier(t)
	lock := &Lockfile{}
	set := &Set{Name: "evo", Version: "v1"}
	evoApply(t, ap, set, lock, src, tgt)
	if _, err := bb.NewMapping("m", src.Name, tgt.Name); err != nil {
		t.Fatal(err)
	}

	next, nextT := evoCopy(src), evoCopy(tgt)
	rng := rand.New(rand.NewSource(9))
	for e := 0; e < 3; e++ {
		evoEdit(rng, e, next)
		evoEdit(rng, e, nextT)
	}
	// Canonical IDs, as freshly parsed files would carry.
	next, nextT = evoCopy(next), evoCopy(nextT)
	set.Version = "v2"
	plan, err := ap.Plan(set, []*model.Schema{next, nextT}, lock)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NoOp() {
		t.Fatal("edited v2 planned as a no-op")
	}

	var pre bytes.Buffer
	if err := bb.Snapshot(&pre); err != nil {
		t.Fatal(err)
	}
	chaos.Reset()
	chaos.Enable(SiteApplyCommit, chaos.Rule{Kind: chaos.FaultError, Every: 1, Limit: 1})
	defer chaos.Reset()

	_, err = ap.Apply(plan)
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("apply error = %v; want injected fault", err)
	}
	if chaos.Fired(SiteApplyCommit) != 1 {
		t.Fatalf("site fired %d times; want 1", chaos.Fired(SiteApplyCommit))
	}

	restored := blackboard.New()
	if err := restored.Restore(bytes.NewReader(pre.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !rdf.Equal(bb.Graph(), restored.Graph()) {
		t.Fatal("failed apply left the graph changed; rollback is not all-or-nothing")
	}

	// The same plan applies cleanly once the fault is disarmed — the
	// applier stays usable after a rollback.
	chaos.Reset()
	res, err := ap.Apply(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Txns != 2 || len(res.Rematches) != 1 {
		t.Fatalf("post-rollback apply = %+v", res)
	}
	got, err := bb.GetSchema(src.Name)
	if err != nil {
		t.Fatal(err)
	}
	if harmony.SchemaHash(got) != harmony.SchemaHash(next) {
		t.Fatal("post-rollback apply did not land the declared schema")
	}
}
