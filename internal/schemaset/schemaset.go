// Package schemaset implements versioned schema sets: a declarative
// config declaring named sets of schema files pinned to a version, a
// lockfile recording per-schema content hashes, and a diff-then-confirm
// apply workflow that upgrades the blackboard to a declared version as
// one transaction driving an incremental re-match.
//
// Real organisations pin schema *sets* to versions and upgrade them
// deliberately across many concurrent projects (PAPERS.md, "The Role of
// Schema Matching in Large Enterprises"). The config is plain JSON:
//
//	{
//	  "root": "schemas",
//	  "sets": [
//	    {"name": "core", "version": "v1", "schemas": ["po.xsd", "orders.sql"]}
//	  ]
//	}
//
// Each set resolves its files from <root>/<set>/<version>/<file>, so a
// version bump is an edit to one string and the old version's files stay
// on disk. The lockfile (Lockfile) records what was last applied —
// per-schema fnv-1a content hashes (harmony.SchemaHash, the same digest
// the match cache revisions on) — so plan can tell "nothing changed",
// "declared version changed", and "someone changed the blackboard
// behind the lockfile's back" apart. See DESIGN.md §17.
package schemaset

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/erwin"
	"repro/internal/model"
	"repro/internal/sqlddl"
	"repro/internal/xmlschema"
)

// Config is the parsed schema-set declaration (schemasets.json).
type Config struct {
	// Root is the directory holding the versioned set directories,
	// resolved against the config file's directory by LoadConfig.
	// Empty means the config file's own directory.
	Root string `json:"root,omitempty"`
	// Sets are the declared schema sets, unique by name.
	Sets []Set `json:"sets"`
}

// Set declares one named schema set pinned to a version.
type Set struct {
	Name    string `json:"name"`
	Version string `json:"version"`
	// Schemas lists the set's schema file names (not paths): each
	// resolves to <root>/<name>/<version>/<file> and its extension
	// picks the loader (.xsd/.xml, .sql/.ddl, .er).
	Schemas []string `json:"schemas"`
}

// Set returns the named set, or nil.
func (c *Config) Set(name string) *Set {
	for i := range c.Sets {
		if c.Sets[i].Name == name {
			return &c.Sets[i]
		}
	}
	return nil
}

// safeSegment rejects names that would escape the schema root when
// joined into a path: empty strings, path separators, and dot-dirs.
func safeSegment(s string) error {
	if s == "" {
		return fmt.Errorf("empty name")
	}
	if strings.ContainsAny(s, `/\`) || s == "." || s == ".." {
		return fmt.Errorf("%q must be a bare name, not a path", s)
	}
	return nil
}

// SchemaNameFormat derives the blackboard schema name (file stem) and
// format from a schema file name. It mirrors the CLI's loader dispatch.
func SchemaNameFormat(file string) (name, format string, err error) {
	ext := strings.ToLower(filepath.Ext(file))
	name = strings.TrimSuffix(filepath.Base(file), filepath.Ext(file))
	switch ext {
	case ".xsd", ".xml":
		return name, "xsd", nil
	case ".sql", ".ddl":
		return name, "sql", nil
	case ".er":
		return name, "er", nil
	default:
		return "", "", fmt.Errorf("unknown schema extension on %q (want .xsd/.xml, .sql/.ddl or .er)", file)
	}
}

// Validate checks the declaration's internal consistency: unique
// path-safe set names, non-empty versions, and per-set schema lists
// with known extensions and unique stems (the stem is the blackboard
// schema name, so a collision inside one set would silently overwrite).
func (c *Config) Validate() error {
	if len(c.Sets) == 0 {
		return fmt.Errorf("schemaset: config declares no sets")
	}
	seen := map[string]bool{}
	for i := range c.Sets {
		s := &c.Sets[i]
		if err := safeSegment(s.Name); err != nil {
			return fmt.Errorf("schemaset: set name: %v", err)
		}
		if seen[s.Name] {
			return fmt.Errorf("schemaset: duplicate set %q", s.Name)
		}
		seen[s.Name] = true
		if err := safeSegment(s.Version); err != nil {
			return fmt.Errorf("schemaset: set %q version: %v", s.Name, err)
		}
		if len(s.Schemas) == 0 {
			return fmt.Errorf("schemaset: set %q declares no schemas", s.Name)
		}
		stems := map[string]string{}
		for _, f := range s.Schemas {
			if err := safeSegment(f); err != nil {
				return fmt.Errorf("schemaset: set %q schema: %v", s.Name, err)
			}
			stem, _, err := SchemaNameFormat(f)
			if err != nil {
				return fmt.Errorf("schemaset: set %q: %v", s.Name, err)
			}
			if prev, ok := stems[stem]; ok {
				return fmt.Errorf("schemaset: set %q: %q and %q both load as schema %q", s.Name, prev, f, stem)
			}
			stems[stem] = f
		}
	}
	return nil
}

// ParseConfig decodes and validates a schema-set declaration. Unknown
// fields are rejected so a typo'd key fails loudly instead of silently
// declaring nothing. Malformed input returns an error, never panics.
func ParseConfig(data []byte) (*Config, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("schemaset: parse config: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("schemaset: parse config: trailing data after JSON object")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// LoadConfig reads a config file and resolves its Root against the
// file's directory, so a config is addressable from any working dir.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := ParseConfig(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if !filepath.IsAbs(c.Root) {
		c.Root = filepath.Join(filepath.Dir(path), c.Root)
	}
	return c, nil
}

// LoadSet parses every schema file a set declares, in declaration
// order, from <root>/<set>/<version>/<file>. Schema names are the file
// stems, matching what `workbench load` would have stored.
func LoadSet(root string, s *Set) ([]*model.Schema, error) {
	var out []*model.Schema
	for _, f := range s.Schemas {
		name, format, err := SchemaNameFormat(f)
		if err != nil {
			return nil, fmt.Errorf("schemaset: set %q: %v", s.Name, err)
		}
		path := filepath.Join(root, s.Name, s.Version, f)
		fh, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("schemaset: set %q %s: %v", s.Name, s.Version, err)
		}
		var sch *model.Schema
		switch format {
		case "xsd":
			sch, err = xmlschema.Load(name, fh)
		case "sql":
			sch, err = sqlddl.Load(name, fh)
		case "er":
			sch, err = erwin.Load(name, fh)
		}
		fh.Close()
		if err != nil {
			return nil, fmt.Errorf("schemaset: %s: %v", path, err)
		}
		out = append(out, sch)
	}
	return out, nil
}

// SetNames returns the declared set names sorted, for deterministic
// "apply everything" iteration.
func (c *Config) SetNames() []string {
	names := make([]string, 0, len(c.Sets))
	for i := range c.Sets {
		names = append(names, c.Sets[i].Name)
	}
	sort.Strings(names)
	return names
}
