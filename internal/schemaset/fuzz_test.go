package schemaset

import (
	"bytes"
	"os"
	"testing"
)

// FuzzParseSchemaSet asserts the config parser's crash-safety contract:
// parse or error, never panic, and accepted configs validate.
func FuzzParseSchemaSet(f *testing.F) {
	if seed, err := os.ReadFile("testdata/schemasets.json"); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"root": "r", "sets": [{"name": "a", "version": "v1", "schemas": ["x.sql"]}]}`))
	f.Add([]byte(`{"sets": [{"name": "a", "version": "v1", "schemas": ["po.xsd", "db.ddl", "flight.er"]}]}`))
	f.Add([]byte(`{"sets": []}`))
	f.Add([]byte(`{"sets": [{"name": "../up", "version": "v1", "schemas": ["x.sql"]}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"sets": [{"name": "a"`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParseConfig(data)
		if err != nil {
			return
		}
		if c == nil {
			t.Fatal("nil config with nil error")
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("ParseConfig accepted a config Validate rejects: %v\ninput: %q", verr, data)
		}
	})
}

// FuzzParseLockfile asserts the same for the lockfile parser, plus that
// every accepted lockfile survives a canonical Marshal→Parse round trip.
func FuzzParseLockfile(f *testing.F) {
	if seed, err := os.ReadFile("testdata/lockfile.golden.json"); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"sets": []}`))
	f.Add([]byte(`{"sets": [{"name": "a", "version": "v1", "schemas": [{"name": "x", "format": "sql", "hash": "0123456789abcdef"}]}]}`))
	f.Add([]byte(`{"sets": [{"name": "a", "version": "v1", "schemas": [{"name": "x", "format": "sql", "hash": "XYZ"}]}]}`))
	f.Add([]byte(`{"sets": [{"name": "a", "version": "v1", "schemas": null}]}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ParseLockfile(data)
		if err != nil {
			return
		}
		if l == nil {
			t.Fatal("nil lockfile with nil error")
		}
		canon := l.Marshal()
		re, err := ParseLockfile(canon)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\ncanonical: %q", err, canon)
		}
		if !bytes.Equal(canon, re.Marshal()) {
			t.Fatalf("Marshal→Parse→Marshal not the identity for input %q", data)
		}
	})
}
