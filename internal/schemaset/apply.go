package schemaset

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/blackboard"
	"repro/internal/chaos"
	"repro/internal/harmony"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/wbmgr"
)

// SiteApplyCommit is the chaos failpoint inside apply's schema-put
// transaction, hit after every PutSchema and just before the commit. An
// injected fault there aborts the transaction, so the rdf undo log must
// roll every schema put back — the differential suite asserts the graph
// is rdf.Equal to its pre-apply state, proving the plan is
// all-or-nothing.
const SiteApplyCommit chaos.Site = "apply.commit"

func init() {
	chaos.RegisterSite(SiteApplyCommit, "schemaset apply: before committing the schema-put transaction")
}

// Metric names emitted by plan/apply (also incremented by the server's
// apply route, on its workspace-labeled registry).
const (
	// MetricPlans counts computed change plans (plan, dry-run, and the
	// plan phase of every apply).
	MetricPlans = "apply_plans_total"
	// MetricTxns counts apply outcomes, labeled outcome="committed",
	// "rolled-back" or "no-op".
	MetricTxns = "apply_txns_total"
)

// Applier executes change plans against one blackboard: schema puts as
// a single wbmgr transaction, then an incremental re-match of every
// affected mapping using the plan's diff as the dirty-set hint. The
// Applier keeps each mapping's match engine alive between applies (a
// match session, like the server's), so the second and later applies
// re-match incrementally instead of running cold.
type Applier struct {
	BB  *blackboard.Blackboard
	Mgr *wbmgr.Manager
	// Tool is the provenance name transactions carry (default
	// "schemaset").
	Tool string
	// Threshold gates which correspondences publish as cells (default
	// 0.25, the server's).
	Threshold float64
	// Engine configures new match engines. Zero value: flooding on,
	// default voters, process-default metrics.
	Engine harmony.Options
	// Metrics receives the apply counters; nil means obs.Default().
	Metrics *obs.Registry

	engines map[string]*harmony.Engine
}

// Rematch records one mapping's re-match during an apply.
type Rematch struct {
	Mapping string
	// Mode is how the engine resolved: "cold" on a mapping's first
	// match in this Applier, else the engine's self-classified rematch
	// mode ("pins"/"incremental"/"corpus"/"full").
	Mode string
	// Published counts cells actually written: links at or above the
	// threshold that are new or whose confidence changed.
	Published int
	// Duration is the wall-clock cost of this re-match: pin sync, the
	// engine run, and the publish transaction — everything the version
	// bump spends on the mapping beyond the schema-put transaction.
	Duration time.Duration
}

// Result reports what an apply did.
type Result struct {
	// Txns counts committed transactions: one for the schema puts plus
	// one per re-matched mapping's publish. Zero for a no-op plan.
	Txns int
	// Applied names the schemas created or updated, sorted.
	Applied []string
	// Rematches lists the affected mappings' re-match outcomes, in
	// mapping-ID order.
	Rematches []Rematch
}

func (a *Applier) reg() *obs.Registry {
	if a.Metrics != nil {
		return a.Metrics
	}
	return obs.Default()
}

func (a *Applier) tool() string {
	if a.Tool != "" {
		return a.Tool
	}
	return "schemaset"
}

func (a *Applier) threshold() float64 {
	if a.Threshold != 0 {
		return a.Threshold
	}
	return 0.25
}

// Plan computes a set's change plan (and counts it). See NewPlan.
func (a *Applier) Plan(set *Set, schemas []*model.Schema, lock *Lockfile) (*Plan, error) {
	reg := a.reg()
	reg.Describe(MetricPlans, "Schema-set change plans computed.")
	reg.Counter(MetricPlans).Inc()
	return NewPlan(a.BB, set, schemas, lock)
}

// EngineFor returns the mapping's live match session, or nil. Exposed so
// tests and benchmarks can compare apply's matrix against a cold run.
func (a *Applier) EngineFor(mappingID string) *harmony.Engine {
	return a.engines[mappingID]
}

// Apply executes a plan: every create/update is one PutSchema inside a
// single wbmgr transaction (all-or-nothing — a fault at the
// apply.commit chaos site rolls every put back), then each mapping
// touching an applied schema is re-matched with the plan's diff as the
// dirty hint and its links re-published. A no-op plan runs zero
// transactions. On error the blackboard is exactly as it was, except
// that publishes already committed before a later mapping's failure
// stay (each publish is its own transaction, like the server's).
func (a *Applier) Apply(p *Plan) (*Result, error) {
	reg := a.reg()
	reg.Describe(MetricTxns, "Schema-set apply transactions, labeled by outcome.")
	res := &Result{}
	if p.NoOp() {
		reg.Counter(MetricTxns, "outcome", "no-op").Inc()
		return res, nil
	}

	changed := map[string]bool{}
	txn, err := a.Mgr.Begin(a.tool())
	if err != nil {
		reg.Counter(MetricTxns, "outcome", "rolled-back").Inc()
		return nil, err
	}
	err = func() error {
		for i := range p.Schemas {
			sp := &p.Schemas[i]
			if sp.Action == ActionNoop {
				continue
			}
			if _, perr := a.BB.PutSchema(sp.Schema); perr != nil {
				return perr
			}
			txn.Emit(wbmgr.EventSchemaGraph, sp.Name)
			changed[sp.Name] = true
		}
		return chaos.Inject(SiteApplyCommit)
	}()
	if err != nil {
		txn.Abort()
		reg.Counter(MetricTxns, "outcome", "rolled-back").Inc()
		return nil, fmt.Errorf("schemaset: apply %s %s: %w", p.Set, p.Version, err)
	}
	if err := txn.Commit(); err != nil {
		reg.Counter(MetricTxns, "outcome", "rolled-back").Inc()
		return nil, fmt.Errorf("schemaset: apply %s %s: %w", p.Set, p.Version, err)
	}
	res.Txns++
	reg.Counter(MetricTxns, "outcome", "committed").Inc()
	for name := range changed {
		res.Applied = append(res.Applied, name)
	}
	sort.Strings(res.Applied)

	// Re-match affected mappings. The engine runs are read-only and can
	// be slow, so they happen outside any transaction; each publish is
	// its own short transaction, mirroring the server.
	ids := a.BB.Mappings()
	sort.Strings(ids)
	for _, id := range ids {
		mp, merr := a.BB.GetMapping(id)
		if merr != nil {
			return res, merr
		}
		if !changed[mp.SourceSchema] && !changed[mp.TargetSchema] {
			continue
		}
		rm, rerr := a.rematch(p, id, mp)
		if rerr != nil {
			return res, rerr
		}
		res.Txns++
		res.Rematches = append(res.Rematches, rm)
	}
	return res, nil
}

func (a *Applier) rematch(p *Plan, id string, mp *blackboard.Mapping) (Rematch, error) {
	start := time.Now()
	src, err := a.BB.GetSchema(mp.SourceSchema)
	if err != nil {
		return Rematch{}, err
	}
	tgt, err := a.BB.GetSchema(mp.TargetSchema)
	if err != nil {
		return Rematch{}, err
	}
	dirty := harmony.Dirty{Source: p.DirtyFor(mp.SourceSchema), Target: p.DirtyFor(mp.TargetSchema)}
	eng := a.engines[id]
	var mode string
	if eng == nil {
		opts := a.Engine
		if opts.Voters == nil && !opts.Flooding {
			opts.Flooding = true
		}
		eng = harmony.NewEngine(src, tgt, opts)
		syncPins(eng, mp)
		eng.Run()
		mode = harmony.RematchCold
		if a.engines == nil {
			a.engines = map[string]*harmony.Engine{}
		}
		a.engines[id] = eng
	} else {
		failed := syncPins(eng, mp)
		eng.RematchWith(src, tgt, dirty)
		retryPins(eng, failed)
		mode = eng.LastRematchMode()
	}

	links := eng.Matrix().Above(a.threshold())
	pinned := eng.Decisions()
	txn, err := a.Mgr.Begin(a.tool())
	if err != nil {
		return Rematch{}, err
	}
	published := 0
	err = func() error {
		for _, l := range links {
			if _, ok := pinned[[2]string{l.Source.ID, l.Target.ID}]; ok {
				continue
			}
			// An incremental rematch leaves most scores untouched; skipping
			// the bit-identical cells keeps publish proportional to the
			// change, not the matrix.
			if c, ok := mp.GetCell(l.Source.ID, l.Target.ID); ok &&
				!c.UserDefined && c.SetBy == "harmony" && c.Confidence == l.Confidence {
				continue
			}
			if cerr := mp.SetCell(l.Source.ID, l.Target.ID, l.Confidence, false, "harmony"); cerr != nil {
				return cerr
			}
			txn.Emit(wbmgr.EventMappingCell, fmt.Sprintf("%s|%s|%s", id, l.Source.ID, l.Target.ID))
			published++
		}
		txn.Emit(wbmgr.EventMappingMatrix, id)
		return nil
	}()
	if err != nil {
		txn.Abort()
		return Rematch{}, err
	}
	if err := txn.Commit(); err != nil {
		return Rematch{}, err
	}
	return Rematch{Mapping: id, Mode: mode, Published: published, Duration: time.Since(start)}, nil
}

// syncPins replays the mapping's user-defined cells onto the engine as
// pins and removes engine pins the mapping no longer carries — the
// analyst's decisions live on the blackboard, the engine only mirrors
// them. Pins whose elements the engine's current schemas don't know are
// returned for a retry after a rematch swaps the schemas in.
func syncPins(eng *harmony.Engine, mp *blackboard.Mapping) [][3]string {
	desired := map[[2]string]bool{}
	for _, c := range mp.Cells() {
		if c.UserDefined {
			desired[[2]string{c.SourceID, c.TargetID}] = c.Confidence > 0
		}
	}
	for pair := range eng.Decisions() {
		if _, ok := desired[pair]; !ok {
			eng.Unpin(pair[0], pair[1])
		}
	}
	var failed [][3]string
	for pair, accepted := range desired {
		verdict := "reject"
		var err error
		if accepted {
			verdict = "accept"
			err = eng.Accept(pair[0], pair[1])
		} else {
			err = eng.Reject(pair[0], pair[1])
		}
		if err != nil {
			failed = append(failed, [3]string{pair[0], pair[1], verdict})
		}
	}
	return failed
}

// retryPins re-applies pins that failed before a rematch replaced the
// engine's schemas; ones that still fail reference elements absent from
// both versions and are dropped.
func retryPins(eng *harmony.Engine, failed [][3]string) {
	for _, f := range failed {
		if f[2] == "accept" {
			_ = eng.Accept(f[0], f[1])
		} else {
			_ = eng.Reject(f[0], f[1])
		}
	}
}
