// Package sqlddl loads SQL data-definition scripts into the canonical
// schema graph (paper §4: Harmony "will soon support relational
// schemata"). It parses CREATE TABLE statements including column types,
// primary/foreign keys, NOT NULL, CHECK (col IN (...)) constraints —
// normalized to Domains per the paper's §2 recommendation — and COMMENT
// ON statements, which populate the documentation annotation.
package sqlddl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString // '...' literal
	tokNumber
	tokPunct // single punctuation rune: ( ) , ; . =
)

// token is one lexical unit with its source line for error messages.
type token struct {
	kind tokenKind
	text string // identifiers are uppercased in normText only
	line int
}

// upper returns the token text uppercased (SQL keywords are
// case-insensitive).
func (t token) upper() string { return strings.ToUpper(t.text) }

// lexer tokenizes SQL DDL. Comments (-- and /* */) are skipped.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, fmt.Errorf("sqlddl: line %d: unterminated block comment", l.line)
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			return l.lexToken()
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

func (l *lexer) lexToken() (token, error) {
	c := l.src[l.pos]
	switch {
	case c == '\'':
		start := l.pos + 1
		i := start
		var sb strings.Builder
		for i < len(l.src) {
			if l.src[i] == '\'' {
				if i+1 < len(l.src) && l.src[i+1] == '\'' { // escaped quote
					sb.WriteString(l.src[start:i])
					sb.WriteByte('\'')
					i += 2
					start = i
					continue
				}
				sb.WriteString(l.src[start:i])
				tok := token{kind: tokString, text: sb.String(), line: l.line}
				l.line += strings.Count(l.src[l.pos:i+1], "\n")
				l.pos = i + 1
				return tok, nil
			}
			i++
		}
		return token{}, fmt.Errorf("sqlddl: line %d: unterminated string literal", l.line)
	case c == '"' || c == '`' || c == '[':
		// Quoted identifier.
		closer := byte('"')
		if c == '`' {
			closer = '`'
		}
		if c == '[' {
			closer = ']'
		}
		i := l.pos + 1
		for i < len(l.src) && l.src[i] != closer {
			i++
		}
		if i >= len(l.src) {
			return token{}, fmt.Errorf("sqlddl: line %d: unterminated quoted identifier", l.line)
		}
		tok := token{kind: tokIdent, text: l.src[l.pos+1 : i], line: l.line}
		l.pos = i + 1
		return tok, nil
	case isIdentStart(rune(c)):
		i := l.pos
		for i < len(l.src) && isIdentPart(rune(l.src[i])) {
			i++
		}
		tok := token{kind: tokIdent, text: l.src[l.pos:i], line: l.line}
		l.pos = i
		return tok, nil
	case c >= '0' && c <= '9':
		i := l.pos
		for i < len(l.src) && (l.src[i] >= '0' && l.src[i] <= '9' || l.src[i] == '.') {
			i++
		}
		tok := token{kind: tokNumber, text: l.src[l.pos:i], line: l.line}
		l.pos = i
		return tok, nil
	case strings.ContainsRune("(),;.=<>", rune(c)):
		tok := token{kind: tokPunct, text: string(c), line: l.line}
		l.pos++
		return tok, nil
	default:
		return token{}, fmt.Errorf("sqlddl: line %d: unexpected character %q", l.line, c)
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$'
}

// lexAll tokenizes the whole input (trailing EOF excluded).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		if t.kind == tokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
