package sqlddl

import (
	"os"
	"strings"
	"testing"
)

// FuzzParseSQL asserts the DDL loader's crash-safety contract: any
// input must produce a schema or an error — never a panic or a hang.
// A successfully loaded schema must pass its own validation.
func FuzzParseSQL(f *testing.F) {
	if seed, err := os.ReadFile("../../testdata/hr.sql"); err == nil {
		f.Add(string(seed))
	}
	f.Add("CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(10) NOT NULL);")
	f.Add("CREATE TABLE a (x INT REFERENCES b(y), CHECK (x IN ('p','q')));")
	f.Add("COMMENT ON TABLE t IS 'doc'; COMMENT ON COLUMN t.c IS 'x';")
	f.Add("CREATE TABLE t (a INT, PRIMARY KEY (a), FOREIGN KEY (a) REFERENCES u(b))")
	f.Add("-- comment\n/* block */ CREATE INDEX i ON t(a); INSERT INTO t VALUES (1);")
	f.Add("CREATE TABLE \"quoted name\" (`tick` INT, [brack] INT)")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := Load("fuzz", strings.NewReader(input))
		if err != nil {
			return
		}
		if s == nil {
			t.Fatal("nil schema with nil error")
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("loader returned invalid schema: %v\ninput: %q", verr, input)
		}
	})
}
