package sqlddl

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/model"
)

// Load parses SQL DDL from r into a canonical schema named name.
//
// Recognized statements:
//
//	CREATE TABLE t (col TYPE [NOT NULL] [PRIMARY KEY] [CHECK (col IN (...))]
//	               [REFERENCES t2(col)], ...,
//	               [PRIMARY KEY (a, b)], [FOREIGN KEY (a) REFERENCES t2(b)],
//	               [CHECK (col IN ('x','y'))])
//	COMMENT ON TABLE t IS '...'
//	COMMENT ON COLUMN t.col IS '...'
//
// Other statements (CREATE INDEX, INSERT, ...) are skipped statement-wise.
// CHECK ... IN constraints become named Domains, following the paper's §2
// advice that coding schemes be surfaced as semantic domains.
func Load(name string, r io.Reader) (*model.Schema, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	toks, err := lexAll(string(src))
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, schema: model.NewSchema(name, "sql"), tables: map[string]*model.Element{}}
	if err := p.parse(); err != nil {
		return nil, err
	}
	if err := p.schema.Validate(); err != nil {
		return nil, err
	}
	return p.schema, nil
}

// LoadFile loads a .sql file; the schema is named after the file stem.
func LoadFile(path string) (*model.Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return Load(name, f)
}

type parser struct {
	toks   []token
	pos    int
	schema *model.Schema
	tables map[string]*model.Element // lowercase name → entity
}

func (p *parser) cur() token {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return token{kind: tokEOF}
}

func (p *parser) advance() token {
	t := p.cur()
	p.pos++
	return t
}

func (p *parser) accept(upperText string) bool {
	if p.cur().upper() == upperText {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(upperText string) error {
	t := p.cur()
	if t.upper() != upperText {
		return fmt.Errorf("sqlddl: line %d: expected %q, got %q", t.line, upperText, t.text)
	}
	p.pos++
	return nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return t, fmt.Errorf("sqlddl: line %d: expected identifier, got %q", t.line, t.text)
	}
	p.pos++
	return t, nil
}

// skipStatement advances past the next ';' (or EOF).
func (p *parser) skipStatement() {
	for p.cur().kind != tokEOF {
		if p.advance().text == ";" {
			return
		}
	}
}

func (p *parser) parse() error {
	for p.cur().kind != tokEOF {
		switch {
		case p.cur().upper() == "CREATE" && p.peekUpper(1) == "TABLE":
			if err := p.createTable(); err != nil {
				return err
			}
		case p.cur().upper() == "COMMENT" && p.peekUpper(1) == "ON":
			if err := p.commentOn(); err != nil {
				return err
			}
		case p.cur().text == ";":
			p.pos++
		default:
			p.skipStatement()
		}
	}
	return nil
}

func (p *parser) peekUpper(ahead int) string {
	if p.pos+ahead < len(p.toks) {
		return p.toks[p.pos+ahead].upper()
	}
	return ""
}

func (p *parser) createTable() error {
	p.pos += 2 // CREATE TABLE
	// Optional IF NOT EXISTS.
	if p.cur().upper() == "IF" {
		p.pos += 3
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	tableName := nameTok.text
	// Optional schema qualifier: schema.table.
	if p.cur().text == "." {
		p.pos++
		t2, err := p.expectIdent()
		if err != nil {
			return err
		}
		tableName = t2.text
	}
	table := p.schema.AddElement(nil, tableName, model.KindEntity, model.ContainsTable)
	p.tables[strings.ToLower(tableName)] = table
	if err := p.expect("("); err != nil {
		return err
	}
	for {
		if err := p.tableItem(table); err != nil {
			return err
		}
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	// Consume trailing options up to ';'.
	p.skipStatement()
	return nil
}

// tableItem parses one column definition or table-level constraint.
func (p *parser) tableItem(table *model.Element) error {
	switch p.cur().upper() {
	case "PRIMARY":
		p.pos++
		if err := p.expect("KEY"); err != nil {
			return err
		}
		cols, err := p.parenIdentList()
		if err != nil {
			return err
		}
		for _, c := range cols {
			if col := childByName(table, c); col != nil {
				col.Key = true
				col.Required = true
			}
		}
		return nil
	case "FOREIGN":
		p.pos++
		if err := p.expect("KEY"); err != nil {
			return err
		}
		cols, err := p.parenIdentList()
		if err != nil {
			return err
		}
		if err := p.expect("REFERENCES"); err != nil {
			return err
		}
		refTable, err := p.expectIdent()
		if err != nil {
			return err
		}
		if p.cur().text == "(" {
			if _, err := p.parenIdentList(); err != nil {
				return err
			}
		}
		for _, c := range cols {
			if col := childByName(table, c); col != nil {
				setProp(col, "references", refTable.text)
			}
		}
		return nil
	case "CHECK":
		p.pos++
		col, values, err := p.checkIn()
		if err != nil {
			return err
		}
		if col != "" && len(values) > 0 {
			p.attachDomain(table, col, values)
		}
		return nil
	case "UNIQUE", "CONSTRAINT":
		// CONSTRAINT name <constraint>: re-dispatch after the name.
		if p.cur().upper() == "CONSTRAINT" {
			p.pos++
			if _, err := p.expectIdent(); err != nil {
				return err
			}
			return p.tableItem(table)
		}
		p.pos++
		if p.cur().text == "(" {
			if _, err := p.parenIdentList(); err != nil {
				return err
			}
		}
		return nil
	}
	return p.columnDef(table)
}

func (p *parser) columnDef(table *model.Element) error {
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	col := p.schema.AddElement(table, nameTok.text, model.KindAttribute, model.ContainsAttribute)
	typeTok, err := p.expectIdent()
	if err != nil {
		return fmt.Errorf("sqlddl: column %q: %w", nameTok.text, err)
	}
	dt := strings.ToLower(typeTok.text)
	// Optional (n) or (n,m) size suffix.
	if p.cur().text == "(" {
		depth := 0
		for {
			t := p.advance()
			if t.text == "(" {
				depth++
			}
			if t.text == ")" {
				depth--
				if depth == 0 {
					break
				}
			}
			if t.kind == tokEOF {
				return fmt.Errorf("sqlddl: unterminated type for column %q", nameTok.text)
			}
		}
	}
	col.DataType = dt
	// Column options.
	for {
		switch p.cur().upper() {
		case "NOT":
			p.pos++
			if err := p.expect("NULL"); err != nil {
				return err
			}
			col.Required = true
		case "NULL":
			p.pos++
		case "PRIMARY":
			p.pos++
			if err := p.expect("KEY"); err != nil {
				return err
			}
			col.Key = true
			col.Required = true
		case "UNIQUE":
			p.pos++
		case "DEFAULT":
			p.pos++
			p.advance() // the default value token
		case "REFERENCES":
			p.pos++
			refTable, err := p.expectIdent()
			if err != nil {
				return err
			}
			if p.cur().text == "(" {
				if _, err := p.parenIdentList(); err != nil {
					return err
				}
			}
			setProp(col, "references", refTable.text)
		case "CHECK":
			p.pos++
			c, values, err := p.checkIn()
			if err != nil {
				return err
			}
			target := c
			if target == "" {
				target = col.Name
			}
			if len(values) > 0 {
				p.attachDomain(table, target, values)
			}
		default:
			return nil
		}
	}
}

// checkIn parses CHECK (col IN ('a','b',...)), returning the column and
// values. Non-IN check expressions are consumed and return empty values.
func (p *parser) checkIn() (string, []string, error) {
	if err := p.expect("("); err != nil {
		return "", nil, err
	}
	// Try: ident IN ( literals )
	if p.cur().kind == tokIdent && p.peekUpper(1) == "IN" {
		colTok := p.advance()
		p.pos++ // IN
		if err := p.expect("("); err != nil {
			return "", nil, err
		}
		var values []string
		for {
			t := p.advance()
			switch t.kind {
			case tokString, tokNumber, tokIdent:
				values = append(values, t.text)
			default:
				return "", nil, fmt.Errorf("sqlddl: line %d: unexpected %q in IN list", t.line, t.text)
			}
			if p.accept(",") {
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return "", nil, err
		}
		if err := p.expect(")"); err != nil {
			return "", nil, err
		}
		return colTok.text, values, nil
	}
	// Arbitrary expression: balance parentheses.
	depth := 1
	for depth > 0 {
		t := p.advance()
		if t.kind == tokEOF {
			return "", nil, fmt.Errorf("sqlddl: unterminated CHECK expression")
		}
		if t.text == "(" {
			depth++
		}
		if t.text == ")" {
			depth--
		}
	}
	return "", nil, nil
}

// attachDomain records a CHECK-IN constraint as a named domain on the
// column (paper §2: "define semantic domains for each coding scheme").
func (p *parser) attachDomain(table *model.Element, colName string, values []string) {
	col := childByName(table, colName)
	if col == nil {
		return
	}
	domName := table.Name + "." + col.Name
	d := &model.Domain{Name: domName}
	for _, v := range values {
		d.Values = append(d.Values, model.DomainValue{Code: v})
	}
	p.schema.AddDomain(d)
	col.DomainRef = domName
}

func (p *parser) parenIdentList() ([]string, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var out []string
	for {
		t, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, t.text)
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return out, nil
}

// commentOn parses COMMENT ON TABLE t IS '...' and
// COMMENT ON COLUMN t.c IS '...'.
func (p *parser) commentOn() error {
	p.pos += 2 // COMMENT ON
	kind := p.advance().upper()
	switch kind {
	case "TABLE":
		t, err := p.expectIdent()
		if err != nil {
			return err
		}
		doc, err := p.isString()
		if err != nil {
			return err
		}
		if table := p.tables[strings.ToLower(t.text)]; table != nil {
			table.Doc = doc
		}
	case "COLUMN":
		t, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expect("."); err != nil {
			return err
		}
		c, err := p.expectIdent()
		if err != nil {
			return err
		}
		doc, err := p.isString()
		if err != nil {
			return err
		}
		if table := p.tables[strings.ToLower(t.text)]; table != nil {
			if col := childByName(table, c.text); col != nil {
				col.Doc = doc
			}
		}
	default:
		p.skipStatement()
		return nil
	}
	p.skipStatement()
	return nil
}

func (p *parser) isString() (string, error) {
	if err := p.expect("IS"); err != nil {
		return "", err
	}
	t := p.advance()
	if t.kind != tokString {
		return "", fmt.Errorf("sqlddl: line %d: expected string literal after IS, got %q", t.line, t.text)
	}
	return t.text, nil
}

func childByName(parent *model.Element, name string) *model.Element {
	for _, c := range parent.Children() {
		if strings.EqualFold(c.Name, name) {
			return c
		}
	}
	return nil
}

func setProp(e *model.Element, k, v string) {
	if e.Props == nil {
		e.Props = map[string]string{}
	}
	e.Props[k] = v
}
