package sqlddl

import (
	"os"
	"strings"
	"testing"

	"repro/internal/model"
)

const hrDDL = `
-- HR schema exercising the full loader surface.
CREATE TABLE employee (
  emp_id      INTEGER PRIMARY KEY,
  first_name  VARCHAR(40) NOT NULL,
  last_name   VARCHAR(40) NOT NULL,
  salary      DECIMAL(10,2),
  dept_code   CHAR(4) REFERENCES department(dept_code)
              CHECK (dept_code IN ('ENG', 'OPS', 'FIN')),
  status      VARCHAR(10) DEFAULT 'active'
);

CREATE TABLE department (
  dept_code CHAR(4) NOT NULL,
  dept_name VARCHAR(80),
  PRIMARY KEY (dept_code),
  CONSTRAINT valid_code CHECK (dept_code IN ('ENG','OPS','FIN'))
);

COMMENT ON TABLE employee IS 'A person employed by the organization';
COMMENT ON COLUMN employee.salary IS 'Annual base salary in USD';
COMMENT ON COLUMN employee.first_name IS 'Given name of the employee';
`

func mustLoad(t *testing.T, name, src string) *model.Schema {
	t.Helper()
	s, err := Load(name, strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLoadTablesAndColumns(t *testing.T) {
	s := mustLoad(t, "hr", hrDDL)
	emp := s.Element("hr/employee")
	if emp == nil || emp.Kind != model.KindEntity || emp.EdgeFromParent != model.ContainsTable {
		t.Fatalf("employee: %+v", emp)
	}
	if got := len(emp.Children()); got != 6 {
		t.Errorf("employee has %d columns, want 6", got)
	}
	id := s.Element("hr/employee/emp_id")
	if !id.Key || !id.Required || id.DataType != "integer" {
		t.Errorf("emp_id: %+v", id)
	}
	fn := s.Element("hr/employee/first_name")
	if !fn.Required || fn.DataType != "varchar" {
		t.Errorf("first_name: %+v", fn)
	}
	sal := s.Element("hr/employee/salary")
	if sal.Required || sal.DataType != "decimal" {
		t.Errorf("salary: %+v", sal)
	}
}

func TestComments(t *testing.T) {
	s := mustLoad(t, "hr", hrDDL)
	if got := s.Element("hr/employee").Doc; got != "A person employed by the organization" {
		t.Errorf("table doc = %q", got)
	}
	if got := s.Element("hr/employee/salary").Doc; got != "Annual base salary in USD" {
		t.Errorf("column doc = %q", got)
	}
}

func TestCheckInBecomesDomain(t *testing.T) {
	s := mustLoad(t, "hr", hrDDL)
	col := s.Element("hr/employee/dept_code")
	if col.DomainRef == "" {
		t.Fatal("CHECK IN should attach a domain")
	}
	d := s.DomainOf(col)
	if d == nil || len(d.Values) != 3 {
		t.Fatalf("domain: %+v", d)
	}
	if d.Values[0].Code != "ENG" {
		t.Errorf("values = %+v", d.Values)
	}
	// Table-level CONSTRAINT ... CHECK also works.
	col2 := s.Element("hr/department/dept_code")
	if col2.DomainRef == "" {
		t.Error("table-level CHECK should attach a domain")
	}
}

func TestReferences(t *testing.T) {
	s := mustLoad(t, "hr", hrDDL)
	col := s.Element("hr/employee/dept_code")
	if col.Props["references"] != "department" {
		t.Errorf("references prop = %q", col.Props["references"])
	}
}

func TestTablePrimaryKeyConstraint(t *testing.T) {
	s := mustLoad(t, "hr", hrDDL)
	pk := s.Element("hr/department/dept_code")
	if !pk.Key {
		t.Error("table-level PRIMARY KEY should mark the column")
	}
}

func TestForeignKeyConstraint(t *testing.T) {
	src := `CREATE TABLE a (x INT, y INT,
	  FOREIGN KEY (x) REFERENCES b(z));`
	s := mustLoad(t, "s", src)
	if got := s.Element("s/a/x").Props["references"]; got != "b" {
		t.Errorf("fk references = %q", got)
	}
}

func TestQuotedIdentifiersAndEscapes(t *testing.T) {
	src := `CREATE TABLE "Order Items" (
	  "item id" INT,
	  note VARCHAR(10) CHECK (note IN ('it''s', 'ok'))
	);
	COMMENT ON TABLE "Order Items" IS 'Line items; it''s documented';`
	s := mustLoad(t, "q", src)
	tbl := s.Element("q/Order Items")
	if tbl == nil {
		t.Fatal("quoted table name lost")
	}
	if tbl.Doc != "Line items; it's documented" {
		t.Errorf("doc = %q", tbl.Doc)
	}
	note := s.Element("q/Order Items/note")
	d := s.DomainOf(note)
	if d == nil || d.Values[0].Code != "it's" {
		t.Errorf("escaped domain value: %+v", d)
	}
}

func TestSkipsUnknownStatements(t *testing.T) {
	src := `
	CREATE INDEX idx ON employee(last_name);
	INSERT INTO employee VALUES (1, 'x');
	CREATE TABLE t (c INT);
	GRANT SELECT ON t TO someone;
	`
	s := mustLoad(t, "s", src)
	if s.Element("s/t/c") == nil {
		t.Error("CREATE TABLE after skipped statements lost")
	}
	if got := len(s.ElementsOfKind(model.KindEntity)); got != 1 {
		t.Errorf("entities = %d, want 1", got)
	}
}

func TestIfNotExistsAndQualifiedNames(t *testing.T) {
	src := `CREATE TABLE IF NOT EXISTS myschema.orders (id INT PRIMARY KEY);`
	s := mustLoad(t, "s", src)
	if s.Element("s/orders/id") == nil {
		t.Error("qualified table name should use the table part")
	}
}

func TestBlockComments(t *testing.T) {
	src := `/* header
	comment */ CREATE TABLE t (c INT /* inline */ NOT NULL);`
	s := mustLoad(t, "s", src)
	if !s.Element("s/t/c").Required {
		t.Error("NOT NULL after block comment lost")
	}
}

func TestNonInCheckIgnored(t *testing.T) {
	src := `CREATE TABLE t (c INT CHECK (c > 0 AND c < 100));`
	s := mustLoad(t, "s", src)
	if s.Element("s/t/c").DomainRef != "" {
		t.Error("range check should not create a domain")
	}
}

func TestLexerErrors(t *testing.T) {
	for _, bad := range []string{
		"CREATE TABLE t (c INT); '#unterminated",
		"/* unterminated",
		`CREATE TABLE "unterminated (c INT);`,
	} {
		if _, err := Load("bad", strings.NewReader(bad)); err == nil {
			t.Errorf("Load(%q) should error", bad)
		}
	}
}

func TestParserErrors(t *testing.T) {
	for _, bad := range []string{
		"CREATE TABLE (c INT);",                    // missing table name
		"CREATE TABLE t c INT);",                   // missing (
		"CREATE TABLE t (c);",                      // missing type
		"CREATE TABLE t (c INT",                    // unterminated
		"CREATE TABLE t (c INT NOT);",              // NOT without NULL
		"COMMENT ON TABLE t 'no is';",              // missing IS
		"COMMENT ON COLUMN t.c IS 42;",             // non-string comment
		"CREATE TABLE t (c INT CHECK (c IN (,)));", // bad IN list
	} {
		if _, err := Load("bad", strings.NewReader(bad)); err == nil {
			t.Errorf("Load(%q) should error", bad)
		}
	}
}

func TestCommentForUnknownTargetIgnored(t *testing.T) {
	src := `CREATE TABLE t (c INT);
	COMMENT ON TABLE ghost IS 'no such table';
	COMMENT ON COLUMN t.ghost IS 'no such column';
	COMMENT ON VIEW v IS 'unsupported target';`
	if _, err := Load("s", strings.NewReader(src)); err != nil {
		t.Errorf("unknown comment targets should be ignored, got %v", err)
	}
}

func TestLoadFileStem(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/warehouse.sql"
	if err := os.WriteFile(path, []byte("CREATE TABLE t (c INT);"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "warehouse" {
		t.Errorf("Name = %q", s.Name)
	}
}

func TestStatsOnLoadedSchema(t *testing.T) {
	s := mustLoad(t, "hr", hrDDL)
	st := model.ComputeStats(s)
	if st.Entities != 2 || st.Attributes != 8 {
		t.Errorf("stats = %+v", st)
	}
	if st.DomainCount != 2 {
		t.Errorf("domains = %d, want 2", st.DomainCount)
	}
}

func TestTableLevelUniqueAndNamedConstraints(t *testing.T) {
	src := `CREATE TABLE t (
	  a INT,
	  b INT,
	  UNIQUE (a, b),
	  CONSTRAINT pk_t PRIMARY KEY (a),
	  CONSTRAINT fk_t FOREIGN KEY (b) REFERENCES other(x)
	);`
	s := mustLoad(t, "s", src)
	if !s.Element("s/t/a").Key {
		t.Error("named PRIMARY KEY constraint lost")
	}
	if s.Element("s/t/b").Props["references"] != "other" {
		t.Error("named FOREIGN KEY constraint lost")
	}
}

func TestColumnUniqueAndNull(t *testing.T) {
	src := `CREATE TABLE t (a INT UNIQUE NULL, b VARCHAR(5) DEFAULT 'x' NOT NULL);`
	s := mustLoad(t, "s", src)
	if s.Element("s/t/a").Required {
		t.Error("NULL column should not be required")
	}
	if !s.Element("s/t/b").Required {
		t.Error("NOT NULL after DEFAULT lost")
	}
}

func TestFKWithoutColumnList(t *testing.T) {
	src := `CREATE TABLE t (a INT REFERENCES other);`
	s := mustLoad(t, "s", src)
	if s.Element("s/t/a").Props["references"] != "other" {
		t.Error("REFERENCES without column list lost")
	}
}

func TestCheckNumericAndIdentifierCodes(t *testing.T) {
	src := `CREATE TABLE t (
	  n INT CHECK (n IN (1, 2, 3)),
	  w VARCHAR(8) CHECK (w IN (alpha, beta))
	);`
	s := mustLoad(t, "s", src)
	d := s.DomainOf(s.Element("s/t/n"))
	if d == nil || len(d.Values) != 3 || d.Values[0].Code != "1" {
		t.Errorf("numeric IN list: %+v", d)
	}
	d2 := s.DomainOf(s.Element("s/t/w"))
	if d2 == nil || d2.Values[0].Code != "alpha" {
		t.Errorf("identifier IN list: %+v", d2)
	}
}

func TestParenIdentListErrors(t *testing.T) {
	for _, bad := range []string{
		"CREATE TABLE t (a INT, PRIMARY KEY a);",              // missing (
		"CREATE TABLE t (a INT, PRIMARY KEY (a);",             // missing )
		"CREATE TABLE t (a INT, PRIMARY KEY (1));",            // non-ident
		"CREATE TABLE t (a INT, FOREIGN KEY (a) REFERENCES);", // missing table
	} {
		if _, err := Load("bad", strings.NewReader(bad)); err == nil {
			t.Errorf("Load(%q) should error", bad)
		}
	}
}

func TestStatementAtEOFWithoutSemicolon(t *testing.T) {
	s := mustLoad(t, "s", "CREATE TABLE t (c INT)")
	if s.Element("s/t/c") == nil {
		t.Error("unterminated final statement lost")
	}
}
