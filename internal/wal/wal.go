// Package wal gives the integration blackboard crash-safe durability: an
// append-only write-ahead log of graph mutations plus periodic full
// snapshots. The workbench manager's commit hook hands each committing
// transaction's undo-journal entries (rdf.ChangeOp, PR 3) to the Store,
// which frames them as length+CRC32 records, appends them in one batch
// write, and fsyncs before the commit is acknowledged. Recovery loads
// the latest snapshot, replays the log's committed transactions in
// order, and truncates any torn tail — so a process killed at any
// instant restarts with exactly the committed state (rdf.Equal to the
// pre-crash graph), never a partial transaction.
//
// The package is stdlib-only and depends only on internal/rdf,
// internal/chaos and internal/obs, keeping the dependency arrow
// wal ← server (the manager knows nothing about files; the service
// wires the two together through wbmgr.SetCommitHook).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/rdf"
)

// Metric names emitted by the WAL (see DESIGN.md §11).
const (
	// MetricAppends counts records appended to the log, labeled
	// kind=begin|add|del|commit|abort.
	MetricAppends = "wal_appends_total"
	// MetricFsync is the fsync latency histogram.
	MetricFsync = "wal_fsync_seconds"
	// MetricBatches counts batch writes (one per committed transaction).
	MetricBatches = "wal_batches_total"
	// MetricSnapshots counts snapshots taken.
	MetricSnapshots = "wal_snapshots_total"
	// MetricRecoveredTxns counts transactions replayed at recovery,
	// labeled status=committed|discarded.
	MetricRecoveredTxns = "wal_recovered_txns_total"
	// MetricTornTails counts torn tails truncated at recovery.
	MetricTornTails = "wal_torn_tail_truncations_total"
	// MetricSizeBytes gauges the current log file size.
	MetricSizeBytes = "wal_size_bytes"
)

// Chaos failpoint sites threaded through the WAL (see DESIGN.md §10/§11).
// Each sits on the durability-critical path so an injected fault or
// panic exercises the commit-rollback and recovery invariants.
const (
	// SiteAppend fires before a batch of records is written to the log.
	SiteAppend chaos.Site = "wal.append"
	// SiteFsync fires before the log file is fsynced.
	SiteFsync chaos.Site = "wal.fsync"
	// SiteSnapshot fires mid-snapshot, after the temp file is written
	// but before the atomic rename.
	SiteSnapshot chaos.Site = "wal.snapshot"
	// SiteRecover fires at the start of recovery (Open).
	SiteRecover chaos.Site = "wal.recover"
)

func init() {
	chaos.RegisterSite(SiteAppend, "before a WAL batch write")
	chaos.RegisterSite(SiteFsync, "before a WAL fsync")
	chaos.RegisterSite(SiteSnapshot, "mid-snapshot, before the atomic rename")
	chaos.RegisterSite(SiteRecover, "at the start of WAL recovery")
}

// Kind tags one WAL record.
type Kind byte

// The five record kinds. A transaction is framed Begin, then its Add and
// Del mutations in order, then Commit (or Abort; the durable manager
// only logs at commit time, so Abort records normally never appear, but
// recovery honors them for forward compatibility).
const (
	KindBegin  Kind = 'B'
	KindAdd    Kind = '+'
	KindDel    Kind = '-'
	KindCommit Kind = 'C'
	KindAbort  Kind = 'A'
)

// String names the kind for metrics labels.
func (k Kind) String() string {
	switch k {
	case KindBegin:
		return "begin"
	case KindAdd:
		return "add"
	case KindDel:
		return "del"
	case KindCommit:
		return "commit"
	case KindAbort:
		return "abort"
	default:
		return fmt.Sprintf("unknown(%d)", byte(k))
	}
}

// Record is one WAL entry: a transaction boundary or one triple
// mutation. Triple is serialized as a canonical N-Triples statement
// (the same form the snapshot uses), empty for boundary records.
type Record struct {
	Kind   Kind
	Txn    uint64
	Triple string
}

// maxPayload bounds a single record's payload; anything larger in the
// file means corruption (or a torn length field) and stops the scan.
const maxPayload = 64 << 20

// frameOverhead is the fixed per-record framing cost: a uint32 payload
// length followed by a uint32 CRC32 (IEEE) of the payload.
const frameOverhead = 8

// appendFrame encodes r into buf as one framed record and returns the
// extended buffer.
func appendFrame(buf []byte, r Record) []byte {
	// payload: kind byte | uvarint txn | triple bytes
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = byte(r.Kind)
	n := 1 + binary.PutUvarint(hdr[1:], r.Txn)
	payloadLen := n + len(r.Triple)

	var fixed [frameOverhead]byte
	binary.LittleEndian.PutUint32(fixed[0:4], uint32(payloadLen))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:n])
	crc.Write([]byte(r.Triple))
	binary.LittleEndian.PutUint32(fixed[4:8], crc.Sum32())

	buf = append(buf, fixed[:]...)
	buf = append(buf, hdr[:n]...)
	buf = append(buf, r.Triple...)
	return buf
}

// decodePayload parses one record payload (already CRC-verified).
func decodePayload(p []byte) (Record, error) {
	if len(p) == 0 {
		return Record{}, fmt.Errorf("wal: empty record payload")
	}
	k := Kind(p[0])
	switch k {
	case KindBegin, KindAdd, KindDel, KindCommit, KindAbort:
	default:
		return Record{}, fmt.Errorf("wal: unknown record kind 0x%02x", p[0])
	}
	txn, n := binary.Uvarint(p[1:])
	if n <= 0 {
		return Record{}, fmt.Errorf("wal: bad txn id varint")
	}
	return Record{Kind: k, Txn: txn, Triple: string(p[1+n:])}, nil
}

// scanFrames walks the framed records in data, calling fn for each
// fully-framed, CRC-valid record. It returns the byte offset just past
// the last good record; torn reports whether trailing bytes had to be
// discarded (a partial frame, a CRC mismatch, or an implausible length
// — everything from the first bad frame on is treated as torn tail,
// because nothing after it can be trusted).
func scanFrames(data []byte, fn func(Record) error) (clean int64, torn bool, err error) {
	off := 0
	for off < len(data) {
		if len(data)-off < frameOverhead {
			return int64(off), true, nil
		}
		payloadLen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if payloadLen <= 0 || payloadLen > maxPayload || off+frameOverhead+payloadLen > len(data) {
			return int64(off), true, nil
		}
		wantCRC := binary.LittleEndian.Uint32(data[off+4 : off+8])
		payload := data[off+frameOverhead : off+frameOverhead+payloadLen]
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return int64(off), true, nil
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			// Framed and checksummed but undecodable: corruption that a
			// torn write cannot explain. Stop here and report it.
			return int64(off), true, nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return int64(off), false, err
			}
		}
		off += frameOverhead + payloadLen
	}
	return int64(off), false, nil
}

// EncodeTxn frames one committed transaction (begin, ops, commit) into a
// single buffer, ready for an atomic batch append.
func EncodeTxn(txn uint64, ops []rdf.ChangeOp) []byte {
	// Rough capacity: framing + kind/txn bytes + ~64 bytes per triple.
	buf := make([]byte, 0, (len(ops)+2)*(frameOverhead+12)+len(ops)*64)
	buf = appendFrame(buf, Record{Kind: KindBegin, Txn: txn})
	for _, op := range ops {
		k := KindAdd
		if !op.Add {
			k = KindDel
		}
		buf = appendFrame(buf, Record{Kind: k, Txn: txn, Triple: op.T.String()})
	}
	buf = appendFrame(buf, Record{Kind: KindCommit, Txn: txn})
	return buf
}

// TxnFrame is one commit-sealed transaction as shipped between nodes:
// the originating txn id, the decoded mutations (ready for idempotent
// replay into a follower graph), and the raw CRC-framed bytes exactly
// as they sit in the primary's log.
type TxnFrame struct {
	Txn  uint64
	Ops  []rdf.ChangeOp
	Data []byte
}

// DecodeTxnFrames parses a replication batch: a concatenation of whole,
// commit-sealed transaction frames (the /v1/repl/log body). Unlike
// local recovery — which tolerates and truncates a torn tail — a
// shipped batch must be exact: every record must sit inside a
// Begin..Commit bracket and the stream must end on a commit boundary,
// because the shipper only ever sends fully durable transactions.
// Anything else is a protocol error or corruption in transit.
func DecodeTxnFrames(data []byte) ([]TxnFrame, error) {
	var out []TxnFrame
	var cur *TxnFrame
	start := 0
	off := 0
	for off < len(data) {
		if len(data)-off < frameOverhead {
			return nil, fmt.Errorf("wal: shipped batch: torn frame header at byte %d", off)
		}
		payloadLen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if payloadLen <= 0 || payloadLen > maxPayload || off+frameOverhead+payloadLen > len(data) {
			return nil, fmt.Errorf("wal: shipped batch: implausible frame length %d at byte %d", payloadLen, off)
		}
		payload := data[off+frameOverhead : off+frameOverhead+payloadLen]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[off+4:off+8]) {
			return nil, fmt.Errorf("wal: shipped batch: CRC mismatch at byte %d", off)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return nil, fmt.Errorf("wal: shipped batch: %w", err)
		}
		end := off + frameOverhead + payloadLen
		switch rec.Kind {
		case KindBegin:
			if cur != nil {
				return nil, fmt.Errorf("wal: shipped batch: begin of txn %d inside txn %d", rec.Txn, cur.Txn)
			}
			cur = &TxnFrame{Txn: rec.Txn}
			start = off
		case KindAdd, KindDel:
			if cur == nil || rec.Txn != cur.Txn {
				return nil, fmt.Errorf("wal: shipped batch: stray %s record for txn %d", rec.Kind, rec.Txn)
			}
			t, perr := rdf.ParseTriple(rec.Triple)
			if perr != nil {
				return nil, fmt.Errorf("wal: shipped batch: txn %d: %w", rec.Txn, perr)
			}
			cur.Ops = append(cur.Ops, rdf.ChangeOp{Add: rec.Kind == KindAdd, T: t})
		case KindCommit:
			if cur == nil || rec.Txn != cur.Txn {
				return nil, fmt.Errorf("wal: shipped batch: stray commit record for txn %d", rec.Txn)
			}
			cur.Data = append([]byte(nil), data[start:end]...)
			out = append(out, *cur)
			cur = nil
		case KindAbort:
			return nil, fmt.Errorf("wal: shipped batch: abort record for txn %d (only committed txns ship)", rec.Txn)
		}
		off = end
	}
	if cur != nil {
		return nil, fmt.Errorf("wal: shipped batch ends inside txn %d", cur.Txn)
	}
	return out, nil
}

// countRecords reports the record kinds in an encoded batch, for the
// append metrics (len(ops) adds/dels plus the two boundary records).
func countTxnRecords(reg *obs.Registry, ops []rdf.ChangeOp) {
	adds, dels := 0, 0
	for _, op := range ops {
		if op.Add {
			adds++
		} else {
			dels++
		}
	}
	reg.Counter(MetricAppends, "kind", "begin").Inc()
	reg.Counter(MetricAppends, "kind", "add").Add(int64(adds))
	reg.Counter(MetricAppends, "kind", "del").Add(int64(dels))
	reg.Counter(MetricAppends, "kind", "commit").Inc()
}
