package wal

// Tests of the store's replication surface: the durable fencing header
// (epoch + sealed flag), primary-id-preserving appends (AppendTxnAt),
// the ship ring (FramesSince/WaitFrames), and the strict batch decoder
// followers run on shipped bytes (DecodeTxnFrames).

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rdf"
)

func TestHeaderRoundTrip(t *testing.T) {
	s := newStore(t, Options{})
	dir := s.Dir()
	if s.Epoch() != 0 || s.Sealed() {
		t.Fatalf("fresh store: epoch=%d sealed=%v, want 0/unsealed", s.Epoch(), s.Sealed())
	}
	if err := s.SetEpoch(3, true); err != nil {
		t.Fatalf("SetEpoch: %v", err)
	}
	if s.Epoch() != 3 || !s.Sealed() {
		t.Fatalf("after SetEpoch(3, true): epoch=%d sealed=%v", s.Epoch(), s.Sealed())
	}
	// Moving the fence backwards is refused — a deposed primary must not
	// regain a fresher fence than its deposer.
	if err := s.SetEpoch(2, false); !errors.Is(err, ErrEpochBehind) {
		t.Fatalf("SetEpoch(2) after 3: %v, want ErrEpochBehind", err)
	}
	// Same epoch, clearing the seal (the rejoin-as-replica path) is fine.
	if err := s.SetEpoch(3, false); err != nil {
		t.Fatalf("unseal at same epoch: %v", err)
	}
	s.Close()

	// The header survives a restart via the sidecar file.
	h, err := ReadHeader(dir)
	if err != nil || h.Epoch != 3 || h.Sealed {
		t.Fatalf("ReadHeader = %+v, %v; want epoch 3 unsealed", h, err)
	}
	s2, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Epoch() != 3 || s2.Sealed() {
		t.Fatalf("reopened: epoch=%d sealed=%v", s2.Epoch(), s2.Sealed())
	}
}

func TestHeaderParseRejectsCorruption(t *testing.T) {
	// A corrupt fence must stop the node, not silently reset the epoch.
	cases := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"wrong magic", "nope v1 epoch 1 sealed 0 txn 0\n"},
		{"wrong version", "ibwal v2 epoch 1 sealed 0 txn 0\n"},
		{"missing fields", "ibwal v1 epoch 1\n"},
		{"missing txn", "ibwal v1 epoch 1 sealed 0\n"},
		{"extra fields", "ibwal v1 epoch 1 sealed 0 txn 0 junk\n"},
		{"bad epoch", "ibwal v1 epoch banana sealed 0 txn 0\n"},
		{"negative epoch", "ibwal v1 epoch -1 sealed 0 txn 0\n"},
		{"bad sealed", "ibwal v1 epoch 1 sealed maybe txn 0\n"},
		{"bad txn", "ibwal v1 epoch 1 sealed 0 txn banana\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parseHeader(tc.text); err == nil {
				t.Fatalf("parseHeader(%q) accepted", tc.text)
			}
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, HeaderFile), []byte(tc.text), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Open(dir, Options{SnapshotEvery: -1}); err == nil {
				t.Fatalf("Open over corrupt header %q succeeded", tc.text)
			}
		})
	}
	// The two legitimate sealed values parse.
	for _, text := range []string{"ibwal v1 epoch 0 sealed 0 txn 0\n", "ibwal v1 epoch 7 sealed 1 txn 42"} {
		if _, err := parseHeader(text); err != nil {
			t.Fatalf("parseHeader(%q): %v", text, err)
		}
	}
}

func TestAppendTxnAtPreservesPrimaryIDs(t *testing.T) {
	s := newStore(t, Options{})
	ctx := context.Background()
	ops := mustOps(t, `<urn:a> <urn:p> <urn:b> .`)
	// A follower applies the primary's txns 5 and 9 — ids with gaps, as
	// after a snapshot-bootstrap at txn 4.
	if err := s.AppendTxnAt(ctx, 5, ops); err != nil {
		t.Fatalf("AppendTxnAt(5): %v", err)
	}
	if err := s.AppendTxnAt(ctx, 9, mustOps(t, `<urn:c> <urn:p> <urn:d> .`)); err != nil {
		t.Fatalf("AppendTxnAt(9): %v", err)
	}
	if s.LastTxn() != 9 {
		t.Fatalf("LastTxn = %d, want 9", s.LastTxn())
	}
	// Replayed or stale ids are refused with the sentinel the replica
	// treats as "already applied".
	for _, txn := range []uint64{9, 5, 1} {
		if err := s.AppendTxnAt(ctx, txn, ops); !errors.Is(err, ErrTxnApplied) {
			t.Fatalf("AppendTxnAt(%d) after 9: %v, want ErrTxnApplied", txn, err)
		}
	}
	// The cursor survives a restart: recovery lands on the primary's ids.
	dir := s.Dir()
	s.Close()
	s2, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.LastTxn() != 9 {
		t.Fatalf("LastTxn after reopen = %d, want 9", s2.LastTxn())
	}
	// And a local append continues the primary's id space.
	if err := s2.AppendTxn(nil); err != nil {
		t.Fatal(err)
	}
	if s2.LastTxn() != 10 {
		t.Fatalf("LastTxn after local append = %d, want 10", s2.LastTxn())
	}
}

func TestFramesSinceShipsDecodableBatches(t *testing.T) {
	s := newStore(t, Options{})
	batches := [][]rdf.ChangeOp{
		mustOps(t, `<urn:a> <urn:p> <urn:b> .`),
		mustOps(t, `-<urn:a> <urn:p> <urn:b> .`, `<urn:c> <urn:p> <urn:d> .`),
		mustOps(t, `<urn:e> <urn:p> <urn:f> .`),
	}
	for _, ops := range batches {
		if err := s.AppendTxn(ops); err != nil {
			t.Fatal(err)
		}
	}
	data, n, last, ok := s.FramesSince(0, 100)
	if !ok || n != 3 || last != 3 {
		t.Fatalf("FramesSince(0) = n=%d last=%d ok=%v", n, last, ok)
	}
	frames, err := DecodeTxnFrames(data)
	if err != nil {
		t.Fatalf("DecodeTxnFrames: %v", err)
	}
	if len(frames) != 3 {
		t.Fatalf("decoded %d frames, want 3", len(frames))
	}
	// A follower replaying the frames lands on the same graph a local
	// replay of the ops would.
	want, got := rdf.NewGraph(), rdf.NewGraph()
	for i, fr := range frames {
		if fr.Txn != uint64(i+1) {
			t.Fatalf("frame %d has txn %d", i, fr.Txn)
		}
		want, got = applyOps(want, batches[i]), applyOps(got, fr.Ops)
	}
	if !rdf.Equal(want, got) {
		t.Fatal("shipped ops diverge from the appended ops")
	}

	// Mid-stream cursor: only the tail ships.
	_, n, last, ok = s.FramesSince(2, 100)
	if !ok || n != 1 || last != 3 {
		t.Fatalf("FramesSince(2) = n=%d last=%d ok=%v", n, last, ok)
	}
	// Caught up: empty but ok (long-poll would park).
	data, n, _, ok = s.FramesSince(3, 100)
	if !ok || n != 0 || len(data) != 0 {
		t.Fatalf("FramesSince(3) = n=%d len=%d ok=%v", n, len(data), ok)
	}
	// maxTxns bounds one batch; last still reports the store's head so
	// the follower knows it is not caught up yet.
	data, n, last, ok = s.FramesSince(0, 2)
	if !ok || n != 2 || last != 3 {
		t.Fatalf("FramesSince(0, max 2) = n=%d last=%d ok=%v", n, last, ok)
	}
	if frames, err := DecodeTxnFrames(data); err != nil || len(frames) != 2 || frames[1].Txn != 2 {
		t.Fatalf("bounded batch = %d frames, %v", len(frames), err)
	}
}

func TestFramesSinceRingEvictionForcesBootstrap(t *testing.T) {
	s := newStore(t, Options{ReplBufferTxns: 2})
	for i := 0; i < 4; i++ {
		if err := s.AppendTxn(nil); err != nil {
			t.Fatal(err)
		}
	}
	// Txns 1 and 2 were evicted from the 2-slot ring: a cursor at 0 can
	// no longer be served contiguously and must bootstrap.
	if _, _, _, ok := s.FramesSince(0, 100); ok {
		t.Fatal("evicted cursor served from the ring")
	}
	if _, n, _, ok := s.FramesSince(2, 100); !ok || n != 2 {
		t.Fatalf("FramesSince(2) = n=%d ok=%v, want the 2 retained txns", n, ok)
	}
	// A negative buffer disables the ring entirely: every behind-cursor
	// poll bootstraps.
	s2 := newStore(t, Options{ReplBufferTxns: -1})
	if err := s2.AppendTxn(nil); err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := s2.FramesSince(0, 100); ok {
		t.Fatal("ring-less store served frames")
	}
}

func TestWaitFramesWakesOnAppend(t *testing.T) {
	s := newStore(t, Options{})
	if err := s.AppendTxn(nil); err != nil {
		t.Fatal(err)
	}
	// A caught-up poll with a tiny timeout returns empty, not an error.
	start := time.Now()
	_, n, last, ok := s.WaitFrames(context.Background(), 1, 20*time.Millisecond, 100)
	if !ok || n != 0 || last != 1 {
		t.Fatalf("idle WaitFrames = n=%d last=%d ok=%v", n, last, ok)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("idle poll returned before its timeout")
	}

	// A parked poll wakes when an append lands.
	var wg sync.WaitGroup
	wg.Add(1)
	var gotN int
	var gotOK bool
	go func() {
		defer wg.Done()
		_, gotN, _, gotOK = s.WaitFrames(context.Background(), 1, 5*time.Second, 100)
	}()
	time.Sleep(10 * time.Millisecond)
	if err := s.AppendTxn(mustOps(t, `<urn:a> <urn:p> <urn:b> .`)); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !gotOK || gotN != 1 {
		t.Fatalf("woken WaitFrames = n=%d ok=%v", gotN, gotOK)
	}

	// Context cancellation unparks immediately.
	ctx, cancel := context.WithCancel(context.Background())
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _, _ = s.WaitFrames(ctx, 2, time.Minute, 100)
	}()
	cancel()
	wg.Wait()
}

func TestDecodeTxnFramesRejectsMalformedStreams(t *testing.T) {
	// Followers run the strict decoder: anything a healthy primary would
	// never ship — torn tails, stray records, aborts — is a protocol
	// error, unlike local recovery which tolerates a torn tail.
	s := newStore(t, Options{})
	if err := s.AppendTxn(mustOps(t, `<urn:a> <urn:p> <urn:b> .`)); err != nil {
		t.Fatal(err)
	}
	good, _, _, ok := s.FramesSince(0, 100)
	if !ok {
		t.Fatal("FramesSince not ok")
	}
	if _, err := DecodeTxnFrames(nil); err != nil {
		t.Fatalf("empty stream rejected: %v", err)
	}
	if _, err := DecodeTxnFrames(good); err != nil {
		t.Fatalf("well-formed stream rejected: %v", err)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"torn last frame", good[:len(good)-1], "implausible"},
		{"truncated header", good[:3], "torn"},
		{"corrupt byte", corruptLastByte(good), "CRC"},
		{"stray commit", append(append([]byte{}, good...), appendFrame(nil, Record{Kind: KindCommit, Txn: 2})...), "stray"},
		{"abort record", txnWith(t, 2, KindAbort), "abort"},
		{"begin inside txn", doubleBegin(t), "inside"},
		{"missing commit", txnWithoutCommit(t, 2), "ends inside"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeTxnFrames(tc.data)
			if err == nil {
				t.Fatal("malformed stream accepted")
			}
			if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tc.want)) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// corruptLastByte flips a bit in the final record's payload.
func corruptLastByte(data []byte) []byte {
	out := append([]byte{}, data...)
	out[len(out)-1] ^= 0xff
	return out
}

// txnWith builds Begin(txn) + one kind record + Commit(txn).
func txnWith(t *testing.T, txn uint64, kind Kind) []byte {
	t.Helper()
	out := appendFrame(nil, Record{Kind: KindBegin, Txn: txn})
	out = appendFrame(out, Record{Kind: kind, Txn: txn})
	return appendFrame(out, Record{Kind: KindCommit, Txn: txn})
}

// txnWithoutCommit builds a Begin with no Commit — a batch a primary
// would never seal.
func txnWithoutCommit(t *testing.T, txn uint64) []byte {
	t.Helper()
	return appendFrame(nil, Record{Kind: KindBegin, Txn: txn})
}

// doubleBegin nests a Begin inside an open transaction.
func doubleBegin(t *testing.T) []byte {
	t.Helper()
	out := appendFrame(nil, Record{Kind: KindBegin, Txn: 1})
	return appendFrame(out, Record{Kind: KindBegin, Txn: 2})
}
