package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// newStore opens a store in a fresh temp dir with auto-snapshots off
// (tests control snapshot timing explicitly) and an isolated registry.
func newStore(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = -1
	}
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// reopen recovers the store's directory into a fresh read-only graph,
// simulating a restart after the original process vanished.
func reopen(t *testing.T, dir string) (*rdf.Graph, RecoveryStats) {
	t.Helper()
	g, stats, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover(%s): %v", dir, err)
	}
	return g, stats
}

func TestAppendAndRecover(t *testing.T) {
	s := newStore(t, Options{})
	ops1 := mustOps(t, `<urn:a> <urn:p> <urn:b> .`, `<urn:c> <urn:p> <urn:d> .`)
	ops2 := mustOps(t, `-<urn:c> <urn:p> <urn:d> .`, `<urn:e> <urn:p> <urn:f> .`)
	for _, ops := range [][]rdf.ChangeOp{ops1, ops2} {
		for _, op := range ops {
			if op.Add {
				s.Graph().Add(op.T)
			} else {
				s.Graph().Remove(op.T)
			}
		}
		if err := s.AppendTxn(ops); err != nil {
			t.Fatalf("AppendTxn: %v", err)
		}
	}
	g, stats := reopen(t, s.Dir())
	if !rdf.Equal(g, s.Graph()) {
		t.Fatalf("recovered graph differs from live graph:\n%s\nvs\n%s",
			rdf.MarshalNTriples(g), rdf.MarshalNTriples(s.Graph()))
	}
	if stats.CommittedTxns != 2 || stats.ReplayedOps != 4 || stats.TornTail {
		t.Fatalf("stats = %v", stats)
	}
}

func TestEmptyTxnStillAdvances(t *testing.T) {
	s := newStore(t, Options{})
	if err := s.AppendTxn(nil); err != nil {
		t.Fatalf("AppendTxn(nil): %v", err)
	}
	if err := s.AppendTxn(nil); err != nil {
		t.Fatalf("AppendTxn(nil) #2: %v", err)
	}
	_, stats := reopen(t, s.Dir())
	if stats.CommittedTxns != 2 || stats.ReplayedOps != 0 {
		t.Fatalf("stats = %v", stats)
	}
}

func TestSnapshotTruncatesLog(t *testing.T) {
	reg := obs.NewRegistry()
	s := newStore(t, Options{Metrics: reg})
	ops := mustOps(t, `<urn:a> <urn:p> <urn:b> .`)
	s.Graph().Add(ops[0].T)
	if err := s.AppendTxn(ops); err != nil {
		t.Fatal(err)
	}
	if s.LogSize() == 0 {
		t.Fatal("log empty after append")
	}
	if err := s.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}
	if s.LogSize() != 0 {
		t.Fatalf("log not truncated: %d bytes", s.LogSize())
	}
	g, stats := reopen(t, s.Dir())
	if stats.SnapshotTriples != 1 || stats.CommittedTxns != 0 {
		t.Fatalf("stats = %v", stats)
	}
	if !rdf.Equal(g, s.Graph()) {
		t.Fatal("snapshot lost state")
	}
}

func TestAutoSnapshotCadence(t *testing.T) {
	s := newStore(t, Options{SnapshotEvery: 3})
	ops := mustOps(t, `<urn:a> <urn:p> <urn:b> .`)
	s.Graph().Add(ops[0].T)
	for i := 0; i < 3; i++ {
		if err := s.AppendTxn(ops); err != nil {
			t.Fatal(err)
		}
	}
	if s.LogSize() != 0 {
		t.Fatalf("auto-snapshot did not fire: log %d bytes", s.LogSize())
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), SnapshotFile)); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
}

func TestCloseFoldsLogIntoSnapshot(t *testing.T) {
	s := newStore(t, Options{})
	ops := mustOps(t, `<urn:a> <urn:p> <urn:b> .`)
	s.Graph().Add(ops[0].T)
	if err := s.AppendTxn(ops); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.AppendTxn(ops); err == nil {
		t.Fatal("append after Close succeeded")
	}
	_, stats := reopen(t, s.Dir())
	if stats.SnapshotTriples != 1 || stats.LogBytes != 0 {
		t.Fatalf("stats after Close = %v", stats)
	}
}

func TestReplayIsIdempotentOverSnapshot(t *testing.T) {
	// The crash window between snapshot rename and log truncation leaves
	// a snapshot that already contains the logged transactions. Replay
	// must be a no-op, not a duplication or an error.
	s := newStore(t, Options{})
	ops := mustOps(t, `<urn:a> <urn:p> <urn:b> .`, `-<urn:zz> <urn:p> <urn:zz> .`)
	s.Graph().Add(ops[0].T)
	if err := s.AppendTxn(ops); err != nil {
		t.Fatal(err)
	}
	// Write the snapshot by hand without truncating the log.
	f, err := os.Create(filepath.Join(s.Dir(), SnapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := rdf.WriteNTriples(f, s.Graph()); err != nil {
		t.Fatal(err)
	}
	f.Close()

	g, stats := reopen(t, s.Dir())
	if stats.TornTail || stats.CommittedTxns != 1 {
		t.Fatalf("stats = %v", stats)
	}
	if !rdf.Equal(g, s.Graph()) {
		t.Fatal("idempotent replay changed the graph")
	}
}

func TestLeftoverTmpSnapshotIgnored(t *testing.T) {
	s := newStore(t, Options{})
	ops := mustOps(t, `<urn:a> <urn:p> <urn:b> .`)
	s.Graph().Add(ops[0].T)
	if err := s.AppendTxn(ops); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-snapshot: a half-written temp file remains.
	if err := os.WriteFile(filepath.Join(s.Dir(), snapshotTmp), []byte("<urn:half"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, _ := reopen(t, s.Dir())
	if !rdf.Equal(g, s.Graph()) {
		t.Fatal("tmp snapshot corrupted recovery")
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), snapshotTmp)); !os.IsNotExist(err) {
		t.Fatalf("tmp snapshot not removed: %v", err)
	}
}
