package wal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/obs/logx"
	"repro/internal/rdf"
)

// Sentinel errors for the replication paths.
var (
	// ErrEpochBehind marks an attempt to move the fencing epoch backwards.
	ErrEpochBehind = errors.New("wal: fencing epoch would move backwards")
	// ErrTxnApplied marks an AppendTxnAt whose txn id is not ahead of the
	// store — the transaction is already durable here (idempotent replay).
	ErrTxnApplied = errors.New("wal: txn already applied")
)

// File names inside a store directory.
const (
	SnapshotFile = "snapshot.nt"
	LogFile      = "wal.log"
	snapshotTmp  = "snapshot.nt.tmp"
)

// DefaultSnapshotEvery is the auto-snapshot cadence: after this many
// committed transactions the log is folded into a fresh snapshot and
// truncated. Chosen so a busy session compacts regularly while a mostly
// read-only one never rewrites the snapshot.
const DefaultSnapshotEvery = 256

// DefaultReplBufferTxns is the default capacity of the in-memory ship
// ring: how many recent committed transactions a primary can serve to a
// lagging replica before the replica must fall back to a snapshot
// bootstrap. The ring holds encoded batches, so memory cost is
// proportional to recent mutation volume, not graph size.
const DefaultReplBufferTxns = 1024

// Options tunes a Store. The zero value is production-ready.
type Options struct {
	// SnapshotEvery is the number of committed transactions between
	// automatic snapshots (0 = DefaultSnapshotEvery, negative = never;
	// explicit SnapshotNow still works).
	SnapshotEvery int
	// ReplBufferTxns is the ship-ring capacity in transactions
	// (0 = DefaultReplBufferTxns, negative = no ring; FramesSince then
	// always demands a bootstrap unless the follower is fully caught up).
	ReplBufferTxns int
	// Metrics receives WAL instrumentation (nil = obs.Default()).
	Metrics *obs.Registry
}

// RecoveryStats reports what recovery found in a store directory.
type RecoveryStats struct {
	// SnapshotTriples is the triple count loaded from the snapshot.
	SnapshotTriples int
	// CommittedTxns and ReplayedOps count the transactions and mutations
	// replayed from the log.
	CommittedTxns int
	ReplayedOps   int
	// DiscardedTxns counts transactions present in the log without a
	// commit record (in-flight at crash time, or aborted) — their ops are
	// never applied.
	DiscardedTxns int
	// TornTail reports that trailing bytes failed framing or CRC checks
	// and were ignored (and truncated, when recovering for writing);
	// TornAtOffset is the byte offset of the first bad frame.
	TornTail     bool
	TornAtOffset int64
	// LogBytes is the usable (clean) log length.
	LogBytes int64
}

// String renders the stats as a one-line fsck-style summary.
func (s RecoveryStats) String() string {
	torn := ""
	if s.TornTail {
		torn = fmt.Sprintf(", torn tail at byte %d", s.TornAtOffset)
	}
	return fmt.Sprintf("snapshot %d triples, %d committed txns (%d ops) replayed, %d discarded%s",
		s.SnapshotTriples, s.CommittedTxns, s.ReplayedOps, s.DiscardedTxns, torn)
}

// Store is a durable home for one blackboard graph: a snapshot file plus
// an append-only log, both living in a single directory. All methods are
// safe for concurrent use; appends are serialized internally.
type Store struct {
	dir  string
	opts Options
	reg  *obs.Registry

	mu               sync.Mutex
	log              *os.File
	logSize          int64
	g                *rdf.Graph
	nextTxn          uint64
	commitsSinceSnap int
	stats            RecoveryStats
	hdr              Header
	ring             []shippedTxn // recent encoded batches, ascending txn
	replWake         chan struct{}
	closed           bool
}

// shippedTxn is one ring entry: a committed transaction's id and its
// encoded batch, byte-identical to what sits in the log file.
type shippedTxn struct {
	txn  uint64
	data []byte
}

// Open recovers the store in dir (creating it if absent) and returns a
// Store ready for appends. The recovered graph — the last committed
// state — is available via Graph(). Torn log tails are truncated so the
// next append lands on a clean boundary.
func Open(dir string, opts Options) (*Store, error) {
	if opts.Metrics == nil {
		opts.Metrics = obs.Default()
	}
	reg := opts.Metrics
	describeMetrics(reg)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := chaos.Inject(SiteRecover); err != nil {
		return nil, fmt.Errorf("wal: recover: %w", err)
	}
	g, stats, maxTxn, err := recoverDir(dir, reg)
	if err != nil {
		return nil, err
	}
	hdr, err := ReadHeader(dir)
	if err != nil {
		return nil, err
	}
	// The txn id space continues from whichever mark is higher: the log's
	// highest id, or the header's high-water mark from the last snapshot
	// (snapshots truncate the log, so the log alone under-counts).
	if hdr.LastTxn > maxTxn {
		maxTxn = hdr.LastTxn
	}
	logPath := filepath.Join(dir, LogFile)
	if stats.TornTail {
		if err := os.Truncate(logPath, stats.TornAtOffset); err != nil {
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		reg.Counter(MetricTornTails).Inc()
	}
	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	reg.Counter(MetricRecoveredTxns, "status", "committed").Add(int64(stats.CommittedTxns))
	reg.Counter(MetricRecoveredTxns, "status", "discarded").Add(int64(stats.DiscardedTxns))
	reg.Gauge(MetricSizeBytes).Set(float64(stats.LogBytes))
	return &Store{
		dir:      dir,
		opts:     opts,
		reg:      reg,
		log:      f,
		logSize:  stats.LogBytes,
		g:        g,
		nextTxn:  maxTxn,
		stats:    stats,
		hdr:      hdr,
		replWake: make(chan struct{}),
	}, nil
}

func describeMetrics(reg *obs.Registry) {
	reg.Describe(MetricAppends, "WAL records appended, by kind.")
	reg.Describe(MetricFsync, "WAL fsync latency.")
	reg.Describe(MetricBatches, "WAL batch writes (one per committed transaction).")
	reg.Describe(MetricSnapshots, "WAL snapshots taken.")
	reg.Describe(MetricRecoveredTxns, "Transactions seen at recovery, by status.")
	reg.Describe(MetricTornTails, "Torn WAL tails truncated at recovery.")
	reg.Describe(MetricSizeBytes, "Current WAL file size in bytes.")
}

// Recover performs a read-only recovery of dir: it loads the snapshot,
// replays committed transactions, and reports what it found — without
// truncating torn tails or opening the log for writing. `workbench
// fsck` is built on this.
func Recover(dir string) (*rdf.Graph, RecoveryStats, error) {
	g, stats, _, err := recoverDir(dir, obs.NewRegistry())
	return g, stats, err
}

// recoverDir loads snapshot + log from dir. It returns the recovered
// graph, stats, and the highest transaction id seen in the log.
func recoverDir(dir string, reg *obs.Registry) (*rdf.Graph, RecoveryStats, uint64, error) {
	var stats RecoveryStats
	// A leftover temp snapshot means a crash mid-snapshot: the real
	// snapshot plus the intact log still hold the full state.
	os.Remove(filepath.Join(dir, snapshotTmp))

	g := rdf.NewGraph()
	if f, err := os.Open(filepath.Join(dir, SnapshotFile)); err == nil {
		loaded, rerr := rdf.ReadNTriples(f)
		f.Close()
		if rerr != nil {
			return nil, stats, 0, fmt.Errorf("wal: snapshot: %w", rerr)
		}
		g = loaded
		stats.SnapshotTriples = g.Len()
	} else if !os.IsNotExist(err) {
		return nil, stats, 0, fmt.Errorf("wal: %w", err)
	}

	data, err := os.ReadFile(filepath.Join(dir, LogFile))
	if err != nil && !os.IsNotExist(err) {
		return nil, stats, 0, fmt.Errorf("wal: %w", err)
	}

	// Replay: buffer each transaction's ops, apply them only at its
	// commit record, in log order. Ops journal only effective mutations,
	// so re-applying a transaction already folded into the snapshot
	// (crash between snapshot rename and log truncation) is a no-op.
	pending := map[uint64][]rdf.ChangeOp{}
	var maxTxn uint64
	clean, torn, err := scanFrames(data, func(r Record) error {
		if r.Txn > maxTxn {
			maxTxn = r.Txn
		}
		switch r.Kind {
		case KindBegin:
			pending[r.Txn] = nil
		case KindAdd, KindDel:
			t, perr := rdf.ParseTriple(r.Triple)
			if perr != nil {
				return fmt.Errorf("wal: replay txn %d: %w", r.Txn, perr)
			}
			pending[r.Txn] = append(pending[r.Txn], rdf.ChangeOp{Add: r.Kind == KindAdd, T: t})
		case KindCommit:
			for _, op := range pending[r.Txn] {
				if op.Add {
					g.Add(op.T)
				} else {
					g.Remove(op.T)
				}
				stats.ReplayedOps++
			}
			delete(pending, r.Txn)
			stats.CommittedTxns++
		case KindAbort:
			delete(pending, r.Txn)
			stats.DiscardedTxns++
		}
		return nil
	})
	if err != nil {
		return nil, stats, 0, err
	}
	stats.DiscardedTxns += len(pending)
	stats.TornTail = torn
	stats.TornAtOffset = clean
	stats.LogBytes = clean
	return g, stats, maxTxn, nil
}

// Graph returns the recovered (and thereafter live) graph. The caller —
// typically blackboard.NewFromGraph — owns mutations; the store only
// reads it during snapshots.
func (s *Store) Graph() *rdf.Graph { return s.g }

// SetGraph rebinds the graph the store snapshots from. A workspace that
// idle-closed its store (folding the log into a snapshot) reopens it
// later and points the fresh store at the still-live blackboard graph,
// instead of adopting the store's recovered copy — the contents are
// equal (Close folded every committed txn), but object identity must
// stay with the blackboard so feeds and match sessions keep working.
func (s *Store) SetGraph(g *rdf.Graph) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.g = g
}

// Stats returns what recovery found when the store was opened.
func (s *Store) Stats() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// AppendTxn durably logs one committed transaction: the batch (begin,
// ops, commit) is framed into a single write followed by an fsync. It
// returns only after the transaction is durable — wire it into
// wbmgr.SetCommitHook so a failed append rolls the transaction back. An
// empty ops slice is logged too (the commit still advances the txn id),
// keeping the hook contract trivial for callers.
func (s *Store) AppendTxn(ops []rdf.ChangeOp) error {
	return s.AppendTxnContext(context.Background(), ops)
}

// AppendTxnContext is AppendTxn with request-trace propagation: when
// ctx carries a span (the wbmgr transaction span on server requests),
// the append and its fsync record as "wal.append"/"wal.fsync" child
// spans, so a trace attributes durability latency separately from
// matching and merging.
func (s *Store) AppendTxnContext(ctx context.Context, ops []rdf.ChangeOp) (err error) {
	sp, ctx := obs.StartSpan(ctx, "wal.append")
	sp.SetAttr("ops", strconv.Itoa(len(ops)))
	defer func() {
		if err != nil {
			sp.SetError(err)
			logx.For("wal").Warn(ctx, "append failed", "err", err)
		}
		sp.End()
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("wal: store closed")
	}
	return s.appendTxnLocked(ctx, s.nextTxn+1, ops)
}

// AppendTxnAt durably logs one transaction under an explicit id — the
// replication apply path, where a replica must preserve the primary's
// txn numbering so replication cursors survive restarts and a promoted
// replica continues the same id space. txn must be ahead of everything
// already in the store; a stale id returns ErrTxnApplied (wrapped), the
// idempotent-replay signal.
func (s *Store) AppendTxnAt(ctx context.Context, txn uint64, ops []rdf.ChangeOp) (err error) {
	sp, ctx := obs.StartSpan(ctx, "wal.append")
	sp.SetAttr("ops", strconv.Itoa(len(ops)))
	sp.SetAttr("txn", strconv.FormatUint(txn, 10))
	defer func() {
		if err != nil {
			sp.SetError(err)
			logx.For("wal").Warn(ctx, "append-at failed", "txn", txn, "err", err)
		}
		sp.End()
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("wal: store closed")
	}
	if txn <= s.nextTxn {
		return fmt.Errorf("wal: txn %d not ahead of %d: %w", txn, s.nextTxn, ErrTxnApplied)
	}
	return s.appendTxnLocked(ctx, txn, ops)
}

// appendTxnLocked frames, writes, and fsyncs one transaction batch,
// then advances the txn counter, feeds the ship ring, and runs the
// auto-snapshot cadence. Callers hold s.mu and have validated txn.
func (s *Store) appendTxnLocked(ctx context.Context, txn uint64, ops []rdf.ChangeOp) error {
	buf := EncodeTxn(txn, ops)
	if err := chaos.Inject(SiteAppend); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	n, err := s.log.Write(buf)
	if err != nil {
		// A short write leaves a torn tail in the file; truncate back so
		// the in-process log stays frame-aligned (recovery would discard
		// the tail anyway).
		if n > 0 {
			s.log.Truncate(s.logSize)
		}
		return fmt.Errorf("wal: append: %w", err)
	}
	fsp, _ := obs.StartSpan(ctx, "wal.fsync")
	err = s.fsyncLocked()
	fsp.SetError(err)
	fsp.End()
	if err != nil {
		// The bytes may or may not have reached disk. The commit is going
		// to fail and roll back, so the record must not survive either:
		// truncate it away and re-sync best-effort.
		s.log.Truncate(s.logSize)
		s.log.Sync()
		return fmt.Errorf("wal: fsync: %w", err)
	}
	s.logSize += int64(len(buf))
	s.nextTxn = txn
	s.ringPushLocked(txn, buf)
	countTxnRecords(s.reg, ops)
	s.reg.Counter(MetricBatches).Inc()
	s.reg.Gauge(MetricSizeBytes).Set(float64(s.logSize))

	if every := s.snapshotEvery(); every > 0 {
		s.commitsSinceSnap++
		if s.commitsSinceSnap >= every {
			// The transaction is already durable in the log; a failed
			// snapshot must not fail the commit. Leave the log as is and
			// retry at the next commit.
			if err := s.snapshotLocked(); err != nil {
				s.commitsSinceSnap = every // retry next commit
			}
		}
	}
	return nil
}

func (s *Store) snapshotEvery() int {
	switch {
	case s.opts.SnapshotEvery > 0:
		return s.opts.SnapshotEvery
	case s.opts.SnapshotEvery < 0:
		return 0
	default:
		return DefaultSnapshotEvery
	}
}

// fsyncLocked syncs the log file through the fsync failpoint, timing the
// call.
func (s *Store) fsyncLocked() error {
	if err := chaos.Inject(SiteFsync); err != nil {
		return err
	}
	t0 := time.Now()
	err := s.log.Sync()
	s.reg.Histogram(MetricFsync, obs.LatencyBuckets).ObserveDuration(time.Since(t0))
	return err
}

// SnapshotNow folds the current graph into a fresh snapshot and
// truncates the log. Safe to call at any time; concurrent appends wait.
func (s *Store) SnapshotNow() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("wal: store closed")
	}
	return s.snapshotLocked()
}

// snapshotLocked writes the snapshot crash-safely: temp file + fsync,
// failpoint, atomic rename, directory fsync, then log truncation. A
// crash at any point leaves a recoverable directory — before the rename
// the old snapshot + full log win; between rename and truncation the new
// snapshot plus an idempotent replay win.
func (s *Store) snapshotLocked() error {
	tmp := filepath.Join(s.dir, snapshotTmp)
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := rdf.WriteNTriples(f, s.g); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := chaos.Inject(SiteSnapshot); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, SnapshotFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	syncDir(s.dir)
	// Persist the txn high-water mark before the log (its only other
	// home) is truncated. Ordered this way a crash in between is safe:
	// snapshot + intact log still recover, and Open takes the max of the
	// two marks.
	if h := (Header{Epoch: s.hdr.Epoch, Sealed: s.hdr.Sealed, LastTxn: s.nextTxn}); h != s.hdr {
		if err := writeHeader(s.dir, h); err != nil {
			return err
		}
		s.hdr = h
	}
	if err := s.log.Truncate(0); err != nil {
		return fmt.Errorf("wal: snapshot: truncating log: %w", err)
	}
	s.log.Sync()
	s.logSize = 0
	s.commitsSinceSnap = 0
	s.reg.Counter(MetricSnapshots).Inc()
	s.reg.Gauge(MetricSizeBytes).Set(0)
	return nil
}

// syncDir fsyncs a directory so a rename is durable (best-effort; some
// platforms refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// LogSize returns the current clean log length in bytes.
func (s *Store) LogSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logSize
}

// LastTxn returns the highest committed transaction id in the store.
func (s *Store) LastTxn() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextTxn
}

// replBufferTxns resolves the configured ship-ring capacity.
func (s *Store) replBufferTxns() int {
	switch {
	case s.opts.ReplBufferTxns > 0:
		return s.opts.ReplBufferTxns
	case s.opts.ReplBufferTxns < 0:
		return 0
	default:
		return DefaultReplBufferTxns
	}
}

// ringPushLocked records a freshly durable batch in the ship ring and
// wakes any long-polling followers. The ring deliberately survives log
// truncation (snapshots): a follower slightly behind a compaction can
// still be served frames instead of being forced into a full bootstrap.
func (s *Store) ringPushLocked(txn uint64, data []byte) {
	limit := s.replBufferTxns()
	if limit > 0 {
		s.ring = append(s.ring, shippedTxn{txn: txn, data: data})
		if excess := len(s.ring) - limit; excess > 0 {
			s.ring = append([]shippedTxn(nil), s.ring[excess:]...)
		}
	}
	close(s.replWake)
	s.replWake = make(chan struct{})
}

// FramesSince returns the encoded batches of up to maxTxns committed
// transactions with id > after, concatenated in log order (decodable
// with DecodeTxnFrames), plus the store's last txn id. ok=false means
// the ship ring no longer reaches back to after+1 — the follower must
// bootstrap from a snapshot. A follower at or ahead of last gets an
// empty ok=true (ahead is the caller's anomaly to surface). The ring is
// rebuilt empty at Open, so a follower resuming across a primary
// restart re-bootstraps by design.
func (s *Store) FramesSince(after uint64, maxTxns int) (data []byte, n int, last uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, n, last, ok, _ = s.framesSinceLocked(after, maxTxns)
	return data, n, last, ok
}

func (s *Store) framesSinceLocked(after uint64, maxTxns int) (data []byte, n int, last uint64, ok bool, wake <-chan struct{}) {
	last = s.nextTxn
	wake = s.replWake
	if after >= last {
		return nil, 0, last, true, wake
	}
	if len(s.ring) == 0 || s.ring[0].txn > after+1 {
		return nil, 0, last, false, wake
	}
	if maxTxns <= 0 {
		maxTxns = DefaultReplBufferTxns
	}
	for _, e := range s.ring {
		if e.txn <= after {
			continue
		}
		if n >= maxTxns {
			break
		}
		data = append(data, e.data...)
		n++
	}
	return data, n, last, true, wake
}

// WaitFrames is FramesSince with a long-poll: when the follower is
// caught up it blocks until a new transaction commits, the timeout
// elapses, or ctx is done (the latter two return empty, ok=true). A
// bootstrap-needed condition returns immediately.
func (s *Store) WaitFrames(ctx context.Context, after uint64, timeout time.Duration, maxTxns int) (data []byte, n int, last uint64, ok bool) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		s.mu.Lock()
		data, n, last, ok, wake := s.framesSinceLocked(after, maxTxns)
		s.mu.Unlock()
		if !ok || n > 0 {
			return data, n, last, ok
		}
		select {
		case <-wake:
		case <-deadline.C:
			return nil, 0, last, true
		case <-ctx.Done():
			return nil, 0, last, true
		}
	}
}

// Close snapshots (folding the log away so the next Open starts clean)
// and releases the log file. Further appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	var err error
	if s.logSize > 0 {
		err = s.snapshotLocked()
	}
	s.closed = true
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	return err
}
