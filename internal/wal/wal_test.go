package wal

import (
	"encoding/binary"
	"testing"

	"repro/internal/rdf"
)

// mustOps parses N-Triples statements into change ops; a leading '-'
// marks a deletion.
func mustOps(t *testing.T, lines ...string) []rdf.ChangeOp {
	t.Helper()
	ops := make([]rdf.ChangeOp, 0, len(lines))
	for _, l := range lines {
		add := true
		if l[0] == '-' {
			add = false
			l = l[1:]
		}
		tr, err := rdf.ParseTriple(l)
		if err != nil {
			t.Fatalf("ParseTriple(%q): %v", l, err)
		}
		ops = append(ops, rdf.ChangeOp{Add: add, T: tr})
	}
	return ops
}

// applyOps replays ops onto a fresh clone of g.
func applyOps(g *rdf.Graph, ops []rdf.ChangeOp) *rdf.Graph {
	out := g.Clone()
	for _, op := range ops {
		if op.Add {
			out.Add(op.T)
		} else {
			out.Remove(op.T)
		}
	}
	return out
}

func TestFrameRoundTrip(t *testing.T) {
	want := []Record{
		{Kind: KindBegin, Txn: 1},
		{Kind: KindAdd, Txn: 1, Triple: `<urn:s> <urn:p> "v" .`},
		{Kind: KindDel, Txn: 1, Triple: `<urn:s> <urn:p> <urn:o> .`},
		{Kind: KindCommit, Txn: 1},
		{Kind: KindBegin, Txn: 1 << 40}, // multi-byte uvarint txn id
		{Kind: KindAbort, Txn: 1 << 40},
	}
	var buf []byte
	for _, r := range want {
		buf = appendFrame(buf, r)
	}
	var got []Record
	clean, torn, err := scanFrames(buf, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil || torn {
		t.Fatalf("scanFrames: err=%v torn=%v", err, torn)
	}
	if clean != int64(len(buf)) {
		t.Fatalf("clean offset %d, want %d", clean, len(buf))
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestEncodeTxnFrames(t *testing.T) {
	ops := mustOps(t,
		`<urn:a> <urn:p> <urn:b> .`,
		`-<urn:c> <urn:p> <urn:d> .`,
	)
	buf := EncodeTxn(7, ops)
	var got []Record
	if _, torn, err := scanFrames(buf, func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil || torn {
		t.Fatalf("scanFrames: err=%v torn=%v", err, torn)
	}
	kinds := []Kind{KindBegin, KindAdd, KindDel, KindCommit}
	if len(got) != len(kinds) {
		t.Fatalf("got %d records, want %d", len(got), len(kinds))
	}
	for i, k := range kinds {
		if got[i].Kind != k || got[i].Txn != 7 {
			t.Errorf("record %d: got %+v, want kind %v txn 7", i, got[i], k)
		}
	}
	if got[1].Triple != ops[0].T.String() || got[2].Triple != ops[1].T.String() {
		t.Errorf("triples did not round-trip: %+v", got[1:3])
	}
}

func TestScanStopsAtCRCCorruption(t *testing.T) {
	var buf []byte
	buf = appendFrame(buf, Record{Kind: KindBegin, Txn: 1})
	firstLen := len(buf)
	buf = appendFrame(buf, Record{Kind: KindAdd, Txn: 1, Triple: `<urn:s> <urn:p> <urn:o> .`})
	// Flip a payload byte of the second frame: its CRC no longer matches.
	buf[firstLen+frameOverhead+2] ^= 0xff

	n := 0
	clean, torn, err := scanFrames(buf, func(Record) error { n++; return nil })
	if err != nil {
		t.Fatalf("scanFrames: %v", err)
	}
	if !torn || n != 1 || clean != int64(firstLen) {
		t.Fatalf("got torn=%v records=%d clean=%d, want torn after 1 record at %d", torn, n, clean, firstLen)
	}
}

func TestScanStopsAtImplausibleLength(t *testing.T) {
	var buf []byte
	buf = appendFrame(buf, Record{Kind: KindBegin, Txn: 1})
	good := len(buf)
	// A frame header claiming a payload far larger than the file.
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(maxPayload+1))
	buf = append(buf, hdr[:]...)
	buf = append(buf, make([]byte, 32)...)

	clean, torn, _ := scanFrames(buf, nil)
	if !torn || clean != int64(good) {
		t.Fatalf("got torn=%v clean=%d, want torn at %d", torn, clean, good)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindBegin: "begin", KindAdd: "add", KindDel: "del",
		KindCommit: "commit", KindAbort: "abort", Kind('?'): "unknown(63)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%q).String() = %q, want %q", byte(k), got, want)
		}
	}
}
