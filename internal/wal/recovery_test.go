package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// frameBoundaries walks the framing independently of scanFrames (so the
// test cross-checks the format spec, not the implementation) and returns
// every offset that ends a complete frame, starting with 0.
func frameBoundaries(t *testing.T, data []byte) []int {
	t.Helper()
	bounds := []int{0}
	off := 0
	for off < len(data) {
		if len(data)-off < frameOverhead {
			t.Fatalf("short frame header at %d", off)
		}
		payloadLen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		off += frameOverhead + payloadLen
		if off > len(data) {
			t.Fatalf("frame at %d overruns data", bounds[len(bounds)-1])
		}
		bounds = append(bounds, off)
	}
	return bounds
}

// TestRecoveryTornAtEveryByteOffset is the satellite torn-tail sweep:
// the log is truncated at every byte offset of the final transaction and
// recovered. Recovery must never fail or panic, must apply exactly the
// transactions whose commit record survived intact, and must never
// resurrect the truncated (uncommitted) transaction.
func TestRecoveryTornAtEveryByteOffset(t *testing.T) {
	ops1 := mustOps(t,
		`<urn:a> <urn:p> <urn:b> .`,
		`<urn:c> <urn:p> <urn:d> .`,
	)
	ops2 := mustOps(t,
		`-<urn:c> <urn:p> <urn:d> .`,
		`<urn:e> <urn:p> "second txn" .`,
	)
	batch1 := EncodeTxn(1, ops1)
	full := append(append([]byte(nil), batch1...), EncodeTxn(2, ops2)...)

	g0 := rdf.NewGraph()
	g1 := applyOps(g0, ops1)
	g2 := applyOps(g1, ops2)
	bounds := frameBoundaries(t, full)
	onBoundary := map[int]bool{}
	for _, b := range bounds {
		onBoundary[b] = true
	}

	dir := t.TempDir()
	logPath := filepath.Join(dir, LogFile)
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(logPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		g, stats, err := Recover(dir)
		if err != nil {
			t.Fatalf("cut %d: Recover: %v", cut, err)
		}
		want := g0
		switch {
		case cut == len(full):
			want = g2
		case cut >= len(batch1):
			want = g1
		}
		if !rdf.Equal(g, want) {
			t.Fatalf("cut %d: recovered wrong graph:\n%s", cut, rdf.MarshalNTriples(g))
		}
		if cut < len(full) && g.Has(ops2[1].T) {
			t.Fatalf("cut %d: resurrected uncommitted txn 2", cut)
		}
		if stats.TornTail == onBoundary[cut] {
			t.Fatalf("cut %d: TornTail=%v, boundary=%v", cut, stats.TornTail, onBoundary[cut])
		}
		// The clean offset must be the last boundary at or before the cut.
		lastBound := 0
		for _, b := range bounds {
			if b <= cut {
				lastBound = b
			}
		}
		if stats.TornTail && stats.TornAtOffset != int64(lastBound) {
			t.Fatalf("cut %d: TornAtOffset=%d, want %d", cut, stats.TornAtOffset, lastBound)
		}
	}
}

// TestOpenTruncatesTornTailAndAppends verifies the read-write path: Open
// trims the torn bytes so the next append lands on a clean boundary, and
// the appended transaction survives a further recovery.
func TestOpenTruncatesTornTailAndAppends(t *testing.T) {
	ops1 := mustOps(t, `<urn:a> <urn:p> <urn:b> .`)
	ops2 := mustOps(t, `<urn:c> <urn:p> <urn:d> .`)
	batch1 := EncodeTxn(1, ops1)
	full := append(append([]byte(nil), batch1...), EncodeTxn(2, ops2)...)

	dir := t.TempDir()
	logPath := filepath.Join(dir, LogFile)
	// Cut mid-way through the second transaction's bytes.
	cut := len(batch1) + (len(full)-len(batch1))/2
	if err := os.WriteFile(logPath, full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	s, err := Open(dir, Options{SnapshotEvery: -1, Metrics: reg})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !s.Stats().TornTail {
		t.Fatalf("stats = %v, want torn tail", s.Stats())
	}
	// Open trims to the last complete frame boundary — which may keep
	// complete frames of the uncommitted txn 2; they are harmless because
	// replay only applies transactions with a commit record.
	fi, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != s.Stats().TornAtOffset || fi.Size() >= int64(cut) || fi.Size() < int64(len(batch1)) {
		t.Fatalf("log size %d after Open, want TornAtOffset %d in [%d,%d)",
			fi.Size(), s.Stats().TornAtOffset, len(batch1), cut)
	}
	// Txn 3 (ids never reuse the torn txn 2) lands on the clean boundary.
	ops3 := mustOps(t, `<urn:e> <urn:p> <urn:f> .`)
	s.Graph().Add(ops3[0].T)
	if err := s.AppendTxn(ops3); err != nil {
		t.Fatalf("AppendTxn after torn-tail truncation: %v", err)
	}
	g, stats := reopen(t, dir)
	if stats.TornTail || stats.CommittedTxns != 2 {
		t.Fatalf("stats after re-append = %v", stats)
	}
	want := applyOps(applyOps(rdf.NewGraph(), ops1), ops3)
	if !rdf.Equal(g, want) {
		t.Fatalf("recovered graph:\n%s", rdf.MarshalNTriples(g))
	}
}

// TestRecoveryDiscardsUncommittedAndHonorsAbort covers log shapes the
// in-process writer never produces but the format allows: a transaction
// with no commit record and an explicit abort record.
func TestRecoveryDiscardsUncommittedAndHonorsAbort(t *testing.T) {
	var buf []byte
	// txn 1: committed.
	buf = append(buf, EncodeTxn(1, mustOps(t, `<urn:a> <urn:p> <urn:b> .`))...)
	// txn 2: begin + op, never committed.
	buf = appendFrame(buf, Record{Kind: KindBegin, Txn: 2})
	buf = appendFrame(buf, Record{Kind: KindAdd, Txn: 2, Triple: `<urn:x> <urn:p> <urn:y> .`})
	// txn 3: explicitly aborted.
	buf = appendFrame(buf, Record{Kind: KindBegin, Txn: 3})
	buf = appendFrame(buf, Record{Kind: KindAdd, Txn: 3, Triple: `<urn:q> <urn:p> <urn:r> .`})
	buf = appendFrame(buf, Record{Kind: KindAbort, Txn: 3})

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, LogFile), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	g, stats, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if g.Len() != 1 || stats.CommittedTxns != 1 || stats.DiscardedTxns != 2 {
		t.Fatalf("len=%d stats=%v", g.Len(), stats)
	}
}
