package wal

// Kill-and-replay tests: each WAL failpoint is armed in turn and the
// store is "crashed" (error faults fail the append cleanly; panic faults
// abandon the store mid-operation, like kill -9 between two syscalls).
// Recovery from the directory must then land on a deterministic state:
//
//	error at wal.append / wal.fsync → commit fails, txn never durable
//	panic at wal.append             → crash before the write, txn absent
//	panic at wal.fsync              → crash after the write, txn durable
//	panic at wal.snapshot           → old snapshot + intact log win
//	error at wal.recover            → Open reports the fault
//
// The final test drives the full stack (wbmgr transaction → commit hook
// → WAL) and checks the recovered graph is rdf.Equal to the pre-crash
// committed state — the acceptance bar of the durable-service issue.

import (
	"context"
	"errors"
	"testing"

	"repro/internal/blackboard"
	"repro/internal/chaos"
	"repro/internal/rdf"
	"repro/internal/wbmgr"
)

// arm enables one rule and guarantees a clean chaos state afterwards.
func arm(t *testing.T, site chaos.Site, kind chaos.FaultKind) {
	t.Helper()
	chaos.Enable(site, chaos.Rule{Kind: kind, Every: 1, Limit: 1})
	t.Cleanup(chaos.Reset)
}

// crash runs fn expecting an injected panic, and reports whether one
// arrived (the test's stand-in for the process dying).
func crash(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected an injected panic, got none")
		}
		if _, ok := r.(*chaos.Fault); !ok {
			panic(r)
		}
	}()
	fn()
}

// seedTxn appends one committed transaction to the store and mirrors it
// on the live graph, returning the ops.
func seedTxn(t *testing.T, s *Store, lines ...string) []rdf.ChangeOp {
	t.Helper()
	ops := mustOps(t, lines...)
	for _, op := range ops {
		if op.Add {
			s.Graph().Add(op.T)
		} else {
			s.Graph().Remove(op.T)
		}
	}
	if err := s.AppendTxn(ops); err != nil {
		t.Fatalf("AppendTxn: %v", err)
	}
	return ops
}

func TestChaosAppendErrorFailsCommitCleanly(t *testing.T) {
	s := newStore(t, Options{})
	seedTxn(t, s, `<urn:a> <urn:p> <urn:b> .`)
	committed := s.Graph().Clone()

	arm(t, SiteAppend, chaos.FaultError)
	err := s.AppendTxn(mustOps(t, `<urn:x> <urn:p> <urn:y> .`))
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("AppendTxn = %v, want injected fault", err)
	}
	chaos.Reset()

	// The failed transaction must not be durable, and the store must
	// still accept appends on a clean boundary.
	g, stats := reopen(t, s.Dir())
	if stats.TornTail || !rdf.Equal(g, committed) {
		t.Fatalf("after append fault: stats=%v", stats)
	}
	seedTxn(t, s, `<urn:x> <urn:p> <urn:y> .`)
	g, _ = reopen(t, s.Dir())
	if !rdf.Equal(g, s.Graph()) {
		t.Fatal("store unusable after append fault")
	}
}

func TestChaosFsyncErrorRemovesUndurableBytes(t *testing.T) {
	s := newStore(t, Options{})
	seedTxn(t, s, `<urn:a> <urn:p> <urn:b> .`)
	committed := s.Graph().Clone()
	sizeBefore := s.LogSize()

	arm(t, SiteFsync, chaos.FaultError)
	err := s.AppendTxn(mustOps(t, `<urn:x> <urn:p> <urn:y> .`))
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("AppendTxn = %v, want injected fault", err)
	}
	chaos.Reset()

	// The write happened before the fsync fault; the store must have
	// truncated it back, or the rolled-back transaction would resurrect.
	if s.LogSize() != sizeBefore {
		t.Fatalf("log grew across a failed fsync: %d → %d", sizeBefore, s.LogSize())
	}
	g, stats := reopen(t, s.Dir())
	if stats.CommittedTxns != 1 || !rdf.Equal(g, committed) {
		t.Fatalf("failed-fsync txn resurrected: stats=%v", stats)
	}
}

func TestChaosAppendPanicCrashLosesTxn(t *testing.T) {
	s := newStore(t, Options{})
	seedTxn(t, s, `<urn:a> <urn:p> <urn:b> .`)
	committed := s.Graph().Clone()

	arm(t, SiteAppend, chaos.FaultPanic)
	crash(t, func() { s.AppendTxn(mustOps(t, `<urn:x> <urn:p> <urn:y> .`)) })
	chaos.Reset()

	// Crash before the write: the transaction must be absent.
	g, stats := reopen(t, s.Dir())
	if stats.CommittedTxns != 1 || !rdf.Equal(g, committed) {
		t.Fatalf("pre-write crash leaked a txn: stats=%v", stats)
	}
}

func TestChaosFsyncPanicCrashKeepsWrittenTxn(t *testing.T) {
	s := newStore(t, Options{})
	ops1 := seedTxn(t, s, `<urn:a> <urn:p> <urn:b> .`)
	ops2 := mustOps(t, `<urn:x> <urn:p> <urn:y> .`)

	arm(t, SiteFsync, chaos.FaultPanic)
	crash(t, func() { s.AppendTxn(ops2) })
	chaos.Reset()

	// Crash after the write reached the file: recovery replays the fully
	// framed transaction — equivalent to a crash between disk write and
	// commit acknowledgment, where the WAL's contract is "committed".
	g, stats := reopen(t, s.Dir())
	want := applyOps(applyOps(rdf.NewGraph(), ops1), ops2)
	if stats.CommittedTxns != 2 || !rdf.Equal(g, want) {
		t.Fatalf("post-write crash lost the txn: stats=%v\n%s", stats, rdf.MarshalNTriples(g))
	}
}

func TestChaosSnapshotPanicLeavesRecoverableDir(t *testing.T) {
	s := newStore(t, Options{})
	seedTxn(t, s, `<urn:a> <urn:p> <urn:b> .`)
	seedTxn(t, s, `<urn:c> <urn:p> <urn:d> .`)
	committed := s.Graph().Clone()

	arm(t, SiteSnapshot, chaos.FaultPanic)
	crash(t, func() { s.SnapshotNow() })
	chaos.Reset()

	// The crash hit after the temp file was written but before the
	// rename: the (absent) old snapshot plus the intact log still hold
	// everything, and the leftover temp file is swept away.
	g, stats := reopen(t, s.Dir())
	if stats.CommittedTxns != 2 || !rdf.Equal(g, committed) {
		t.Fatalf("mid-snapshot crash lost state: stats=%v", stats)
	}
}

func TestChaosSnapshotErrorDoesNotFailAppend(t *testing.T) {
	// Auto-snapshot rides on the back of a commit that is already
	// durable; a snapshot fault must not surface as a commit failure.
	s := newStore(t, Options{SnapshotEvery: 1})
	arm(t, SiteSnapshot, chaos.FaultError)
	seedTxn(t, s, `<urn:a> <urn:p> <urn:b> .`) // fails inside the test on a non-nil AppendTxn
	if s.LogSize() == 0 {
		t.Fatal("log truncated despite the failed snapshot")
	}
	chaos.Reset()
	// The retry at the next commit folds both transactions away.
	seedTxn(t, s, `<urn:c> <urn:p> <urn:d> .`)
	if s.LogSize() != 0 {
		t.Fatalf("snapshot retry did not fire: log %d bytes", s.LogSize())
	}
	g, stats := reopen(t, s.Dir())
	if stats.SnapshotTriples != 2 || !rdf.Equal(g, s.Graph()) {
		t.Fatalf("stats = %v", stats)
	}
}

func TestChaosRecoverFaultFailsOpen(t *testing.T) {
	dir := t.TempDir()
	arm(t, SiteRecover, chaos.FaultError)
	if _, err := Open(dir, Options{SnapshotEvery: -1}); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Open = %v, want injected fault", err)
	}
	chaos.Reset()
	if _, err := Open(dir, Options{SnapshotEvery: -1}); err != nil {
		t.Fatalf("Open after fault cleared: %v", err)
	}
}

// TestKillAndReplayThroughManager is the end-to-end durability proof:
// transactions flow wbmgr → commit hook → WAL, the process "dies" with a
// panic between the log write and the commit acknowledgment, and a fresh
// Open recovers a graph bit-identical (rdf.Equal) to the committed
// pre-crash state.
func TestKillAndReplayThroughManager(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	bb := blackboard.NewFromGraph(s.Graph())
	m := wbmgr.NewWith(bb)
	m.SetCommitHook(func(_ context.Context, _ string, ops []rdf.ChangeOp) error {
		return s.AppendTxn(ops)
	})

	commit := func(lines ...string) {
		t.Helper()
		txn, err := m.Begin("loader")
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range mustOps(t, lines...) {
			if op.Add {
				bb.Graph().Add(op.T)
			} else {
				bb.Graph().Remove(op.T)
			}
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	commit(`<urn:s1> <urn:p> "one" .`, `<urn:s2> <urn:p> "two" .`)
	commit(`-<urn:s2> <urn:p> "two" .`, `<urn:s3> <urn:p> "three" .`)
	// Capture the state including the transaction that will be cut down
	// mid-commit: its bytes reach the log before the crash point, so the
	// WAL contract says it survives.
	txn, err := m.Begin("loader")
	if err != nil {
		t.Fatal(err)
	}
	last := mustOps(t, `<urn:s4> <urn:p> "four" .`)
	bb.Graph().Add(last[0].T)
	wantRecovered := bb.Graph().Clone()

	arm(t, SiteFsync, chaos.FaultPanic)
	crash(t, func() { txn.Commit() })
	chaos.Reset()

	// In-process, the manager rolled the transaction back (the commit
	// never acknowledged)…
	if bb.Graph().Has(last[0].T) {
		t.Fatal("manager did not roll back the crashed commit")
	}
	// …but on disk it is durable, exactly like a crash after the write
	// syscall: the recovered graph includes it.
	s2, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	defer s2.Close()
	if !rdf.Equal(s2.Graph(), wantRecovered) {
		t.Fatalf("recovered graph differs from pre-crash committed state:\n%s\nwant:\n%s",
			rdf.MarshalNTriples(s2.Graph()), rdf.MarshalNTriples(wantRecovered))
	}
	if st := s2.Stats(); st.CommittedTxns != 3 || st.TornTail {
		t.Fatalf("recovery stats = %v", st)
	}
}
