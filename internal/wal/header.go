package wal

// The WAL header is a tiny sidecar file (wal.header) carrying
// replication metadata that must survive restarts, snapshots, and log
// truncations: the fencing epoch and the sealed flag. The epoch is a
// monotonic counter bumped by failover promotion — every replication
// request echoes it, and a node that sees a higher epoch than its own
// knows a newer primary exists and must stop accepting writes. Sealed
// records exactly that deposition durably, so a kill -9'd deposed
// primary cannot come back as a writable primary and split the brain.
//
// The header also carries the committed-transaction high-water mark.
// Snapshots truncate the log — the only other place txn ids live — so
// without it a restart would reset the id space to zero, silently
// breaking every follower cursor (a follower "at" txn N of a reborn
// primary that restarted counting would never receive anything again).
// Every snapshot rewrites the header with the current mark; Open takes
// the max of the header's mark and the log's highest id.
//
// The file is human-readable ("ibwal v1 epoch N sealed 0|1 txn T\n")
// and is replaced atomically (tmp + fsync + rename + dir fsync), so it
// is either the old header or the new one — never torn. A missing file
// is a legitimate pre-replication store (epoch 0, unsealed); anything
// unparsable is corruption and fails Open loudly rather than silently
// resetting the fence.

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// HeaderFile is the header's file name inside a store directory.
const HeaderFile = "wal.header"

const headerTmp = "wal.header.tmp"

// Header is the durable replication metadata of one store.
type Header struct {
	// Epoch is the fencing epoch: bumped exactly once per promotion,
	// never decreased.
	Epoch uint64
	// Sealed marks a deposed primary: a newer epoch was observed, so
	// this store must refuse writes until it rejoins as a replica.
	Sealed bool
	// LastTxn is the committed-transaction high-water mark as of the
	// last header write; it keeps the txn id space monotonic across
	// snapshots (which truncate the log, the ids' only other home).
	LastTxn uint64
}

// ReadHeader reads dir's WAL header. A missing file is the zero header
// (a store created before replication existed, or a fresh directory); a
// present but unparsable file is an error — a corrupt fence must stop
// the node, not silently reset the epoch.
func ReadHeader(dir string) (Header, error) {
	data, err := os.ReadFile(filepath.Join(dir, HeaderFile))
	if os.IsNotExist(err) {
		return Header{}, nil
	}
	if err != nil {
		return Header{}, fmt.Errorf("wal: header: %w", err)
	}
	return parseHeader(string(data))
}

// parseHeader decodes the "ibwal v1 epoch N sealed 0|1 txn T" line.
func parseHeader(s string) (Header, error) {
	f := strings.Fields(strings.TrimSpace(s))
	if len(f) != 8 || f[0] != "ibwal" || f[1] != "v1" || f[2] != "epoch" || f[4] != "sealed" || f[6] != "txn" {
		return Header{}, fmt.Errorf("wal: corrupt header %q", strings.TrimSpace(s))
	}
	epoch, err := strconv.ParseUint(f[3], 10, 64)
	if err != nil {
		return Header{}, fmt.Errorf("wal: corrupt header epoch %q", f[3])
	}
	var sealed bool
	switch f[5] {
	case "0":
	case "1":
		sealed = true
	default:
		return Header{}, fmt.Errorf("wal: corrupt header sealed flag %q", f[5])
	}
	txn, err := strconv.ParseUint(f[7], 10, 64)
	if err != nil {
		return Header{}, fmt.Errorf("wal: corrupt header txn %q", f[7])
	}
	return Header{Epoch: epoch, Sealed: sealed, LastTxn: txn}, nil
}

// writeHeader replaces dir's header atomically and durably.
func writeHeader(dir string, h Header) error {
	sealed := "0"
	if h.Sealed {
		sealed = "1"
	}
	line := fmt.Sprintf("ibwal v1 epoch %d sealed %s txn %d\n", h.Epoch, sealed, h.LastTxn)
	tmp := filepath.Join(dir, headerTmp)
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: header: %w", err)
	}
	if _, err := f.WriteString(line); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: header: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: header: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, HeaderFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: header: %w", err)
	}
	syncDir(dir)
	return nil
}

// Epoch returns the store's current fencing epoch.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hdr.Epoch
}

// Sealed reports whether the store was fenced by a newer epoch.
func (s *Store) Sealed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hdr.Sealed
}

// SetEpoch durably advances the fencing epoch (and sets or clears the
// sealed flag). The epoch is monotonic: moving it backwards is refused
// with ErrEpochBehind — a deposed primary must never regain a fresher
// fence than the node that deposed it.
func (s *Store) SetEpoch(epoch uint64, sealed bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("wal: store closed")
	}
	if epoch < s.hdr.Epoch {
		return fmt.Errorf("wal: epoch %d behind current %d: %w", epoch, s.hdr.Epoch, ErrEpochBehind)
	}
	h := Header{Epoch: epoch, Sealed: sealed, LastTxn: s.nextTxn}
	if h == s.hdr {
		return nil
	}
	if err := writeHeader(s.dir, h); err != nil {
		return err
	}
	s.hdr = h
	return nil
}
