package core

import (
	"fmt"

	"repro/internal/blackboard"
	"repro/internal/harmony"
	"repro/internal/instance"
	"repro/internal/mapgen"
	"repro/internal/model"
	"repro/internal/wbmgr"
)

// IntegrationSession drives one end-to-end schema integration through
// the workbench: the §5.3 case-study choreography as a reusable
// orchestration. The matcher (Harmony) and the mapper/codegen tools
// share state only through the blackboard and events, exactly as the
// paper prescribes.
type IntegrationSession struct {
	Manager *wbmgr.Manager
	// MappingID names the session's mapping in the IB library.
	MappingID string

	engine  *harmony.Engine
	mapper  *mapgen.MapperTool
	codegen *mapgen.CodeGenTool

	sourceName, targetName string
	sourceEntity           string
	targetEntity           string
}

// NewIntegrationSession stores both schemata on a fresh workbench
// (task 1 and task 2: obtain source and target), creates the mapping and
// registers the mapper and code generator tools.
func NewIntegrationSession(mappingID string, source, target *model.Schema, sourceEntityID, targetEntityID string) (*IntegrationSession, error) {
	m := wbmgr.New()
	m.EnableEventLog = true

	// Loaders run inside a transaction and announce the schema graphs.
	txn, err := m.Begin("loader")
	if err != nil {
		return nil, err
	}
	if _, err := txn.Blackboard().PutSchema(source); err != nil {
		_ = txn.Abort()
		return nil, err
	}
	txn.Emit(wbmgr.EventSchemaGraph, source.Name)
	if _, err := txn.Blackboard().PutSchema(target); err != nil {
		_ = txn.Abort()
		return nil, err
	}
	txn.Emit(wbmgr.EventSchemaGraph, target.Name)
	if err := txn.Commit(); err != nil {
		return nil, err
	}

	if _, err := m.Blackboard().NewMapping(mappingID, source.Name, target.Name); err != nil {
		return nil, err
	}

	s := &IntegrationSession{
		Manager:      m,
		MappingID:    mappingID,
		sourceName:   source.Name,
		targetName:   target.Name,
		sourceEntity: sourceEntityID,
		targetEntity: targetEntityID,
	}
	s.mapper = mapgen.NewMapperTool(mappingID)
	s.codegen = mapgen.NewCodeGenTool(mappingID, sourceEntityID, targetEntityID)
	if err := m.Register(s.mapper); err != nil {
		return nil, err
	}
	if err := m.Register(s.codegen); err != nil {
		return nil, err
	}
	return s, nil
}

// Engine returns (building on first use) the Harmony engine over the
// stored schemata.
func (s *IntegrationSession) Engine() (*harmony.Engine, error) {
	if s.engine != nil {
		return s.engine, nil
	}
	src, err := s.Manager.Blackboard().GetSchema(s.sourceName)
	if err != nil {
		return nil, err
	}
	tgt, err := s.Manager.Blackboard().GetSchema(s.targetName)
	if err != nil {
		return nil, err
	}
	s.engine = harmony.NewEngine(src, tgt, harmony.Options{Flooding: true})
	return s.engine, nil
}

// Match runs the Harmony engine and publishes machine-suggested cells to
// the blackboard in one transaction (task 3). Links below the threshold
// are not published.
func (s *IntegrationSession) Match(threshold float64) (int, error) {
	e, err := s.Engine()
	if err != nil {
		return 0, err
	}
	e.Run()
	links := e.Matrix().Above(threshold)

	txn, err := s.Manager.Begin("harmony")
	if err != nil {
		return 0, err
	}
	mp, err := txn.Blackboard().GetMapping(s.MappingID)
	if err != nil {
		_ = txn.Abort()
		return 0, err
	}
	for _, l := range links {
		if err := mp.SetCell(l.Source.ID, l.Target.ID, l.Confidence, false, "harmony"); err != nil {
			_ = txn.Abort()
			return 0, err
		}
		txn.Emit(wbmgr.EventMappingCell, fmt.Sprintf("%s|%s|%s", s.MappingID, l.Source.ID, l.Target.ID))
	}
	return len(links), txn.Commit()
}

// Accept records an engineer decision, pinning the engine and publishing
// the user-defined cell (confidence exactly +1, per §5.1.2).
func (s *IntegrationSession) Accept(srcID, tgtID string) error {
	return s.decide(srcID, tgtID, true)
}

// Reject records a rejection (confidence exactly -1).
func (s *IntegrationSession) Reject(srcID, tgtID string) error {
	return s.decide(srcID, tgtID, false)
}

func (s *IntegrationSession) decide(srcID, tgtID string, accepted bool) error {
	e, err := s.Engine()
	if err != nil {
		return err
	}
	if accepted {
		if err := e.Accept(srcID, tgtID); err != nil {
			return err
		}
	} else {
		if err := e.Reject(srcID, tgtID); err != nil {
			return err
		}
	}
	conf := -1.0
	if accepted {
		conf = 1.0
	}
	txn, err := s.Manager.Begin("engineer")
	if err != nil {
		return err
	}
	mp, err := txn.Blackboard().GetMapping(s.MappingID)
	if err != nil {
		_ = txn.Abort()
		return err
	}
	if err := mp.SetCell(srcID, tgtID, conf, true, "engineer"); err != nil {
		_ = txn.Abort()
		return err
	}
	txn.Emit(wbmgr.EventMappingCell, fmt.Sprintf("%s|%s|%s", s.MappingID, srcID, tgtID))
	return txn.Commit()
}

// WriteCode records a column transformation via the mapper tool (tasks
// 4–7), which fires the mapping-vector event and thereby regenerates the
// assembled mapping (task 8).
func (s *IntegrationSession) WriteCode(sourceRowID, variable, targetColID, code string) error {
	return s.Manager.Invoke("mapper", map[string]string{
		"source":   sourceRowID,
		"variable": variable,
		"target":   targetColID,
		"code":     code,
	})
}

// Program returns the assembled executable mapping (nil before any code
// was written).
func (s *IntegrationSession) Program() *mapgen.Program { return s.codegen.Program() }

// GeneratedCode returns the whole-matrix code annotation from the IB.
func (s *IntegrationSession) GeneratedCode() (string, error) {
	mp, err := s.Manager.Blackboard().GetMapping(s.MappingID)
	if err != nil {
		return "", err
	}
	return mp.Code(), nil
}

// Execute runs the assembled mapping over source instances and verifies
// the output against the target schema (task 9), returning the produced
// dataset and violations.
func (s *IntegrationSession) Execute(src *instance.Dataset) (*instance.Dataset, []instance.Violation, error) {
	prog := s.Program()
	if prog == nil {
		return nil, nil, fmt.Errorf("core: no program assembled; write column code first")
	}
	tgt, err := s.Manager.Blackboard().GetSchema(s.targetName)
	if err != nil {
		return nil, nil, err
	}
	return prog.Verify(src, tgt)
}

// IntegrateInstances applies tasks 10–11 to a produced dataset: link
// co-referent records, then clean domain violations.
func (s *IntegrationSession) IntegrateInstances(ds *instance.Dataset, link instance.LinkOptions) (*instance.Dataset, []instance.Violation, error) {
	tgt, err := s.Manager.Blackboard().GetSchema(s.targetName)
	if err != nil {
		return nil, nil, err
	}
	res := instance.Link(ds.Records, link)
	out := &instance.Dataset{SchemaName: ds.SchemaName, Records: res.Merged}
	viols := instance.Clean(tgt, out, instance.CleanOptions{DropViolations: true})
	return out, viols, nil
}

// Mapping opens the session's mapping handle.
func (s *IntegrationSession) Mapping() (*blackboard.Mapping, error) {
	return s.Manager.Blackboard().GetMapping(s.MappingID)
}
