package core

import (
	"fmt"
	"strings"

	"repro/internal/instance"
	"repro/internal/model"
	"repro/internal/wbmgr"
)

// RunCaseStudy executes the §5.3 pilot study end to end (experiment E5):
// two schemata loaded onto one blackboard, Harmony matching inside a
// transaction, engineer decisions, mapper-written transformations,
// automatic code generation driven by events, and a test run on sample
// documents. It returns the observable evidence the experiment asserts
// on.
type CaseStudyResult struct {
	// MachineCells is the number of machine-suggested correspondences.
	MachineCells int
	// Events counts delivered events by kind.
	Events map[wbmgr.EventKind]int
	// GeneratedCode is the assembled matrix-level code annotation.
	GeneratedCode string
	// Output is the produced target dataset.
	Output *instance.Dataset
	// Violations from target-schema verification.
	Violations []instance.Violation
	// MergedRecords after instance linking (tasks 10–11).
	MergedRecords int
}

// caseStudySchemata builds the Figure 2 pair used by the pilot study.
func caseStudySchemata() (*model.Schema, *model.Schema) {
	src := model.NewSchema("purchaseOrder", "xsd")
	po := src.AddElement(nil, "purchaseOrder", model.KindEntity, model.ContainsElement)
	po.Doc = "A purchase order submitted by a customer"
	st := src.AddElement(po, "shipTo", model.KindEntity, model.ContainsElement)
	st.Doc = "Shipping destination for the order"
	for _, spec := range []struct{ name, typ, doc string }{
		{"firstName", "string", "Given name of the recipient of the shipment"},
		{"lastName", "string", "Family name of the recipient of the shipment"},
		{"subtotal", "decimal", "Order subtotal before tax"},
	} {
		a := src.AddElement(st, spec.name, model.KindAttribute, model.ContainsAttribute)
		a.DataType = spec.typ
		a.Doc = spec.doc
	}
	tgt := model.NewSchema("shippingInfo", "xsd")
	si := tgt.AddElement(nil, "shippingInfo", model.KindEntity, model.ContainsElement)
	si.Doc = "Information about where an order ships"
	nm := tgt.AddElement(si, "name", model.KindAttribute, model.ContainsAttribute)
	nm.DataType = "string"
	nm.Doc = "Full name of the shipment recipient"
	nm.Required = true
	tot := tgt.AddElement(si, "total", model.KindAttribute, model.ContainsAttribute)
	tot.DataType = "decimal"
	tot.Doc = "Total price of the order including tax"
	return src, tgt
}

// RunCaseStudy performs the pilot study and returns its evidence.
func RunCaseStudy() (*CaseStudyResult, error) {
	src, tgt := caseStudySchemata()
	s, err := NewIntegrationSession("pilot", src, tgt,
		"purchaseOrder/purchaseOrder/shipTo", "shippingInfo/shippingInfo")
	if err != nil {
		return nil, err
	}
	res := &CaseStudyResult{Events: map[wbmgr.EventKind]int{}}

	if res.MachineCells, err = s.Match(0.2); err != nil {
		return nil, err
	}
	decisions := []struct {
		src, tgt string
		accept   bool
	}{
		{"purchaseOrder/purchaseOrder/shipTo", "shippingInfo/shippingInfo", true},
		{"purchaseOrder/purchaseOrder/shipTo/firstName", "shippingInfo/shippingInfo/name", true},
		{"purchaseOrder/purchaseOrder/shipTo/lastName", "shippingInfo/shippingInfo/name", true},
		{"purchaseOrder/purchaseOrder/shipTo/subtotal", "shippingInfo/shippingInfo/total", true},
		{"purchaseOrder/purchaseOrder/shipTo/firstName", "shippingInfo/shippingInfo/total", false},
	}
	for _, d := range decisions {
		if d.accept {
			err = s.Accept(d.src, d.tgt)
		} else {
			err = s.Reject(d.src, d.tgt)
		}
		if err != nil {
			return nil, err
		}
	}

	for col, code := range map[string]string{
		"shippingInfo/shippingInfo/name":  `concat($shipto/lastName, concat(", ", $shipto/firstName))`,
		"shippingInfo/shippingInfo/total": `data($shipto/subtotal) * 1.05`,
	} {
		if err := s.WriteCode("purchaseOrder/purchaseOrder/shipTo", "$shipto", col, code); err != nil {
			return nil, err
		}
	}
	if res.GeneratedCode, err = s.GeneratedCode(); err != nil {
		return nil, err
	}

	sample := &instance.Dataset{Records: []*instance.Record{
		mkPO("John", "Doe", "100"),
		mkPO("Jane", "Roe", "250"),
		mkPO("John", "Doe", "100"), // duplicate for the linking step
	}}
	if res.Output, res.Violations, err = s.Execute(sample); err != nil {
		return nil, err
	}
	merged, _, err := s.IntegrateInstances(res.Output, instance.LinkOptions{})
	if err != nil {
		return nil, err
	}
	res.MergedRecords = len(merged.Records)

	for _, e := range s.Manager.EventLog() {
		res.Events[e.Kind]++
	}
	return res, nil
}

func mkPO(first, last, subtotal string) *instance.Record {
	po := instance.NewRecord("purchaseOrder")
	po.AddChild(instance.NewRecord("shipTo").
		Set("firstName", first).Set("lastName", last).Set("subtotal", subtotal))
	return po
}

// Summary renders the case-study evidence for reports.
func (r *CaseStudyResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine-suggested cells: %d\n", r.MachineCells)
	fmt.Fprintf(&b, "events: schema-graph=%d mapping-cell=%d mapping-vector=%d mapping-matrix=%d\n",
		r.Events[wbmgr.EventSchemaGraph], r.Events[wbmgr.EventMappingCell],
		r.Events[wbmgr.EventMappingVector], r.Events[wbmgr.EventMappingMatrix])
	fmt.Fprintf(&b, "produced records: %d (violations: %d), after linking: %d\n",
		len(r.Output.Records), len(r.Violations), r.MergedRecords)
	return b.String()
}
