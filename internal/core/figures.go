package core

import (
	"fmt"
	"strings"

	"repro/internal/instance"
	"repro/internal/model"
	"repro/internal/xmlschema"
)

// Executable reproductions of the paper's Figures 2 and 3, shared by the
// examples, the benchmarks and cmd/benchreport.

const figure2SourceXSD = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="purchaseOrder">
    <xs:annotation><xs:documentation>A purchase order submitted by a customer</xs:documentation></xs:annotation>
    <xs:complexType>
      <xs:sequence>
        <xs:element name="shipTo">
          <xs:annotation><xs:documentation>Shipping destination for the order</xs:documentation></xs:annotation>
          <xs:complexType>
            <xs:sequence>
              <xs:element name="firstName" type="xs:string"/>
              <xs:element name="lastName" type="xs:string"/>
              <xs:element name="subtotal" type="xs:decimal"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

const figure2TargetXSD = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="shippingInfo">
    <xs:annotation><xs:documentation>Information about where an order ships</xs:documentation></xs:annotation>
    <xs:complexType>
      <xs:sequence>
        <xs:element name="name" type="xs:string"/>
        <xs:element name="total" type="xs:decimal"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

// Figure2Schemata loads the Figure 2 schema pair from their XSD sources.
func Figure2Schemata() (*model.Schema, *model.Schema, error) {
	src, err := xmlschema.Load("purchaseOrder", strings.NewReader(figure2SourceXSD))
	if err != nil {
		return nil, nil, err
	}
	tgt, err := xmlschema.Load("shippingInfo", strings.NewReader(figure2TargetXSD))
	if err != nil {
		return nil, nil, err
	}
	return src, tgt, nil
}

// Figure3Result is the evidence produced by RunFigure3.
type Figure3Result struct {
	// Cells is the number of annotated matrix cells (Figure 3 has 12).
	Cells int
	// GeneratedCode is the assembled matrix-level annotation.
	GeneratedCode string
	// Name and Total are the values produced by executing the figure's
	// code on the sample document (John/Doe/100).
	Name  string
	Total float64
}

// RunFigure3 recreates the Figure 3 mapping matrix on a blackboard —
// machine scores (+0.8/−0.4/−0.6) on the shipTo row, user decisions (±1)
// on the attribute rows, variable-name / is-complete / code annotations —
// assembles the mapping, and executes it on the figure's sample values.
func RunFigure3() (*Figure3Result, error) {
	src, tgt, err := Figure2Schemata()
	if err != nil {
		return nil, err
	}
	s, err := NewIntegrationSession("figure3", src, tgt,
		"purchaseOrder/purchaseOrder/shipTo", "shippingInfo/shippingInfo")
	if err != nil {
		return nil, err
	}
	mp, err := s.Mapping()
	if err != nil {
		return nil, err
	}

	rows := []string{
		"purchaseOrder/purchaseOrder/shipTo",
		"purchaseOrder/purchaseOrder/shipTo/firstName",
		"purchaseOrder/purchaseOrder/shipTo/lastName",
		"purchaseOrder/purchaseOrder/shipTo/subtotal",
	}
	cols := []string{
		"shippingInfo/shippingInfo",
		"shippingInfo/shippingInfo/name",
		"shippingInfo/shippingInfo/total",
	}

	// Machine row.
	mp.SetCell(rows[0], cols[0], +0.8, false, "harmony")
	mp.SetCell(rows[0], cols[1], -0.4, false, "harmony")
	mp.SetCell(rows[0], cols[2], -0.6, false, "harmony")
	// User rows.
	user := map[[2]int]float64{
		{1, 0}: -1, {1, 1}: +1, {1, 2}: -1,
		{2, 0}: -1, {2, 1}: +1, {2, 2}: -1,
		{3, 0}: -1, {3, 1}: -1, {3, 2}: +1,
	}
	for rc, conf := range user {
		mp.SetCell(rows[rc[0]], cols[rc[1]], conf, true, "engineer")
	}
	// Annotations.
	mp.SetRowVariable(rows[0], "$shipto")
	mp.SetRowVariable(rows[1], "$fName")
	mp.SetRowVariable(rows[2], "$lName")
	mp.SetRowVariable(rows[3], "$shipto/subtotal")
	for _, r := range rows[1:] {
		mp.SetRowComplete(r, true)
	}

	if err := s.WriteCode(rows[0], "$shipto", cols[1],
		`concat($shipto/lastName, concat(", ", $shipto/firstName))`); err != nil {
		return nil, err
	}
	if err := s.WriteCode(rows[0], "$shipto", cols[2],
		`data($shipto/subtotal) * 1.05`); err != nil {
		return nil, err
	}

	code, err := s.GeneratedCode()
	if err != nil {
		return nil, err
	}
	out, viols, err := s.Execute(&instance.Dataset{Records: []*instance.Record{
		mkPO("John", "Doe", "100"),
	}})
	if err != nil {
		return nil, err
	}
	if len(viols) != 0 {
		return nil, fmt.Errorf("core: figure 3 execution produced violations: %v", viols)
	}
	if len(out.Records) != 1 {
		return nil, fmt.Errorf("core: figure 3 produced %d records", len(out.Records))
	}
	total, _ := out.Records[0].Get("total").(float64)
	return &Figure3Result{
		Cells:         len(mp.Cells()),
		GeneratedCode: code,
		Name:          out.Records[0].GetString("name"),
		Total:         total,
	}, nil
}
