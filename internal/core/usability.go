package core

import (
	"sort"

	"repro/internal/harmony"
	"repro/internal/model"
	"repro/internal/registry"
)

// Usability model (experiment E10). The paper's stated next step (§6):
// "perform a usability analysis of the Harmony/AquaLogic integration
// suite. We will measure the extent to which software tools save time on
// each of the schema integration subtasks." We model engineer effort as
// operation counts: every link inspected, drawn, confirmed or rejected
// and every code snippet authored costs one operation.

// EffortRow reports one condition's operation counts per subtask.
type EffortRow struct {
	Condition string
	// OpsByTask counts engineer operations per task id.
	OpsByTask map[TaskID]int
	// Total is the sum.
	Total int
	// ResidualErrors counts true correspondences never established.
	ResidualErrors int
}

// SimulateManual models an engineer with no matcher: she inspects every
// (source, target) element pair once (grid scan) and draws the true
// links by hand, then writes one code snippet per mapped attribute.
func SimulateManual(src, tgt *model.Schema, gt *registry.GroundTruth) EffortRow {
	ops := map[TaskID]int{}
	nPairs := len(src.Elements()) * len(tgt.Elements())
	ops[TaskGenerateCorrespondences] = nPairs + len(gt.Pairs)  // inspect grid + draw each true link
	ops[TaskAttributeTransforms] = 3 * countAttrPairs(src, gt) // author each snippet: write, test, fix
	ops[TaskLogicalMappings] = 1                               // hand-assemble the final query
	return EffortRow{
		Condition: "manual",
		OpsByTask: ops,
		Total:     sum(ops),
	}
}

// SimulateHarmonyAssisted models the engineer with Harmony: she reviews
// the engine's max-confidence links (one op each: confirm or reject),
// then hand-draws whatever truth the engine missed, then writes code
// snippets by hand.
func SimulateHarmonyAssisted(src, tgt *model.Schema, gt *registry.GroundTruth) EffortRow {
	e := harmony.NewEngine(src, tgt, harmony.Options{Flooding: true})
	e.Run()
	shown := e.Links(harmony.View{MaxConfidence: true, LinkFilters: []harmony.LinkFilter{harmony.ConfidenceFilter(0.25)}})
	ops := map[TaskID]int{}
	covered := map[string]bool{}
	reviewOps := 0
	for _, l := range shown {
		reviewOps++
		if gt.Pairs[l.Source.ID] == l.Target.ID {
			covered[l.Source.ID] = true
		}
	}
	missed := 0
	for s := range gt.Pairs {
		if !covered[s] {
			missed++
		}
	}
	ops[TaskGenerateCorrespondences] = reviewOps + missed      // review + hand-draw missed
	ops[TaskAttributeTransforms] = 3 * countAttrPairs(src, gt) // still hand-authored
	ops[TaskLogicalMappings] = 1
	return EffortRow{
		Condition: "harmony-assisted",
		OpsByTask: ops,
		Total:     sum(ops),
	}
}

// SimulateWorkbench models the full suite: Harmony proposes, the mapper
// auto-proposes identity/type-conversion code for confirmed links (the
// engineer only reviews), and the code generator assembles the mapping
// automatically.
func SimulateWorkbench(src, tgt *model.Schema, gt *registry.GroundTruth) EffortRow {
	e := harmony.NewEngine(src, tgt, harmony.Options{Flooding: true})
	e.Run()
	shown := e.Links(harmony.View{MaxConfidence: true, LinkFilters: []harmony.LinkFilter{harmony.ConfidenceFilter(0.25)}})
	ops := map[TaskID]int{}
	covered := map[string]bool{}
	reviewOps := 0
	acceptedAttrs := 0
	for _, l := range shown {
		reviewOps++
		if gt.Pairs[l.Source.ID] == l.Target.ID {
			covered[l.Source.ID] = true
			if l.Source.Kind == model.KindAttribute {
				acceptedAttrs++
			}
		}
	}
	missed := 0
	for s := range gt.Pairs {
		if !covered[s] {
			missed++
		}
	}
	ops[TaskGenerateCorrespondences] = reviewOps + missed
	// Mapper proposals: the engineer reviews each proposed snippet (one
	// op) instead of authoring it (authoring ≈ 3 ops in this model:
	// write, test, fix).
	ops[TaskAttributeTransforms] = acceptedAttrs + 3*(countAttrPairs(src, gt)-acceptedAttrs)
	ops[TaskLogicalMappings] = 0 // codegen assembles automatically
	return EffortRow{
		Condition: "workbench",
		OpsByTask: ops,
		Total:     sum(ops),
	}
}

// countAttrPairs counts ground-truth pairs whose source is an attribute —
// each needs a transformation snippet.
func countAttrPairs(src *model.Schema, gt *registry.GroundTruth) int {
	n := 0
	for s := range gt.Pairs {
		if e := src.Element(s); e != nil && e.Kind == model.KindAttribute {
			n++
		}
	}
	return n
}

func sum(m map[TaskID]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

// RunUsability runs all three conditions over one pair.
func RunUsability(src, tgt *model.Schema, gt *registry.GroundTruth) []EffortRow {
	return []EffortRow{
		SimulateManual(src, tgt, gt),
		SimulateHarmonyAssisted(src, tgt, gt),
		SimulateWorkbench(src, tgt, gt),
	}
}

// TasksWithOps lists the task ids appearing in a set of rows, sorted.
func TasksWithOps(rows []EffortRow) []TaskID {
	seen := map[TaskID]bool{}
	for _, r := range rows {
		for id := range r.OpsByTask {
			seen[id] = true
		}
	}
	var out []TaskID
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
