package core

import (
	"strings"
	"testing"

	"repro/internal/instance"
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/wbmgr"
)

func TestTaskModelComplete(t *testing.T) {
	if len(Tasks) != 13 {
		t.Fatalf("task model has %d tasks, want 13", len(Tasks))
	}
	// Phase grouping matches §3: 2 + 1 + 6 + 2 + 2.
	wantCounts := map[Phase]int{
		PhaseSchemaPreparation:    2,
		PhaseSchemaMatching:       1,
		PhaseSchemaMapping:        6,
		PhaseInstanceIntegration:  2,
		PhaseSystemImplementation: 2,
	}
	for p, want := range wantCounts {
		if got := len(PhaseTasks(p)); got != want {
			t.Errorf("%v has %d tasks, want %d", p, got, want)
		}
	}
	// IDs are 1..13 in order.
	for i, task := range Tasks {
		if int(task.ID) != i+1 {
			t.Errorf("task %d has id %d", i, task.ID)
		}
	}
	if _, ok := TaskByID(TaskVerifyMappings); !ok {
		t.Error("TaskByID failed")
	}
	if _, ok := TaskByID(TaskID(99)); ok {
		t.Error("TaskByID(99) should fail")
	}
	// Only task 2 is optional.
	for _, task := range Tasks {
		if task.Optional != (task.ID == TaskObtainTarget) {
			t.Errorf("optionality wrong for %v", task.ID)
		}
	}
}

func TestPhaseAndSupportStrings(t *testing.T) {
	if PhaseSchemaMapping.String() != "schema mapping" {
		t.Error("phase name wrong")
	}
	if Phase(9).String() == "" || Support(9).String() == "" {
		t.Error("out-of-range strings should not be empty")
	}
	if AutomatedSupport.String() != "automated" || NoSupport.String() != "-" {
		t.Error("support names wrong")
	}
}

// TestE9Coverage reproduces the §5.3 claim: neither tool alone covers
// all subtasks; the combination (plus the instance layer) does.
func TestE9Coverage(t *testing.T) {
	h := HarmonyProfile()
	m := MapperProfile()
	w := WorkbenchProfile()
	if h.CoversAll() {
		t.Error("Harmony alone must not cover everything")
	}
	if m.CoversAll() {
		t.Error("the mapper alone must not cover everything")
	}
	if !w.CoversAll() {
		t.Error("the combined workbench must cover all 13 tasks")
	}
	if h.CoverageCount(NoSupport) >= w.CoverageCount(NoSupport) {
		t.Error("combination should cover strictly more tasks than Harmony")
	}
	// Harmony automates matching; the mapper only hosts it manually.
	if h.Coverage[TaskGenerateCorrespondences] != AutomatedSupport {
		t.Error("Harmony should automate matching")
	}
	if m.Coverage[TaskGenerateCorrespondences] != ManualSupport {
		t.Error("mapper matching should be manual")
	}
	// Combine keeps the stronger level.
	if w.Coverage[TaskGenerateCorrespondences] != AutomatedSupport {
		t.Error("combination should keep automated matching")
	}
}

func usabilityFixture(t *testing.T) (*model.Schema, *model.Schema, *registry.GroundTruth) {
	t.Helper()
	cfg := registry.DefaultConfig()
	cfg.Models = 1
	cfg.ElementsTotal = 6
	cfg.AttributesTotal = 24
	cfg.DomainValuesTotal = 30
	reg := registry.Generate(cfg)
	src := reg.Models[0]
	tgt, gt := registry.Perturb(src, registry.DefaultPerturb())
	return src, tgt, gt
}

// TestE10Usability reproduces the §6 measurement: tooling reduces
// engineer operations, condition by condition.
func TestE10Usability(t *testing.T) {
	src, tgt, gt := usabilityFixture(t)
	rows := RunUsability(src, tgt, gt)
	if len(rows) != 3 {
		t.Fatalf("conditions = %d", len(rows))
	}
	manual, assisted, workbench := rows[0], rows[1], rows[2]
	if manual.Condition != "manual" || workbench.Condition != "workbench" {
		t.Fatalf("order: %v", []string{manual.Condition, assisted.Condition, workbench.Condition})
	}
	if !(manual.Total > assisted.Total) {
		t.Errorf("Harmony should reduce ops: manual=%d assisted=%d", manual.Total, assisted.Total)
	}
	if !(assisted.Total >= workbench.Total) {
		t.Errorf("full workbench should reduce ops further: assisted=%d workbench=%d", assisted.Total, workbench.Total)
	}
	// The matching task dominates manual effort (grid scan).
	if manual.OpsByTask[TaskGenerateCorrespondences] <= assisted.OpsByTask[TaskGenerateCorrespondences] {
		t.Error("matching ops should shrink with Harmony")
	}
	ids := TasksWithOps(rows)
	if len(ids) == 0 || ids[0] != TaskGenerateCorrespondences {
		t.Errorf("TasksWithOps = %v", ids)
	}
}

// sessionFixture builds the Figure 2/3 schemata for session tests.
func sessionSchemata() (*model.Schema, *model.Schema) {
	src := model.NewSchema("po", "xsd")
	st := src.AddElement(nil, "shipTo", model.KindEntity, model.ContainsElement)
	st.Doc = "Shipping destination for the order"
	for _, n := range []string{"firstName", "lastName", "subtotal"} {
		a := src.AddElement(st, n, model.KindAttribute, model.ContainsAttribute)
		a.DataType = "string"
	}
	tgt := model.NewSchema("si", "xsd")
	si := tgt.AddElement(nil, "shippingInfo", model.KindEntity, model.ContainsElement)
	si.Doc = "Information about where an order ships"
	nm := tgt.AddElement(si, "name", model.KindAttribute, model.ContainsAttribute)
	nm.DataType = "string"
	nm.Required = true
	tot := tgt.AddElement(si, "total", model.KindAttribute, model.ContainsAttribute)
	tot.DataType = "decimal"
	return src, tgt
}

func newSession(t *testing.T) *IntegrationSession {
	t.Helper()
	src, tgt := sessionSchemata()
	s, err := NewIntegrationSession("case-study", src, tgt, "po/shipTo", "si/shippingInfo")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionEndToEnd(t *testing.T) {
	s := newSession(t)

	// Task 3: machine matching publishes cells.
	n, err := s.Match(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no machine correspondences published")
	}
	mp, _ := s.Mapping()
	if len(mp.Cells()) != n {
		t.Errorf("cells = %d, want %d", len(mp.Cells()), n)
	}

	// Engineer decisions (the Figure 3 user-defined rows).
	if err := s.Accept("po/shipTo/subtotal", "si/shippingInfo/total"); err != nil {
		t.Fatal(err)
	}
	if err := s.Reject("po/shipTo/firstName", "si/shippingInfo/total"); err != nil {
		t.Fatal(err)
	}
	cell, ok := mp.GetCell("po/shipTo/subtotal", "si/shippingInfo/total")
	if !ok || cell.Confidence != 1 || !cell.UserDefined {
		t.Errorf("accepted cell = %+v", cell)
	}

	// Tasks 4–8: code via the mapper; codegen reassembles on events.
	if err := s.WriteCode("po/shipTo", "$shipto", "si/shippingInfo/name",
		`concat($shipto/lastName, concat(", ", $shipto/firstName))`); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCode("po/shipTo", "$shipto", "si/shippingInfo/total",
		`data($shipto/subtotal) * 1.05`); err != nil {
		t.Fatal(err)
	}
	code, err := s.GeneratedCode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "element total { data($shipto/subtotal) * 1.05 }") {
		t.Errorf("generated code:\n%s", code)
	}

	// Task 9: execute on sample documents and verify.
	srcData := &instance.Dataset{Records: []*instance.Record{
		instance.NewRecord("shipTo").Set("firstName", "John").Set("lastName", "Doe").Set("subtotal", "100"),
		instance.NewRecord("shipTo").Set("firstName", "John").Set("lastName", "Doe").Set("subtotal", "100"),
	}}
	out, viols, err := s.Execute(srcData)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 0 {
		t.Errorf("violations: %v", viols)
	}
	if len(out.Records) != 2 || out.Records[0].GetString("name") != "Doe, John" {
		t.Errorf("output: %v", out.Records)
	}

	// Tasks 10–11: duplicate records link into one.
	merged, _, err := s.IntegrateInstances(out, instance.LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Records) != 1 {
		t.Errorf("after linking: %d records", len(merged.Records))
	}

	// The event log witnessed the §5.2.2 conversation.
	kinds := map[wbmgr.EventKind]int{}
	for _, e := range s.Manager.EventLog() {
		kinds[e.Kind]++
	}
	if kinds[wbmgr.EventSchemaGraph] != 2 {
		t.Errorf("schema-graph events = %d", kinds[wbmgr.EventSchemaGraph])
	}
	if kinds[wbmgr.EventMappingCell] == 0 || kinds[wbmgr.EventMappingVector] != 2 || kinds[wbmgr.EventMappingMatrix] != 2 {
		t.Errorf("event mix = %v", kinds)
	}
}

func TestSessionExecuteWithoutCode(t *testing.T) {
	s := newSession(t)
	if _, _, err := s.Execute(&instance.Dataset{}); err == nil {
		t.Error("execute before mapping should error")
	}
}

func TestSessionRejectsBadSchema(t *testing.T) {
	src, tgt := sessionSchemata()
	bad := model.NewSchema("bad", "er")
	e := bad.AddElement(nil, "x", model.KindAttribute, model.ContainsAttribute)
	e.DomainRef = "ghost"
	if _, err := NewIntegrationSession("s", bad, tgt, "x", "y"); err == nil {
		t.Error("invalid source should fail")
	}
	if _, err := NewIntegrationSession("s", src, bad, "x", "y"); err == nil {
		t.Error("invalid target should fail")
	}
}

func TestSessionDecideUnknownElement(t *testing.T) {
	s := newSession(t)
	if err := s.Accept("ghost", "si/shippingInfo/name"); err == nil {
		t.Error("unknown element should error")
	}
}

func TestLiteratureProfiles(t *testing.T) {
	profiles := LiteratureProfiles()
	if len(profiles) != 5 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	names := map[string]ToolProfile{}
	for _, p := range profiles {
		names[p.Tool] = p
		// The paper's observation: no single system covers everything.
		if p.CoversAll() {
			t.Errorf("%s should not cover all 13 tasks", p.Tool)
		}
	}
	// Matchers only match; Clio maps but does not auto-match.
	if names["cupid"].CoverageCount(ManualSupport) != 1 {
		t.Error("cupid covers exactly matching")
	}
	if names["clio"].Coverage[TaskGenerateCorrespondences] != ManualSupport {
		t.Error("clio matching is manual")
	}
	if names["clio"].Coverage[TaskObjectIdentity] != AutomatedSupport {
		t.Error("clio automates object identity (Skolem functions)")
	}
	// Even the union of the literature systems misses instance
	// integration — which is why the workbench adds its own layer.
	union := Combine("union", profiles...)
	if union.Coverage[TaskLinkInstances] != NoSupport || union.Coverage[TaskCleanData] != NoSupport {
		t.Error("literature union should not cover tasks 10-11")
	}
}

func TestAllPhaseAndSupportNames(t *testing.T) {
	wantPhases := map[Phase]string{
		PhaseSchemaPreparation:    "schema preparation",
		PhaseSchemaMatching:       "schema matching",
		PhaseSchemaMapping:        "schema mapping",
		PhaseInstanceIntegration:  "instance integration",
		PhaseSystemImplementation: "system implementation",
	}
	for p, want := range wantPhases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
	wantSupports := map[Support]string{
		NoSupport: "-", ManualSupport: "manual",
		AssistedSupport: "assisted", AutomatedSupport: "automated",
	}
	for s, want := range wantSupports {
		if s.String() != want {
			t.Errorf("Support(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestSameDomainVariants(t *testing.T) {
	a := &model.Domain{Values: []model.DomainValue{{Code: "x"}, {Code: "y"}}}
	b := &model.Domain{Values: []model.DomainValue{{Code: "x"}, {Code: "y"}}}
	c := &model.Domain{Values: []model.DomainValue{{Code: "x"}, {Code: "z"}}}
	d := &model.Domain{Values: []model.DomainValue{{Code: "x"}}}
	if !sameDomain(a, b) {
		t.Error("identical domains should compare equal")
	}
	if sameDomain(a, c) {
		t.Error("different codes should differ")
	}
	if sameDomain(a, d) {
		t.Error("different lengths should differ")
	}
}
