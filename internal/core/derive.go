package core

import (
	"fmt"
	"sort"

	"repro/internal/harmony"
	"repro/internal/model"
)

// Target-schema derivation: the paper's task 2 optional path ("the
// target schema may be derived from the correspondences identified among
// the source schemata, as is assumed in [Batini et al.]") and §3.2 ("in
// the absence of a target schema, correspondences can also be
// established between pairs of source schemata").

// DerivedCluster is one group of co-referent source elements that merged
// into a single target element.
type DerivedCluster struct {
	// TargetID is the merged element's ID in the derived schema.
	TargetID string
	// Members are "schemaName:elementID" provenance entries.
	Members []string
}

// Derivation is the result of DeriveTarget.
type Derivation struct {
	Target *model.Schema
	// Clusters maps merged target element IDs to their source members.
	Clusters []DerivedCluster
	// PairsMatched counts the cross-schema correspondences used.
	PairsMatched int
}

// DeriveTarget builds a unified target schema from correspondences
// established between every pair of source schemata. Entities whose
// pairwise confidence reaches threshold are clustered (transitively);
// each cluster becomes one target entity whose attributes are likewise
// clustered across the member entities. Unmatched entities and
// attributes carry over as-is, so the derived target loses nothing.
func DeriveTarget(name string, sources []*model.Schema, threshold float64) (*Derivation, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("core: DeriveTarget needs at least one source")
	}
	d := &Derivation{Target: model.NewSchema(name, "derived")}

	// Collect entities with stable global keys.
	type entRef struct {
		schema *model.Schema
		elem   *model.Element
	}
	var ents []entRef
	key := func(r entRef) string { return r.schema.Name + ":" + r.elem.ID }
	for _, s := range sources {
		for _, e := range s.ElementsOfKind(model.KindEntity) {
			// Only top-level entities drive clustering; nested entities
			// follow their parents.
			if e.Parent() == nil || e.Parent().Kind == model.KindSchema {
				ents = append(ents, entRef{s, e})
			}
		}
	}
	idx := map[string]int{}
	for i, r := range ents {
		idx[key(r)] = i
	}

	// Union-find over entities.
	parent := make([]int, len(ents))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	// Pairwise matching between schemata.
	for i := 0; i < len(sources); i++ {
		for j := i + 1; j < len(sources); j++ {
			e := harmony.NewEngine(sources[i], sources[j], harmony.Options{Flooding: true})
			e.Run()
			for _, c := range e.Matrix().StableMatching(threshold) {
				if c.Source.Kind != model.KindEntity || c.Target.Kind != model.KindEntity {
					continue
				}
				a, okA := idx[sources[i].Name+":"+c.Source.ID]
				b, okB := idx[sources[j].Name+":"+c.Target.ID]
				if okA && okB {
					union(a, b)
					d.PairsMatched++
				}
			}
		}
	}

	// Build clusters in deterministic order.
	groups := map[int][]int{}
	for i := range ents {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)

	for _, r := range roots {
		members := groups[r]
		sort.Ints(members)
		// Representative name: the most common member name, ties by order.
		counts := map[string]int{}
		for _, m := range members {
			counts[ents[m].elem.Name]++
		}
		repName, best := ents[members[0]].elem.Name, 0
		for _, m := range members {
			n := ents[m].elem.Name
			if counts[n] > best {
				repName, best = n, counts[n]
			}
		}
		tgt := d.Target.AddElement(nil, repName, model.KindEntity, model.ContainsElement)
		// Longest documentation wins (most information).
		for _, m := range members {
			if len(ents[m].elem.Doc) > len(tgt.Doc) {
				tgt.Doc = ents[m].elem.Doc
			}
		}

		cluster := DerivedCluster{TargetID: tgt.ID}
		for _, m := range members {
			cluster.Members = append(cluster.Members, key(ents[m]))
		}

		// Merge attributes across member entities by preprocessed-name
		// identity (exact clustering would re-run the matcher; name-level
		// merging matches the Batini methodology's "homonym" handling).
		seen := map[string]*model.Element{}
		for _, m := range members {
			for _, a := range ents[m].elem.Children() {
				if a.Kind != model.KindAttribute {
					continue
				}
				k := normalizeName(a.Name)
				if existing, dup := seen[k]; dup {
					// Enrich the survivor.
					if existing.Doc == "" {
						existing.Doc = a.Doc
					}
					if existing.DomainRef == "" && a.DomainRef != "" {
						existing.DomainRef = importDomain(d.Target, ents[m].schema, a.DomainRef)
					}
					continue
				}
				merged := d.Target.AddElement(tgt, a.Name, model.KindAttribute, model.ContainsAttribute)
				merged.DataType = a.DataType
				merged.Doc = a.Doc
				merged.Key = a.Key
				merged.Required = a.Required
				if a.DomainRef != "" {
					merged.DomainRef = importDomain(d.Target, ents[m].schema, a.DomainRef)
				}
				seen[k] = merged
			}
		}
		d.Clusters = append(d.Clusters, cluster)
	}
	if err := d.Target.Validate(); err != nil {
		return nil, fmt.Errorf("core: derived schema invalid: %w", err)
	}
	return d, nil
}

// importDomain copies a coding scheme into the derived schema, renaming
// on collision, and returns the (possibly renamed) domain name.
func importDomain(target *model.Schema, src *model.Schema, domName string) string {
	dom := src.Domains[domName]
	if dom == nil {
		return ""
	}
	name := domName
	if existing, clash := target.Domains[name]; clash {
		if sameDomain(existing, dom) {
			return name
		}
		name = src.Name + "." + domName
	}
	copied := &model.Domain{Name: name, Doc: dom.Doc}
	copied.Values = append(copied.Values, dom.Values...)
	target.AddDomain(copied)
	return name
}

func sameDomain(a, b *model.Domain) bool {
	if len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if a.Values[i].Code != b.Values[i].Code {
			return false
		}
	}
	return true
}

// normalizeName maps attribute names to a merge key: lowercase with
// separators removed, so first_name and firstName merge.
func normalizeName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z':
			out = append(out, c+32)
		case c == '_' || c == '-' || c == '.':
			// skip
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
