package core

import (
	"strings"
	"testing"

	"repro/internal/wbmgr"
)

func TestFigure2Schemata(t *testing.T) {
	src, tgt, err := Figure2Schemata()
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != 5 {
		t.Errorf("source has %d elements, want 5 (purchaseOrder, shipTo, 3 attrs)", src.Len())
	}
	if tgt.Len() != 3 {
		t.Errorf("target has %d elements, want 3 (shippingInfo, name, total)", tgt.Len())
	}
	if src.Element("purchaseOrder/purchaseOrder/shipTo/subtotal") == nil {
		t.Error("subtotal missing")
	}
	if tgt.Element("shippingInfo/shippingInfo/total") == nil {
		t.Error("total missing")
	}
}

// TestFigure3Reproduction checks the executable Figure 3 matrix against
// the figure's own values.
func TestFigure3Reproduction(t *testing.T) {
	res, err := RunFigure3()
	if err != nil {
		t.Fatal(err)
	}
	// 4 rows × 3 columns = 12 annotated cells, as drawn in the figure.
	if res.Cells != 12 {
		t.Errorf("cells = %d, want 12", res.Cells)
	}
	// Executing the figure's code on (John, Doe, 100) gives the figure's
	// intended semantics: "Doe, John" and 100 × 1.05.
	if res.Name != "Doe, John" {
		t.Errorf("name = %q, want \"Doe, John\"", res.Name)
	}
	if res.Total != 105 {
		t.Errorf("total = %v, want 105", res.Total)
	}
	for _, want := range []string{
		`element name { concat($shipto/lastName, concat(", ", $shipto/firstName)) }`,
		"element total { data($shipto/subtotal) * 1.05 }",
	} {
		if !strings.Contains(res.GeneratedCode, want) {
			t.Errorf("generated code missing %q:\n%s", want, res.GeneratedCode)
		}
	}
}

// TestE5CaseStudy checks the §5.3 pilot-study evidence.
func TestE5CaseStudy(t *testing.T) {
	res, err := RunCaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	if res.MachineCells == 0 {
		t.Error("Harmony should publish machine-suggested cells")
	}
	// The event conversation of §5.2.2 happened: schemata announced,
	// cells written, vectors written by the mapper, matrices regenerated
	// by the codegen.
	if res.Events[wbmgr.EventSchemaGraph] != 2 {
		t.Errorf("schema-graph events = %d, want 2", res.Events[wbmgr.EventSchemaGraph])
	}
	if res.Events[wbmgr.EventMappingCell] < res.MachineCells {
		t.Errorf("mapping-cell events = %d < machine cells %d",
			res.Events[wbmgr.EventMappingCell], res.MachineCells)
	}
	if res.Events[wbmgr.EventMappingVector] != 2 || res.Events[wbmgr.EventMappingMatrix] != 2 {
		t.Errorf("vector/matrix events = %d/%d, want 2/2",
			res.Events[wbmgr.EventMappingVector], res.Events[wbmgr.EventMappingMatrix])
	}
	// Three sample documents in, zero violations, duplicate linked away.
	if len(res.Output.Records) != 3 || len(res.Violations) != 0 {
		t.Errorf("output: %d records, %d violations", len(res.Output.Records), len(res.Violations))
	}
	if res.MergedRecords != 2 {
		t.Errorf("after linking: %d, want 2 (duplicate merged)", res.MergedRecords)
	}
	if !strings.Contains(res.Summary(), "machine-suggested cells") {
		t.Error("summary rendering broken")
	}
}
