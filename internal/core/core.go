package core
