// Package core holds the paper's framing contribution as first-class
// data and orchestration: the 13-task / 5-phase task model for data
// integration (paper §3), the tool-coverage matrix used to compare tools
// against tasks (experiment E9), the simulated-engineer usability model
// proposed as the paper's next step (§6, experiment E10), and an
// IntegrationSession that drives the full pipeline — load, match, map,
// generate, execute, verify — through the workbench.
package core

import "fmt"

// Phase is one of the five phases of §3.
type Phase int

// The five phases.
const (
	PhaseSchemaPreparation Phase = iota + 1
	PhaseSchemaMatching
	PhaseSchemaMapping
	PhaseInstanceIntegration
	PhaseSystemImplementation
)

// String names the phase as in the paper.
func (p Phase) String() string {
	switch p {
	case PhaseSchemaPreparation:
		return "schema preparation"
	case PhaseSchemaMatching:
		return "schema matching"
	case PhaseSchemaMapping:
		return "schema mapping"
	case PhaseInstanceIntegration:
		return "instance integration"
	case PhaseSystemImplementation:
		return "system implementation"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// TaskID numbers the 13 tasks exactly as §3 does.
type TaskID int

// The 13 tasks.
const (
	TaskObtainSources TaskID = iota + 1
	TaskObtainTarget
	TaskGenerateCorrespondences
	TaskDomainTransforms
	TaskAttributeTransforms
	TaskEntityTransforms
	TaskObjectIdentity
	TaskLogicalMappings
	TaskVerifyMappings
	TaskLinkInstances
	TaskCleanData
	TaskImplementSolution
	TaskDeploy
)

// Task describes one subtask of the model.
type Task struct {
	ID    TaskID
	Phase Phase
	Name  string
	// Optional marks tasks the paper calls optional (e.g. obtaining the
	// target schema, which may be derived instead).
	Optional bool
}

// Tasks is the complete task model in order.
var Tasks = []Task{
	{TaskObtainSources, PhaseSchemaPreparation, "obtain the source schemata", false},
	{TaskObtainTarget, PhaseSchemaPreparation, "obtain or develop the target schema", true},
	{TaskGenerateCorrespondences, PhaseSchemaMatching, "generate semantic correspondences", false},
	{TaskDomainTransforms, PhaseSchemaMapping, "develop domain transformations", false},
	{TaskAttributeTransforms, PhaseSchemaMapping, "develop attribute transformations", false},
	{TaskEntityTransforms, PhaseSchemaMapping, "develop entity transformations", false},
	{TaskObjectIdentity, PhaseSchemaMapping, "determine object identity", false},
	{TaskLogicalMappings, PhaseSchemaMapping, "create logical mappings", false},
	{TaskVerifyMappings, PhaseSchemaMapping, "verify mappings against target schema", false},
	{TaskLinkInstances, PhaseInstanceIntegration, "link instance elements", false},
	{TaskCleanData, PhaseInstanceIntegration, "clean the data", false},
	{TaskImplementSolution, PhaseSystemImplementation, "implement a solution", false},
	{TaskDeploy, PhaseSystemImplementation, "deploy the application", false},
}

// TaskByID returns the task with the given id.
func TaskByID(id TaskID) (Task, bool) {
	for _, t := range Tasks {
		if t.ID == id {
			return t, true
		}
	}
	return Task{}, false
}

// PhaseTasks returns the tasks of one phase, in order.
func PhaseTasks(p Phase) []Task {
	var out []Task
	for _, t := range Tasks {
		if t.Phase == p {
			out = append(out, t)
		}
	}
	return out
}

// Support grades how much a tool helps with a task.
type Support int

// Support levels.
const (
	// NoSupport means the engineer does the task elsewhere.
	NoSupport Support = iota
	// ManualSupport means the tool hosts the task but the engineer does
	// the work (e.g. drawing lines by hand).
	ManualSupport
	// AssistedSupport means the tool semi-automates the task (e.g.
	// suggested matches the engineer confirms).
	AssistedSupport
	// AutomatedSupport means the tool completes the task with at most
	// parameter input.
	AutomatedSupport
)

// String renders the support level.
func (s Support) String() string {
	switch s {
	case NoSupport:
		return "-"
	case ManualSupport:
		return "manual"
	case AssistedSupport:
		return "assisted"
	case AutomatedSupport:
		return "automated"
	default:
		return fmt.Sprintf("Support(%d)", int(s))
	}
}

// Coverage maps tasks to a tool's support level.
type Coverage map[TaskID]Support

// ToolProfile describes one tool's task coverage.
type ToolProfile struct {
	Tool     string
	Coverage Coverage
}

// HarmonyProfile is Harmony's coverage per §5.3: "Harmony also supports
// automated matching, but neither mapping nor code generation."
func HarmonyProfile() ToolProfile {
	return ToolProfile{Tool: "harmony", Coverage: Coverage{
		TaskObtainSources:           AssistedSupport, // loaders
		TaskObtainTarget:            AssistedSupport,
		TaskGenerateCorrespondences: AutomatedSupport,
	}}
}

// MapperProfile is the AquaLogic-stand-in's coverage: "the AquaLogic
// development environment supports manual mapping and automatic code
// generation."
func MapperProfile() ToolProfile {
	return ToolProfile{Tool: "mapper-sim", Coverage: Coverage{
		TaskObtainSources:           AssistedSupport,
		TaskObtainTarget:            AssistedSupport,
		TaskGenerateCorrespondences: ManualSupport,
		TaskDomainTransforms:        AssistedSupport,
		TaskAttributeTransforms:     ManualSupport,
		TaskEntityTransforms:        ManualSupport,
		TaskObjectIdentity:          ManualSupport,
		TaskLogicalMappings:         AutomatedSupport,
		TaskVerifyMappings:          AutomatedSupport,
		TaskImplementSolution:       ManualSupport,
		TaskDeploy:                  ManualSupport,
	}}
}

// WorkbenchProfile is the combined suite plus the instance-integration
// substrate, covering every task — the §5.3 claim under E9.
func WorkbenchProfile() ToolProfile {
	combined := Combine("workbench", HarmonyProfile(), MapperProfile())
	// The workbench's instance layer adds tasks 10–11.
	combined.Coverage[TaskLinkInstances] = AutomatedSupport
	combined.Coverage[TaskCleanData] = AutomatedSupport
	return combined
}

// LiteratureProfiles encodes the task coverage of the systems the paper
// validated its model against (§3: "we extended that model to include
// the subtasks addressed by a variety of systems"), as reported in those
// systems' publications. The task model's purpose — "among tools, we can
// ask what each tool contributes to each task" — is exactly this table.
func LiteratureProfiles() []ToolProfile {
	return []ToolProfile{
		{Tool: "clio", Coverage: Coverage{ // Miller et al., SIGMOD Record 2001
			TaskObtainSources:           AssistedSupport,
			TaskObtainTarget:            AssistedSupport,
			TaskGenerateCorrespondences: ManualSupport,
			TaskAttributeTransforms:     AssistedSupport,
			TaskEntityTransforms:        AutomatedSupport, // query discovery
			TaskObjectIdentity:          AutomatedSupport, // Skolem functions
			TaskLogicalMappings:         AutomatedSupport,
		}},
		{Tool: "coma++", Coverage: Coverage{ // Aumueller et al., SIGMOD 2005
			TaskObtainSources:           AssistedSupport,
			TaskObtainTarget:            AssistedSupport,
			TaskGenerateCorrespondences: AutomatedSupport,
		}},
		{Tool: "cupid", Coverage: Coverage{ // Madhavan et al., VLDB 2001
			TaskGenerateCorrespondences: AutomatedSupport,
		}},
		{Tool: "similarity-flooding", Coverage: Coverage{ // Melnik et al., ICDE 2002
			TaskGenerateCorrespondences: AutomatedSupport,
		}},
		{Tool: "tsimmis-wrappers", Coverage: Coverage{ // Hammer et al., SIGMOD 1997
			TaskObtainSources:     AssistedSupport,
			TaskLogicalMappings:   ManualSupport,
			TaskImplementSolution: AssistedSupport,
			TaskDeploy:            AssistedSupport,
		}},
	}
}

// Combine merges tool profiles, keeping the strongest support per task.
func Combine(name string, profiles ...ToolProfile) ToolProfile {
	out := ToolProfile{Tool: name, Coverage: Coverage{}}
	for _, p := range profiles {
		for id, s := range p.Coverage {
			if s > out.Coverage[id] {
				out.Coverage[id] = s
			}
		}
	}
	return out
}

// CoverageCount returns how many of the 13 tasks have at least the given
// support level.
func (p ToolProfile) CoverageCount(min Support) int {
	n := 0
	for _, t := range Tasks {
		if p.Coverage[t.ID] >= min && p.Coverage[t.ID] != NoSupport {
			n++
		}
	}
	return n
}

// CoversAll reports whether every task has some support.
func (p ToolProfile) CoversAll() bool {
	for _, t := range Tasks {
		if p.Coverage[t.ID] == NoSupport {
			return false
		}
	}
	return true
}
