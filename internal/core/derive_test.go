package core

import (
	"strings"
	"testing"

	"repro/internal/model"
)

// Three overlapping HR-ish source schemata for derivation.
func deriveSources() []*model.Schema {
	s1 := model.NewSchema("hr1", "er")
	e1 := s1.AddElement(nil, "employee", model.KindEntity, model.ContainsElement)
	e1.Doc = "A person employed by the organization with salary and department"
	a := s1.AddElement(e1, "employeeID", model.KindAttribute, model.ContainsAttribute)
	a.Key = true
	a.DataType = "string"
	sal := s1.AddElement(e1, "salary", model.KindAttribute, model.ContainsAttribute)
	sal.DataType = "decimal"
	sal.Doc = "Annual base salary"
	dep := s1.AddElement(e1, "dept_code", model.KindAttribute, model.ContainsAttribute)
	dep.DomainRef = "Dept"
	s1.AddDomain(&model.Domain{Name: "Dept", Values: []model.DomainValue{
		{Code: "ENG"}, {Code: "OPS"},
	}})

	s2 := model.NewSchema("hr2", "er")
	e2 := s2.AddElement(nil, "staff", model.KindEntity, model.ContainsElement)
	e2.Doc = "A staff member employed with pay and department information"
	b := s2.AddElement(e2, "staffNumber", model.KindAttribute, model.ContainsAttribute)
	b.DataType = "string"
	pay := s2.AddElement(e2, "salary", model.KindAttribute, model.ContainsAttribute)
	pay.DataType = "decimal"
	s2.AddElement(e2, "phone", model.KindAttribute, model.ContainsAttribute)

	s3 := model.NewSchema("fleet", "er")
	v := s3.AddElement(nil, "vehicle", model.KindEntity, model.ContainsElement)
	v.Doc = "A vehicle in the motor pool"
	s3.AddElement(v, "vin", model.KindAttribute, model.ContainsAttribute)
	return []*model.Schema{s1, s2, s3}
}

func TestDeriveTargetClustersMatchingEntities(t *testing.T) {
	d, err := DeriveTarget("unified", deriveSources(), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Target.Validate(); err != nil {
		t.Fatal(err)
	}
	// employee+staff merge (thesaurus: employee↔staff; docs overlap);
	// vehicle stays separate → 2 entities.
	ents := d.Target.ElementsOfKind(model.KindEntity)
	if len(ents) != 2 {
		t.Fatalf("derived %d entities, want 2: %v", len(ents), d.Target)
	}
	if d.PairsMatched == 0 {
		t.Error("no cross-schema pairs used")
	}
	// The merged cluster has members from both HR schemata.
	var hrCluster *DerivedCluster
	for i := range d.Clusters {
		if len(d.Clusters[i].Members) == 2 {
			hrCluster = &d.Clusters[i]
		}
	}
	if hrCluster == nil {
		t.Fatalf("no 2-member cluster: %+v", d.Clusters)
	}
	joined := strings.Join(hrCluster.Members, " ")
	if !strings.Contains(joined, "hr1:") || !strings.Contains(joined, "hr2:") {
		t.Errorf("cluster members = %v", hrCluster.Members)
	}
}

func TestDeriveTargetMergesAttributes(t *testing.T) {
	d, err := DeriveTarget("unified", deriveSources(), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Find the merged HR entity.
	var hr *model.Element
	for _, e := range d.Target.ElementsOfKind(model.KindEntity) {
		if e.Name == "employee" || e.Name == "staff" {
			hr = e
		}
	}
	if hr == nil {
		t.Fatal("merged HR entity missing")
	}
	names := map[string]bool{}
	for _, a := range hr.Children() {
		if names[strings.ToLower(a.Name)] {
			t.Errorf("duplicate attribute %q in merged entity", a.Name)
		}
		names[strings.ToLower(a.Name)] = true
	}
	// salary deduplicated; union keeps employeeID, staffNumber, phone,
	// dept_code.
	for _, want := range []string{"salary", "employeeid", "staffnumber", "phone", "dept_code"} {
		if !names[want] {
			t.Errorf("merged entity missing %q (has %v)", want, names)
		}
	}
	// Coding scheme carried over.
	var deptAttr *model.Element
	for _, a := range hr.Children() {
		if a.Name == "dept_code" {
			deptAttr = a
		}
	}
	if deptAttr == nil || deptAttr.DomainRef == "" || d.Target.DomainOf(deptAttr) == nil {
		t.Error("domain reference lost in derivation")
	}
}

func TestDeriveTargetDomainCollision(t *testing.T) {
	// Two sources with same-named but different domains must not merge
	// them silently.
	s1 := model.NewSchema("a", "er")
	e1 := s1.AddElement(nil, "thing", model.KindEntity, model.ContainsElement)
	x := s1.AddElement(e1, "status", model.KindAttribute, model.ContainsAttribute)
	x.DomainRef = "Status"
	s1.AddDomain(&model.Domain{Name: "Status", Values: []model.DomainValue{{Code: "on"}, {Code: "off"}}})

	s2 := model.NewSchema("b", "er")
	e2 := s2.AddElement(nil, "widget", model.KindEntity, model.ContainsElement)
	y := s2.AddElement(e2, "condition", model.KindAttribute, model.ContainsAttribute)
	y.DomainRef = "Status"
	s2.AddDomain(&model.Domain{Name: "Status", Values: []model.DomainValue{{Code: "new"}, {Code: "used"}}})

	d, err := DeriveTarget("u", []*model.Schema{s1, s2}, 0.99) // no merging
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Target.Domains) != 2 {
		t.Errorf("conflicting domains should both survive: %v", d.Target.Domains)
	}
}

func TestDeriveTargetErrors(t *testing.T) {
	if _, err := DeriveTarget("x", nil, 0.5); err == nil {
		t.Error("empty source list should error")
	}
}

func TestDeriveTargetSingleSource(t *testing.T) {
	srcs := deriveSources()[:1]
	d, err := DeriveTarget("solo", srcs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// One source: target mirrors it (1 entity, its attributes).
	if got := len(d.Target.ElementsOfKind(model.KindEntity)); got != 1 {
		t.Errorf("entities = %d", got)
	}
	if d.PairsMatched != 0 {
		t.Error("no pairs should match with one source")
	}
}

func TestNormalizeName(t *testing.T) {
	cases := map[string]string{
		"first_name": "firstname",
		"firstName":  "firstname",
		"FIRST-NAME": "firstname",
		"a.b":        "ab",
	}
	for in, want := range cases {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
