package reuse

import (
	"testing"

	"repro/internal/blackboard"
	"repro/internal/harmony"
	"repro/internal/match"
	"repro/internal/model"
)

// mkSchema builds a flat entity with the given attribute names.
func mkSchema(name, entity string, attrs ...string) *model.Schema {
	s := model.NewSchema(name, "er")
	e := s.AddElement(nil, entity, model.KindEntity, model.ContainsElement)
	for _, a := range attrs {
		s.AddElement(e, a, model.KindAttribute, model.ContainsAttribute)
	}
	return s
}

// seedLibrary stores a finished mapping where an engineer accepted
// qty↔amount and rejected qty↔weight.
func seedLibrary(t *testing.T) *blackboard.Blackboard {
	t.Helper()
	bb := blackboard.New()
	src := mkSchema("warehouse", "item", "qty", "sku")
	tgt := mkSchema("catalog", "product", "amount", "weight")
	if _, err := bb.PutSchema(src); err != nil {
		t.Fatal(err)
	}
	if _, err := bb.PutSchema(tgt); err != nil {
		t.Fatal(err)
	}
	mp, err := bb.NewMapping("past-project", "warehouse", "catalog")
	if err != nil {
		t.Fatal(err)
	}
	mp.SetCell("warehouse/item/qty", "catalog/product/amount", 1, true, "engineer")
	mp.SetCell("warehouse/item/qty", "catalog/product/weight", -1, true, "engineer")
	return bb
}

func TestLibraryVoterUsesPrecedents(t *testing.T) {
	bb := seedLibrary(t)
	// A NEW schema pair with the same attribute vocabulary.
	src := mkSchema("store", "lineItem", "qty", "color")
	tgt := mkSchema("feed", "entry", "amount", "weight")
	ctx := match.NewContext(src, tgt)
	m := (LibraryVoter{BB: bb}).Vote(ctx)

	if got := m.Get("store/lineItem/qty", "feed/entry/amount"); got != 0.9 {
		t.Errorf("accepted precedent vote = %g, want 0.9", got)
	}
	if got := m.Get("store/lineItem/qty", "feed/entry/weight"); got != -0.9 {
		t.Errorf("rejected precedent vote = %g, want -0.9", got)
	}
	if got := m.Get("store/lineItem/color", "feed/entry/amount"); got != 0 {
		t.Errorf("no-precedent vote = %g, want abstain", got)
	}
}

func TestLibraryVoterNormalizesNames(t *testing.T) {
	bb := seedLibrary(t)
	// QTY / Amount in different case/underscore style still hit.
	src := mkSchema("s", "e", "QTY")
	tgt := mkSchema("t", "f", "a_mount")
	ctx := match.NewContext(src, tgt)
	m := (LibraryVoter{BB: bb}).Vote(ctx)
	if got := m.Get("s/e/QTY", "t/f/a_mount"); got != 0.9 {
		t.Errorf("normalized precedent vote = %g", got)
	}
}

func TestLibraryVoterConflictingPrecedents(t *testing.T) {
	bb := seedLibrary(t)
	mp, _ := bb.GetMapping("past-project")
	// A second project rejected qty↔amount.
	mp2, err := bb.NewMapping("other-project", "warehouse", "catalog")
	if err != nil {
		t.Fatal(err)
	}
	_ = mp
	mp2.SetCell("warehouse/item/qty", "catalog/product/amount", -1, true, "engineer")

	src := mkSchema("s", "e", "qty")
	tgt := mkSchema("t", "f", "amount")
	ctx := match.NewContext(src, tgt)
	m := (LibraryVoter{BB: bb}).Vote(ctx)
	if got := m.Get("s/e/qty", "t/f/amount"); got != 0.2 {
		t.Errorf("conflicting precedent vote = %g, want weak 0.2", got)
	}
}

func TestLibraryVoterAbstainsWithoutLibrary(t *testing.T) {
	src := mkSchema("s", "e", "qty")
	tgt := mkSchema("t", "f", "amount")
	ctx := match.NewContext(src, tgt)
	// Nil blackboard.
	m := (LibraryVoter{}).Vote(ctx)
	if got := m.Get("s/e/qty", "t/f/amount"); got != 0 {
		t.Errorf("nil-library vote = %g", got)
	}
	// Empty blackboard.
	m = (LibraryVoter{BB: blackboard.New()}).Vote(ctx)
	if got := m.Get("s/e/qty", "t/f/amount"); got != 0 {
		t.Errorf("empty-library vote = %g", got)
	}
}

func TestLibraryVoterIgnoresMachineCells(t *testing.T) {
	bb := blackboard.New()
	src := mkSchema("a", "e", "x")
	tgt := mkSchema("b", "f", "y")
	_, _ = bb.PutSchema(src)
	_, _ = bb.PutSchema(tgt)
	mp, _ := bb.NewMapping("m", "a", "b")
	mp.SetCell("a/e/x", "b/f/y", 0.9, false, "harmony") // machine, not user
	ctx := match.NewContext(mkSchema("s", "e", "x"), mkSchema("t", "f", "y"))
	m := (LibraryVoter{BB: bb}).Vote(ctx)
	if got := m.Get("s/e/x", "t/f/y"); got != 0 {
		t.Errorf("machine cells must not become precedents: %g", got)
	}
}

// TestReuseImprovesSecondProject is the end-to-end reuse story: after an
// engineer finishes project 1, project 2 over schemata with alien names
// but shared vocabulary benefits from the library voter.
func TestReuseImprovesSecondProject(t *testing.T) {
	bb := seedLibrary(t)
	src := mkSchema("p2src", "requisition", "qty", "beta")
	tgt := mkSchema("p2tgt", "record", "amount", "gamma")

	without := harmony.NewEngine(src, tgt, harmony.Options{Flooding: true})
	without.Run()
	base := without.Matrix().Get("p2src/requisition/qty", "p2tgt/record/amount")

	with := harmony.NewEngine(src, tgt, harmony.Options{
		Voters:   VotersWithLibrary(bb),
		Flooding: true,
	})
	with.Run()
	boosted := with.Matrix().Get("p2src/requisition/qty", "p2tgt/record/amount")

	if boosted <= base {
		t.Errorf("library should boost the precedent pair: %g → %g", base, boosted)
	}
	if boosted <= 0.25 {
		t.Errorf("boosted score = %g, want clearly positive", boosted)
	}
}

func TestRecordDecisions(t *testing.T) {
	bb := seedLibrary(t)
	mp, _ := bb.NewMapping("session", "warehouse", "catalog")
	RecordDecisions(mp, map[[2]string]bool{
		{"warehouse/item/sku", "catalog/product/weight"}: false,
		{"warehouse/item/sku", "catalog/product/amount"}: true,
	}, "harmony")
	c, ok := mp.GetCell("warehouse/item/sku", "catalog/product/amount")
	if !ok || c.Confidence != 1 || !c.UserDefined {
		t.Errorf("recorded accept = %+v", c)
	}
	c, _ = mp.GetCell("warehouse/item/sku", "catalog/product/weight")
	if c.Confidence != -1 {
		t.Errorf("recorded reject = %+v", c)
	}
}
