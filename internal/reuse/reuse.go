// Package reuse implements mapping reuse: a match voter that consults
// the integration blackboard's mapping library (paper §5.1.3: "the
// blackboard should maintain a library of mappings, partly to facilitate
// mapping reuse, but also as a resource for some matching tools").
//
// The LibraryVoter looks up prior engineer decisions: if elements with
// the same normalized names were accepted (or rejected) as a
// correspondence in any stored mapping, the voter votes accordingly.
// Past human judgment is strong evidence, so the magnitudes are large
// and the merger's magnitude weighting lets them dominate.
package reuse

import (
	"strings"

	"repro/internal/blackboard"
	"repro/internal/match"
)

// LibraryVoter votes from prior decisions stored in a blackboard.
type LibraryVoter struct {
	// BB is the blackboard whose mapping library is consulted.
	BB *blackboard.Blackboard
	// MinConfidence filters library cells: only user-defined cells at or
	// above it count as accepted precedents (default 1.0, i.e. explicit
	// accepts only).
	MinConfidence float64
}

// Name implements match.Voter.
func (LibraryVoter) Name() string { return "mapping-library" }

// precedent is remembered evidence about a normalized name pair.
type precedent struct {
	accepts, rejects int
}

// Vote implements match.Voter.
func (v LibraryVoter) Vote(ctx *match.Context) *match.Matrix {
	m := ctx.NewMatrix()
	if v.BB == nil {
		return m // abstain without a library
	}
	minConf := v.MinConfidence
	if minConf == 0 {
		minConf = 1.0
	}

	// Harvest precedents from every stored mapping.
	precedents := map[[2]string]*precedent{}
	for _, id := range v.BB.Mappings() {
		mp, err := v.BB.GetMapping(id)
		if err != nil {
			continue
		}
		for _, cell := range mp.Cells() {
			if !cell.UserDefined {
				continue
			}
			k := [2]string{normalizeKey(tail(cell.SourceID)), normalizeKey(tail(cell.TargetID))}
			p := precedents[k]
			if p == nil {
				p = &precedent{}
				precedents[k] = p
			}
			switch {
			case cell.Confidence >= minConf:
				p.accepts++
			case cell.Confidence <= -minConf:
				p.rejects++
			}
		}
	}
	if len(precedents) == 0 {
		return m
	}

	// Stored cells only: with blocking enabled a precedent outside the
	// candidate pattern cannot resurrect the pair — an accepted trade-off
	// (sparse mode treats pruned pairs as no-evidence everywhere).
	m.Each(func(i, j int, _ float64) {
		s, t := m.Sources[i], m.Targets[j]
		p := precedents[[2]string{normalizeKey(s.Name), normalizeKey(t.Name)}]
		if p == nil {
			return
		}
		switch {
		case p.accepts > 0 && p.rejects == 0:
			m.SetAt(i, j, 0.9)
		case p.rejects > 0 && p.accepts == 0:
			m.SetAt(i, j, -0.9)
		default:
			// Conflicting precedents: weak positive (accepts usually
			// generalize better than rejects, which are often local).
			m.SetAt(i, j, 0.2)
		}
	})
	return m
}

// VotersWithLibrary returns the default Harmony panel extended with the
// library voter over the given blackboard.
func VotersWithLibrary(bb *blackboard.Blackboard) []match.Voter {
	return append(match.DefaultVoters(), LibraryVoter{BB: bb})
}

// RecordDecisions stores an engine's accepted/rejected pairs into a
// mapping so later sessions can reuse them. It is the bridging call a
// matcher tool makes when the engineer finishes a session.
func RecordDecisions(mp *blackboard.Mapping, decisions map[[2]string]bool, tool string) error {
	for pair, accepted := range decisions {
		conf := -1.0
		if accepted {
			conf = 1.0
		}
		if err := mp.SetCell(pair[0], pair[1], conf, true, tool); err != nil {
			return err
		}
	}
	return nil
}

func tail(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}

func normalizeKey(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z':
			out = append(out, c+32)
		case c == '_' || c == '-' || c == '.':
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

var _ match.Voter = LibraryVoter{}
