package xmlschema

import (
	"os"
	"strings"
	"testing"
)

// FuzzParseXSD asserts the XSD loader's crash-safety contract: parse or
// error, never panic, hang, or unbounded recursion (deeply nested
// documents are rejected by the pre-decode depth guard), and accepted
// schemata validate.
func FuzzParseXSD(f *testing.F) {
	for _, path := range []string{"../../testdata/purchaseOrder.xsd", "../../testdata/shippingInfo.xsd"} {
		if seed, err := os.ReadFile(path); err == nil {
			f.Add(string(seed))
		}
	}
	f.Add(`<schema><element name="a" type="string"/></schema>`)
	f.Add(`<schema><complexType name="T"><sequence><element name="x"/></sequence></complexType>` +
		`<element name="e" type="T"/></schema>`)
	f.Add(`<schema><simpleType name="D"><restriction base="string">` +
		`<enumeration value="A"/></restriction></simpleType></schema>`)
	f.Add("<schema>" + strings.Repeat("<element>", 300) + strings.Repeat("</element>", 300) + "</schema>")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := Load("fuzz", strings.NewReader(input))
		if err != nil {
			return
		}
		if s == nil {
			t.Fatal("nil schema with nil error")
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("loader returned invalid schema: %v\ninput: %q", verr, input)
		}
	})
}
