// Package xmlschema loads a practical subset of W3C XML Schema (XSD) into
// the canonical schema graph (paper §4: "Harmony currently supports XML
// schemata"; §3.1 task 1: loaders import source schemata and their
// documentation).
//
// Supported constructs: global and local element declarations, named and
// anonymous complex types with sequence/all/choice particles, attributes,
// simple types with enumeration facets (normalized to Domains),
// xs:annotation/xs:documentation (normalized to Doc), minOccurs/use for
// Required, and type references to named types. Imports, substitution
// groups and identity constraints are out of scope.
package xmlschema

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/model"
)

// xsd parse tree, mapped directly from the XML.
type xsdSchema struct {
	XMLName      xml.Name         `xml:"schema"`
	Elements     []xsdElement     `xml:"element"`
	ComplexTypes []xsdComplexType `xml:"complexType"`
	SimpleTypes  []xsdSimpleType  `xml:"simpleType"`
	Annotation   *xsdAnnotation   `xml:"annotation"`
}

type xsdElement struct {
	Name        string          `xml:"name,attr"`
	Type        string          `xml:"type,attr"`
	MinOccurs   string          `xml:"minOccurs,attr"`
	MaxOccurs   string          `xml:"maxOccurs,attr"`
	Annotation  *xsdAnnotation  `xml:"annotation"`
	ComplexType *xsdComplexType `xml:"complexType"`
	SimpleType  *xsdSimpleType  `xml:"simpleType"`
}

type xsdComplexType struct {
	Name       string         `xml:"name,attr"`
	Sequence   *xsdParticle   `xml:"sequence"`
	All        *xsdParticle   `xml:"all"`
	Choice     *xsdParticle   `xml:"choice"`
	Attributes []xsdAttribute `xml:"attribute"`
	Annotation *xsdAnnotation `xml:"annotation"`
}

type xsdParticle struct {
	Elements []xsdElement `xml:"element"`
}

type xsdAttribute struct {
	Name       string         `xml:"name,attr"`
	Type       string         `xml:"type,attr"`
	Use        string         `xml:"use,attr"`
	Annotation *xsdAnnotation `xml:"annotation"`
	SimpleType *xsdSimpleType `xml:"simpleType"`
}

type xsdSimpleType struct {
	Name        string          `xml:"name,attr"`
	Annotation  *xsdAnnotation  `xml:"annotation"`
	Restriction *xsdRestriction `xml:"restriction"`
}

type xsdRestriction struct {
	Base         string           `xml:"base,attr"`
	Enumerations []xsdEnumeration `xml:"enumeration"`
}

type xsdEnumeration struct {
	Value      string         `xml:"value,attr"`
	Annotation *xsdAnnotation `xml:"annotation"`
}

type xsdAnnotation struct {
	Documentation []string `xml:"documentation"`
}

func (a *xsdAnnotation) text() string {
	if a == nil {
		return ""
	}
	var parts []string
	for _, d := range a.Documentation {
		if t := strings.TrimSpace(collapseWhitespace(d)); t != "" {
			parts = append(parts, t)
		}
	}
	return strings.Join(parts, " ")
}

func collapseWhitespace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// maxXMLDepth bounds element nesting before decoding. The parse tree is
// mutually recursive (element → complexType → element), so without this
// guard a pathologically deep document drives xml.Decoder's recursion —
// and the walker behind it — arbitrarily deep. Real schemata nest a
// handful of levels; 200 is far beyond any legitimate document.
const maxXMLDepth = 200

// checkDepth scans the raw document iteratively and rejects nesting
// deeper than maxXMLDepth. Syntax errors are ignored here — the real
// decode reports them with full context.
func checkDepth(data []byte) error {
	dec := xml.NewDecoder(strings.NewReader(string(data)))
	depth := 0
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil // EOF or syntax error: Decode's problem
		}
		switch tok.(type) {
		case xml.StartElement:
			depth++
			if depth > maxXMLDepth {
				return fmt.Errorf("element nesting deeper than %d", maxXMLDepth)
			}
		case xml.EndElement:
			depth--
		}
	}
}

// Load parses an XSD document from r into a canonical schema named name.
func Load(name string, r io.Reader) (*model.Schema, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xmlschema: reading %s: %w", name, err)
	}
	if err := checkDepth(data); err != nil {
		return nil, fmt.Errorf("xmlschema: parsing %s: %w", name, err)
	}
	var doc xsdSchema
	dec := xml.NewDecoder(strings.NewReader(string(data)))
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("xmlschema: parsing %s: %w", name, err)
	}
	l := &loader{
		schema:       model.NewSchema(name, "xsd"),
		complexTypes: map[string]*xsdComplexType{},
		simpleTypes:  map[string]*xsdSimpleType{},
	}
	l.schema.Doc = doc.Annotation.text()
	for i := range doc.ComplexTypes {
		ct := &doc.ComplexTypes[i]
		if ct.Name != "" {
			l.complexTypes[ct.Name] = ct
		}
	}
	for i := range doc.SimpleTypes {
		st := &doc.SimpleTypes[i]
		if st.Name != "" {
			l.simpleTypes[st.Name] = st
			if dom := domainFromSimpleType(st, st.Name); dom != nil {
				l.schema.AddDomain(dom)
			}
		}
	}
	for i := range doc.Elements {
		if err := l.element(nil, &doc.Elements[i], 0); err != nil {
			return nil, err
		}
	}
	if err := l.schema.Validate(); err != nil {
		return nil, err
	}
	return l.schema, nil
}

// LoadFile loads an XSD file; the schema is named after the file stem.
func LoadFile(path string) (*model.Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return Load(name, f)
}

type loader struct {
	schema       *model.Schema
	complexTypes map[string]*xsdComplexType
	simpleTypes  map[string]*xsdSimpleType
}

const maxDepth = 64

func (l *loader) element(parent *model.Element, el *xsdElement, depth int) error {
	if depth > maxDepth {
		return fmt.Errorf("xmlschema: element nesting exceeds %d (recursive type?)", maxDepth)
	}
	if el.Name == "" {
		return fmt.Errorf("xmlschema: element without name under %v", parentID(parent))
	}
	// Resolve the content model.
	ct := el.ComplexType
	if ct == nil && el.Type != "" {
		ct = l.complexTypes[stripPrefix(el.Type)]
	}
	kind := model.KindAttribute
	if ct != nil {
		kind = model.KindEntity
	}
	e := l.schema.AddElement(parent, el.Name, kind, model.ContainsElement)
	e.Doc = el.Annotation.text()
	if el.MinOccurs != "0" {
		e.Required = true
	}
	if kind == model.KindAttribute {
		l.leafType(e, el.Type, el.SimpleType)
		return nil
	}
	e.DataType = stripPrefix(el.Type)
	if ct.Annotation != nil && e.Doc == "" {
		e.Doc = ct.Annotation.text()
	}
	for i := range ct.Attributes {
		at := &ct.Attributes[i]
		if at.Name == "" {
			return fmt.Errorf("xmlschema: attribute without name in element %q", el.Name)
		}
		a := l.schema.AddElement(e, at.Name, model.KindAttribute, model.ContainsAttribute)
		a.Doc = at.Annotation.text()
		if at.Use == "required" {
			a.Required = true
		}
		l.leafType(a, at.Type, at.SimpleType)
	}
	for _, particle := range []*xsdParticle{ct.Sequence, ct.All, ct.Choice} {
		if particle == nil {
			continue
		}
		for i := range particle.Elements {
			if err := l.element(e, &particle.Elements[i], depth+1); err != nil {
				return err
			}
		}
	}
	return nil
}

// leafType assigns DataType and DomainRef for a leaf element/attribute.
func (l *loader) leafType(e *model.Element, typeRef string, inline *xsdSimpleType) {
	if inline != nil {
		domName := e.Name + "Values"
		if dom := domainFromSimpleType(inline, domName); dom != nil {
			l.schema.AddDomain(dom)
			e.DomainRef = dom.Name
			if inline.Restriction != nil {
				e.DataType = stripPrefix(inline.Restriction.Base)
			}
			return
		}
		if inline.Restriction != nil {
			e.DataType = stripPrefix(inline.Restriction.Base)
		}
		return
	}
	ref := stripPrefix(typeRef)
	if st, ok := l.simpleTypes[ref]; ok {
		if st.Restriction != nil && len(st.Restriction.Enumerations) > 0 {
			e.DomainRef = ref
			e.DataType = stripPrefix(st.Restriction.Base)
			return
		}
		if st.Restriction != nil {
			e.DataType = stripPrefix(st.Restriction.Base)
			return
		}
	}
	e.DataType = ref
	if e.DataType == "" {
		e.DataType = "string"
	}
}

// domainFromSimpleType converts an enumerated simple type to a Domain.
func domainFromSimpleType(st *xsdSimpleType, name string) *model.Domain {
	if st.Restriction == nil || len(st.Restriction.Enumerations) == 0 {
		return nil
	}
	d := &model.Domain{Name: name, Doc: st.Annotation.text()}
	for _, en := range st.Restriction.Enumerations {
		d.Values = append(d.Values, model.DomainValue{
			Code: en.Value,
			Doc:  en.Annotation.text(),
		})
	}
	return d
}

func stripPrefix(qname string) string {
	if i := strings.LastIndex(qname, ":"); i >= 0 {
		return qname[i+1:]
	}
	return qname
}

func parentID(p *model.Element) string {
	if p == nil {
		return "(root)"
	}
	return p.ID
}
