package xmlschema

import (
	"os"
	"strings"
	"testing"

	"repro/internal/model"
)

// poXSD is the Figure 2 source schema expressed as an XSD.
const poXSD = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:annotation><xs:documentation>Purchase order message</xs:documentation></xs:annotation>
  <xs:element name="purchaseOrder">
    <xs:annotation><xs:documentation>A purchase order submitted by a customer</xs:documentation></xs:annotation>
    <xs:complexType>
      <xs:sequence>
        <xs:element name="shipTo">
          <xs:annotation><xs:documentation>The shipping destination</xs:documentation></xs:annotation>
          <xs:complexType>
            <xs:sequence>
              <xs:element name="firstName" type="xs:string">
                <xs:annotation><xs:documentation>Given name of the recipient</xs:documentation></xs:annotation>
              </xs:element>
              <xs:element name="lastName" type="xs:string"/>
              <xs:element name="subtotal" type="xs:decimal" minOccurs="0"/>
            </xs:sequence>
            <xs:attribute name="country" type="xs:string" use="required">
              <xs:annotation><xs:documentation>ISO country code</xs:documentation></xs:annotation>
            </xs:attribute>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

func TestLoadPurchaseOrder(t *testing.T) {
	s, err := Load("purchaseOrder", strings.NewReader(poXSD))
	if err != nil {
		t.Fatal(err)
	}
	if s.Doc != "Purchase order message" {
		t.Errorf("schema doc = %q", s.Doc)
	}
	po := s.Element("purchaseOrder/purchaseOrder")
	if po == nil || po.Kind != model.KindEntity {
		t.Fatalf("purchaseOrder element: %+v", po)
	}
	if po.Doc != "A purchase order submitted by a customer" {
		t.Errorf("po doc = %q", po.Doc)
	}
	shipTo := s.Element("purchaseOrder/purchaseOrder/shipTo")
	if shipTo == nil || shipTo.Kind != model.KindEntity {
		t.Fatal("shipTo missing or wrong kind")
	}
	fn := s.Element("purchaseOrder/purchaseOrder/shipTo/firstName")
	if fn == nil || fn.Kind != model.KindAttribute || fn.DataType != "string" {
		t.Fatalf("firstName: %+v", fn)
	}
	if !fn.Required {
		t.Error("firstName (default minOccurs) should be required")
	}
	st := s.Element("purchaseOrder/purchaseOrder/shipTo/subtotal")
	if st.Required {
		t.Error("minOccurs=0 should not be required")
	}
	if st.DataType != "decimal" {
		t.Errorf("subtotal type = %q", st.DataType)
	}
	country := s.Element("purchaseOrder/purchaseOrder/shipTo/country")
	if country == nil || country.EdgeFromParent != model.ContainsAttribute {
		t.Fatalf("country attribute: %+v", country)
	}
	if !country.Required || country.Doc != "ISO country code" {
		t.Errorf("country: %+v", country)
	}
}

const enumXSD = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:simpleType name="AircraftType">
    <xs:annotation><xs:documentation>ICAO aircraft designators</xs:documentation></xs:annotation>
    <xs:restriction base="xs:string">
      <xs:enumeration value="B738"><xs:annotation><xs:documentation>Boeing 737-800</xs:documentation></xs:annotation></xs:enumeration>
      <xs:enumeration value="A320"><xs:annotation><xs:documentation>Airbus A320</xs:documentation></xs:annotation></xs:enumeration>
    </xs:restriction>
  </xs:simpleType>
  <xs:element name="flight">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="acType" type="AircraftType"/>
        <xs:element name="status">
          <xs:simpleType>
            <xs:restriction base="xs:string">
              <xs:enumeration value="scheduled"/>
              <xs:enumeration value="airborne"/>
              <xs:enumeration value="landed"/>
            </xs:restriction>
          </xs:simpleType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

func TestLoadEnumerationsBecomeDomains(t *testing.T) {
	s, err := Load("atc", strings.NewReader(enumXSD))
	if err != nil {
		t.Fatal(err)
	}
	d := s.Domains["AircraftType"]
	if d == nil {
		t.Fatal("named enumerated simple type should become a domain")
	}
	if d.Doc != "ICAO aircraft designators" || len(d.Values) != 2 {
		t.Errorf("domain = %+v", d)
	}
	if d.Values[0].Code != "B738" || d.Values[0].Doc != "Boeing 737-800" {
		t.Errorf("value = %+v", d.Values[0])
	}
	ac := s.Element("atc/flight/acType")
	if ac.DomainRef != "AircraftType" || ac.DataType != "string" {
		t.Errorf("acType: %+v", ac)
	}
	// Inline (anonymous) enumeration gets a synthesized domain.
	status := s.Element("atc/flight/status")
	if status.DomainRef == "" {
		t.Fatal("inline enumeration should synthesize a domain")
	}
	if sd := s.DomainOf(status); sd == nil || len(sd.Values) != 3 {
		t.Errorf("status domain: %+v", sd)
	}
}

func TestLoadNamedComplexType(t *testing.T) {
	src := `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:complexType name="Address">
    <xs:annotation><xs:documentation>A postal address</xs:documentation></xs:annotation>
    <xs:sequence>
      <xs:element name="street" type="xs:string"/>
      <xs:element name="city" type="xs:string"/>
    </xs:sequence>
  </xs:complexType>
  <xs:element name="shipTo" type="Address"/>
  <xs:element name="billTo" type="Address"/>
</xs:schema>`
	s, err := Load("addr", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"addr/shipTo/street", "addr/billTo/city"} {
		if s.Element(id) == nil {
			t.Errorf("type reference not expanded: %s missing", id)
		}
	}
	if got := s.Element("addr/shipTo").Doc; got != "A postal address" {
		t.Errorf("complexType doc not inherited: %q", got)
	}
	if got := s.Element("addr/shipTo").DataType; got != "Address" {
		t.Errorf("entity DataType = %q", got)
	}
}

func TestLoadChoiceAndAll(t *testing.T) {
	src := `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="payment">
    <xs:complexType>
      <xs:choice>
        <xs:element name="creditCard" type="xs:string"/>
        <xs:element name="check" type="xs:string"/>
      </xs:choice>
    </xs:complexType>
  </xs:element>
  <xs:element name="meta">
    <xs:complexType>
      <xs:all>
        <xs:element name="created" type="xs:date"/>
      </xs:all>
    </xs:complexType>
  </xs:element>
</xs:schema>`
	s, err := Load("mixed", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"mixed/payment/creditCard", "mixed/payment/check", "mixed/meta/created"} {
		if s.Element(id) == nil {
			t.Errorf("missing %s", id)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("bad", strings.NewReader("not xml at all <<<")); err == nil {
		t.Error("malformed XML should error")
	}
	noName := `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element><xs:complexType/></xs:element>
</xs:schema>`
	if _, err := Load("bad", strings.NewReader(noName)); err == nil {
		t.Error("element without name should error")
	}
}

func TestDepthLimit(t *testing.T) {
	// A self-referential named type would recurse forever without the
	// depth guard.
	src := `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:complexType name="Node">
    <xs:sequence><xs:element name="child" type="Node"/></xs:sequence>
  </xs:complexType>
  <xs:element name="root" type="Node"/>
</xs:schema>`
	_, err := Load("recursive", strings.NewReader(src))
	if err == nil || !strings.Contains(err.Error(), "nesting") {
		t.Errorf("err = %v, want nesting-limit error", err)
	}
}

func TestLoadFileStem(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/orders.xsd"
	if err := writeFile(path, poXSD); err != nil {
		t.Fatal(err)
	}
	s, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "orders" {
		t.Errorf("Name = %q, want file stem", s.Name)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestLeafTypeVariants(t *testing.T) {
	src := `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:simpleType name="Plain">
    <xs:restriction base="xs:token"/>
  </xs:simpleType>
  <xs:element name="e">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="viaNamed" type="Plain"/>
        <xs:element name="noType"/>
        <xs:element name="inlineNoEnum">
          <xs:simpleType><xs:restriction base="xs:integer"/></xs:simpleType>
        </xs:element>
      </xs:sequence>
      <xs:attribute name="attrInline">
        <xs:simpleType>
          <xs:restriction base="xs:string">
            <xs:enumeration value="a"/><xs:enumeration value="b"/>
          </xs:restriction>
        </xs:simpleType>
      </xs:attribute>
    </xs:complexType>
  </xs:element>
</xs:schema>`
	s, err := Load("leaf", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// Named non-enumerated simple type resolves to its base.
	if got := s.Element("leaf/e/viaNamed").DataType; got != "token" {
		t.Errorf("viaNamed type = %q", got)
	}
	// Missing type defaults to string.
	if got := s.Element("leaf/e/noType").DataType; got != "string" {
		t.Errorf("noType type = %q", got)
	}
	// Inline simple type without enumeration keeps the base type, no domain.
	ine := s.Element("leaf/e/inlineNoEnum")
	if ine.DataType != "integer" || ine.DomainRef != "" {
		t.Errorf("inlineNoEnum: %+v", ine)
	}
	// Inline enumerated attribute synthesizes a domain.
	ai := s.Element("leaf/e/attrInline")
	if ai.DomainRef == "" || s.DomainOf(ai) == nil {
		t.Errorf("attrInline: %+v", ai)
	}
}

func TestAttributeWithoutNameErrors(t *testing.T) {
	src := `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="e"><xs:complexType><xs:attribute type="xs:string"/></xs:complexType></xs:element>
</xs:schema>`
	if _, err := Load("bad", strings.NewReader(src)); err == nil {
		t.Error("attribute without name should error")
	}
}

func TestSchemaLevelAnnotationOnly(t *testing.T) {
	src := `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:annotation>
    <xs:documentation>  first   part </xs:documentation>
    <xs:documentation>second</xs:documentation>
  </xs:annotation>
</xs:schema>`
	s, err := Load("ann", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Doc != "first part second" {
		t.Errorf("multi-doc annotation = %q", s.Doc)
	}
}
