package match

import (
	"sort"

	"repro/internal/lingo"
	"repro/internal/model"
)

// Blocking (candidate generation). At registry scale the full
// source×target cross product is the enemy: 10k×10k pairs is 10^8 cells
// per voter. BuildCandidates prunes that space *before* any voter runs,
// using only per-element evidence that can be inverted into indexes:
//
//   - an inverted index over stemmed name tokens (lingo.Tokenize via the
//     context's precomputed NameTokens),
//   - an inverted index over thesaurus-expanded surface tokens, so a
//     synonym rename ("client" → "customer") still meets its partner,
//   - a character q-gram index over lowercased names (lingo.NGrams), so
//     abbreviations and typos sharing substrings stay reachable,
//   - TF-IDF postings over documentation terms (lingo.SortedVector) that
//     accumulate exact cosine contributions sparsely — the top-k cosine
//     prefilter — instead of comparing every vector pair,
//   - a hierarchical channel: children of a source element's surviving
//     parent candidates get a bump proportional to the parent pair's
//     score. This is what rescues the pairs no per-element evidence can
//     reach (an undocumented attribute renamed past the thesaurus) —
//     the parent entities usually still recognize each other.
//
// Each channel bumps a per-target accumulator; the top-K targets per
// source row survive. The result is a Pattern the whole pipeline shares:
// voters, merger and flooding only ever touch surviving cells.
type BlockingOptions struct {
	// Enabled turns blocking on. Off (the zero value) keeps the dense
	// pipeline bit-identical to the pre-blocking engine.
	Enabled bool
	// PerSourceK is the number of candidate targets kept per source
	// element (0 = default 24).
	PerSourceK int
	// QGramSize is the character q-gram width for the name-substring
	// channel (0 = default 3, negative = channel disabled).
	QGramSize int
	// MaxPostingFrac caps a posting list's fan-out at this fraction of
	// the target count (0 = default 0.25): terms more common than that
	// carry almost no information (their IDF is near zero) but would
	// reintroduce quadratic work.
	MaxPostingFrac float64
	// NoParentClosure disables the structural closure that adds the
	// parent pair of every surviving pair. The closure is what lets
	// similarity flooding propagate through the sparse matrix, so leave
	// it on outside of ablations.
	NoParentClosure bool
}

func (o BlockingOptions) withDefaults() BlockingOptions {
	if o.PerSourceK <= 0 {
		o.PerSourceK = 24
	}
	if o.QGramSize == 0 {
		o.QGramSize = 3
	}
	if o.MaxPostingFrac <= 0 {
		o.MaxPostingFrac = 0.25
	}
	return o
}

// Channel weights. Token identity is the strongest single signal; the
// expanded channel is deliberately weaker (expansion inflates sets); the
// whole q-gram channel sums to at most 1 for a fully shared gram set;
// documentation cosine sums to at most its weight.
const (
	blockTokenWeight  = 1.0
	blockExpandWeight = 0.4
	blockDocWeight    = 1.5
	// blockStructWeight scales the hierarchical bump; it is multiplied
	// by the parent candidate's relative score, so children of the
	// best-ranked parent pair receive the full weight and children of
	// marginal parent candidates receive proportionally less.
	blockStructWeight = 1.2
)

// BuildCandidates runs the blocking index over ctx's schema pair and
// returns the surviving cell pattern. The construction is deterministic:
// postings are built in target order, each source consults its terms in
// sorted order, and ties in the top-K cut break by ascending column.
func BuildCandidates(ctx *Context, opts BlockingOptions) *Pattern {
	opts = opts.withDefaults()
	srcs := ctx.Source.Elements()
	tgts := ctx.Target.Elements()
	nt := len(tgts)
	maxPost := int(opts.MaxPostingFrac*float64(nt)) + 8

	type docHit struct {
		j int32
		w float64
	}
	tokPost := make(map[string][]int32)
	expPost := make(map[string][]int32)
	docPost := make(map[string][]docHit)
	var qPost map[string][]int32
	if opts.QGramSize > 0 {
		qPost = make(map[string][]int32)
	}
	for j, t := range tgts {
		jj := int32(j)
		for _, tok := range distinctSorted(ctx.NameTokens(t)) {
			tokPost[tok] = append(tokPost[tok], jj)
		}
		for _, tok := range distinctSorted(ctx.ExpandedNameTokens(t)) {
			expPost[tok] = append(expPost[tok], jj)
		}
		if qPost != nil {
			for _, g := range gramKeys(lower(t.Name), opts.QGramSize) {
				qPost[g] = append(qPost[g], jj)
			}
		}
		if sv := ctx.DocVectorSorted(t); sv.Norm > 0 {
			for k, term := range sv.Terms {
				docPost[term] = append(docPost[term], docHit{jj, sv.Weights[k] / sv.Norm})
			}
		}
	}

	// Hierarchical channel inputs: target children by parent row, source
	// parent row by child row. Elements() is pre-order, so a source's
	// parent row is always finished before the source itself is scored.
	tgtIdx := make(map[string]int32, nt)
	for j, t := range tgts {
		tgtIdx[t.ID] = int32(j)
	}
	tgtChildren := make([][]int32, nt)
	for j, t := range tgts {
		if q := t.Parent(); q != nil && q.Kind != model.KindSchema {
			if qi, ok := tgtIdx[q.ID]; ok {
				tgtChildren[qi] = append(tgtChildren[qi], int32(j))
			}
		}
	}
	srcIdx := make(map[string]int, len(srcs))
	for i, s := range srcs {
		srcIdx[s.ID] = i
	}

	acc := make([]float64, nt)
	touched := make([]int32, 0, 4*opts.PerSourceK)
	bump := func(j int32, w float64) {
		if acc[j] == 0 {
			touched = append(touched, j)
		}
		acc[j] += w
	}
	rows := make([][]int32, len(srcs))
	rowScores := make([][]float64, len(srcs))
	for i, s := range srcs {
		for _, tok := range distinctSorted(ctx.NameTokens(s)) {
			if p := tokPost[tok]; len(p) <= maxPost {
				for _, j := range p {
					bump(j, blockTokenWeight)
				}
			}
		}
		for _, tok := range distinctSorted(ctx.ExpandedNameTokens(s)) {
			if p := expPost[tok]; len(p) <= maxPost {
				for _, j := range p {
					bump(j, blockExpandWeight)
				}
			}
		}
		if qPost != nil {
			grams := gramKeys(lower(s.Name), opts.QGramSize)
			if len(grams) > 0 {
				gw := 1.0 / float64(len(grams))
				for _, g := range grams {
					if p := qPost[g]; len(p) <= maxPost {
						for _, j := range p {
							bump(j, gw)
						}
					}
				}
			}
		}
		if sv := ctx.DocVectorSorted(s); sv.Norm > 0 {
			for k, term := range sv.Terms {
				w := blockDocWeight * sv.Weights[k] / sv.Norm
				if p := docPost[term]; len(p) <= maxPost {
					for _, h := range p {
						bump(h.j, w*h.w)
					}
				}
			}
		}
		if p := s.Parent(); p != nil && p.Kind != model.KindSchema {
			if pi, ok := srcIdx[p.ID]; ok && pi < i && len(rows[pi]) > 0 {
				best := 0.0
				for _, sc := range rowScores[pi] {
					if sc > best {
						best = sc
					}
				}
				if best > 0 {
					for k, c := range rows[pi] {
						w := blockStructWeight * rowScores[pi][k] / best
						for _, j := range tgtChildren[c] {
							bump(j, w)
						}
					}
				}
			}
		}
		rows[i], rowScores[i] = topKColumns(acc, touched, opts.PerSourceK)
		for _, j := range touched {
			acc[j] = 0
		}
		touched = touched[:0]
	}

	if !opts.NoParentClosure {
		closeOverParents(rows, ctx)
	}
	return NewPattern(rows)
}

// closeOverParents adds, for every surviving pair, the pair of its
// parents (transitively), so flooding's down-sweep always finds the
// parent cell it reads and the up-sweep has an entity-level cell to
// lift. Without this, a sparse matrix would silently disable structural
// propagation for rows whose entity pair scored below the lexical cut.
func closeOverParents(rows [][]int32, ctx *Context) {
	srcs := ctx.Source.Elements()
	tgts := ctx.Target.Elements()
	srcIdx := make(map[string]int32, len(srcs))
	for i, e := range srcs {
		srcIdx[e.ID] = int32(i)
	}
	tgtIdx := make(map[string]int32, len(tgts))
	for j, e := range tgts {
		tgtIdx[e.ID] = int32(j)
	}
	present := make(map[int64]bool)
	type pair struct{ i, j int32 }
	var queue []pair
	for i, cols := range rows {
		for _, j := range cols {
			present[cellKey(i, int(j))] = true
			queue = append(queue, pair{int32(i), j})
		}
	}
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		ps := srcs[p.i].Parent()
		pt := tgts[p.j].Parent()
		if ps == nil || pt == nil || ps.Kind == model.KindSchema || pt.Kind == model.KindSchema {
			continue
		}
		pi, ok1 := srcIdx[ps.ID]
		pj, ok2 := tgtIdx[pt.ID]
		if !ok1 || !ok2 {
			continue
		}
		key := cellKey(int(pi), int(pj))
		if present[key] {
			continue
		}
		present[key] = true
		rows[pi] = append(rows[pi], pj)
		queue = append(queue, pair{pi, pj})
	}
}

// distinctSorted returns the distinct tokens of a slice in sorted order
// (a fresh slice; the input is not modified).
func distinctSorted(toks []string) []string {
	if len(toks) == 0 {
		return nil
	}
	out := make([]string, len(toks))
	copy(out, toks)
	sort.Strings(out)
	w := 1
	for _, t := range out[1:] {
		if t != out[w-1] {
			out[w] = t
			w++
		}
	}
	return out[:w]
}

// gramKeys returns the distinct character q-grams of s in sorted order.
func gramKeys(s string, n int) []string {
	grams := lingo.NGrams(s, n)
	if len(grams) == 0 {
		return nil
	}
	out := make([]string, 0, len(grams))
	for g := range grams {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// topKColumns selects the k highest-scoring touched columns (score
// descending, column ascending on ties) and returns them sorted
// ascending, ready for a Pattern row, alongside their scores (aligned
// with the returned columns; the hierarchical channel reads them).
func topKColumns(acc []float64, touched []int32, k int) ([]int32, []float64) {
	if len(touched) == 0 {
		return nil, nil
	}
	cand := make([]int32, len(touched))
	copy(cand, touched)
	sort.Slice(cand, func(a, b int) bool {
		x, y := cand[a], cand[b]
		if acc[x] != acc[y] {
			return acc[x] > acc[y]
		}
		return x < y
	})
	if len(cand) > k {
		cand = cand[:k]
	}
	sort.Slice(cand, func(a, b int) bool { return cand[a] < cand[b] })
	scores := make([]float64, len(cand))
	for i, c := range cand {
		scores[i] = acc[c]
	}
	return cand, scores
}
