// Package match implements the Harmony match engine's voting layer
// (paper §4, Figure 1): a panel of match voters, each scoring every
// [source element, target element] pair with a confidence in (-1, +1); a
// vote merger that combines the panel magnitude- and performance-weighted;
// and the structural similarity-flooding adjustment. Baseline matchers
// (name equality, edit distance, Melnik-style flooding, a COMA-style
// composite) live here too so that experiments can compare approaches.
package match

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/model"
)

// Confidence semantics (paper §4): -1 = definitely no correspondence,
// +1 = definite correspondence, 0 = complete uncertainty.

// Matrix holds a confidence score for (source, target) element pairs.
// Element order is the schemata's deterministic pre-order.
//
// A matrix is either dense — Scores[i][j] materialises the full cross
// product, today's default — or sparse: only the cells of a blocking
// Pattern are stored (CSR-style: one backing value array carved into
// per-row slices aligned with Pattern.Rows), and every other pair reads
// as 0 ("no evidence"). Dense callers may keep indexing Scores directly;
// mode-agnostic callers use At/SetAt/Each, which are exact on both
// representations. Out-of-pattern writes to a sparse matrix (user
// decision pins) land in an overflow map so a Set never silently drops.
type Matrix struct {
	Sources []*model.Element
	Targets []*model.Element
	// Scores[i][j] is the confidence for (Sources[i], Targets[j]).
	// nil in sparse mode.
	Scores [][]float64

	// Sparse storage: pat is the shared immutable cell pattern,
	// vals[i][k] the value of cell (i, pat.Rows[i][k]) carved out of the
	// single backing slice, and extra holds out-of-pattern writes keyed
	// by i<<32|j.
	pat   *Pattern
	vals  [][]float64
	extra map[int64]float64

	srcIdx map[string]int
	tgtIdx map[string]int
}

// NewMatrix allocates a zero matrix over the given element lists.
func NewMatrix(sources, targets []*model.Element) *Matrix {
	m := &Matrix{
		Sources: sources,
		Targets: targets,
		Scores:  make([][]float64, len(sources)),
		srcIdx:  make(map[string]int, len(sources)),
		tgtIdx:  make(map[string]int, len(targets)),
	}
	for i := range m.Scores {
		m.Scores[i] = make([]float64, len(targets))
	}
	for i, e := range sources {
		m.srcIdx[e.ID] = i
	}
	for j, e := range targets {
		m.tgtIdx[e.ID] = j
	}
	return m
}

// MatrixOver builds a matrix over all non-root elements of two schemata.
func MatrixOver(source, target *model.Schema) *Matrix {
	return NewMatrix(source.Elements(), target.Elements())
}

// NewSparseMatrix allocates a zero sparse matrix storing only the cells
// of pat. pat.Rows must have exactly len(sources) rows with columns
// < len(targets); the pattern is shared, not copied.
func NewSparseMatrix(sources, targets []*model.Element, pat *Pattern) *Matrix {
	m := &Matrix{
		Sources: sources,
		Targets: targets,
		pat:     pat,
		vals:    make([][]float64, len(sources)),
		srcIdx:  make(map[string]int, len(sources)),
		tgtIdx:  make(map[string]int, len(targets)),
	}
	back := make([]float64, pat.NNZ())
	off := 0
	for i, cols := range pat.Rows {
		m.vals[i] = back[off : off+len(cols) : off+len(cols)]
		off += len(cols)
	}
	for i, e := range sources {
		m.srcIdx[e.ID] = i
	}
	for j, e := range targets {
		m.tgtIdx[e.ID] = j
	}
	return m
}

// NewMatrixLike allocates a zero matrix with proto's shape and storage
// mode (sharing proto's element lists and, in sparse mode, its pattern).
func NewMatrixLike(proto *Matrix) *Matrix {
	if proto.Sparse() {
		return NewSparseMatrix(proto.Sources, proto.Targets, proto.pat)
	}
	return NewMatrix(proto.Sources, proto.Targets)
}

// Sparse reports whether the matrix stores only a blocking pattern's
// cells.
func (m *Matrix) Sparse() bool { return m.pat != nil }

// CandidatePattern returns the sparsity pattern (nil for dense).
func (m *Matrix) CandidatePattern() *Pattern { return m.pat }

// NNZ returns the number of stored cells: the full cross product for a
// dense matrix, pattern cells plus overflow cells for a sparse one.
func (m *Matrix) NNZ() int {
	if !m.Sparse() {
		return len(m.Sources) * len(m.Targets)
	}
	return m.pat.NNZ() + len(m.extra)
}

// At returns the confidence at (row i, column j). Sparse matrices read 0
// for any pair outside the pattern and overflow storage.
func (m *Matrix) At(i, j int) float64 {
	if !m.Sparse() {
		return m.Scores[i][j]
	}
	if k := m.pat.pos(i, int32(j)); k >= 0 {
		return m.vals[i][k]
	}
	if len(m.extra) > 0 {
		return m.extra[cellKey(i, j)]
	}
	return 0
}

// SetAt assigns the confidence at (row i, column j). On a sparse matrix
// an out-of-pattern write lands in overflow storage (setting such a cell
// back to exactly 0 removes it again), so user decision pins always
// stick regardless of the blocking pattern.
func (m *Matrix) SetAt(i, j int, v float64) {
	if !m.Sparse() {
		m.Scores[i][j] = v
		return
	}
	if k := m.pat.pos(i, int32(j)); k >= 0 {
		m.vals[i][k] = v
		return
	}
	if v == 0 {
		delete(m.extra, cellKey(i, j))
		return
	}
	if m.extra == nil {
		m.extra = make(map[int64]float64)
	}
	m.extra[cellKey(i, j)] = v
}

func cellKey(i, j int) int64 { return int64(i)<<32 | int64(uint32(j)) }

// Each calls fn for every stored cell in row-major (i asc, then j asc)
// order: all pairs for a dense matrix, pattern plus overflow cells for a
// sparse one. fn may write the visited cell via SetAt but must not touch
// other out-of-pattern cells.
func (m *Matrix) Each(fn func(i, j int, v float64)) {
	if !m.Sparse() {
		for i := range m.Scores {
			row := m.Scores[i]
			for j, v := range row {
				fn(i, j, v)
			}
		}
		return
	}
	ex := m.sortedExtraKeys()
	x := 0
	for i := range m.vals {
		cols := m.pat.Rows[i]
		k := 0
		for x < len(ex) && int(ex[x]>>32) == i {
			j := int(uint32(ex[x]))
			for k < len(cols) && int(cols[k]) < j {
				fn(i, int(cols[k]), m.vals[i][k])
				k++
			}
			fn(i, j, m.extra[ex[x]])
			x++
		}
		for ; k < len(cols); k++ {
			fn(i, int(cols[k]), m.vals[i][k])
		}
	}
}

// sortedExtraKeys returns the overflow cell keys in row-major order
// (the i<<32|j packing makes that a plain integer sort).
func (m *Matrix) sortedExtraKeys() []int64 {
	if len(m.extra) == 0 {
		return nil
	}
	keys := make([]int64, 0, len(m.extra))
	for k := range m.extra {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	return keys
}

// ToDense returns a dense matrix with the same values (the receiver
// itself when already dense). Baselines that index Scores directly
// densify first.
func (m *Matrix) ToDense() *Matrix {
	if !m.Sparse() {
		return m
	}
	out := NewMatrix(m.Sources, m.Targets)
	m.Each(func(i, j int, v float64) { out.Scores[i][j] = v })
	return out
}

// SourceIndex returns the row of a source element ID, or -1.
func (m *Matrix) SourceIndex(id string) int {
	if i, ok := m.srcIdx[id]; ok {
		return i
	}
	return -1
}

// TargetIndex returns the column of a target element ID, or -1.
func (m *Matrix) TargetIndex(id string) int {
	if j, ok := m.tgtIdx[id]; ok {
		return j
	}
	return -1
}

// Get returns the confidence for a pair of element IDs (0 when unknown).
func (m *Matrix) Get(srcID, tgtID string) float64 {
	i, j := m.SourceIndex(srcID), m.TargetIndex(tgtID)
	if i < 0 || j < 0 {
		return 0
	}
	return m.At(i, j)
}

// Set assigns the confidence for a pair of element IDs.
func (m *Matrix) Set(srcID, tgtID string, v float64) {
	i, j := m.SourceIndex(srcID), m.TargetIndex(tgtID)
	if i < 0 || j < 0 {
		return
	}
	m.SetAt(i, j, v)
}

// Clone deep-copies the matrix (sharing the element slices and, in
// sparse mode, the immutable pattern).
func (m *Matrix) Clone() *Matrix {
	out := NewMatrixLike(m)
	if !m.Sparse() {
		for i := range m.Scores {
			copy(out.Scores[i], m.Scores[i])
		}
		return out
	}
	for i := range m.vals {
		copy(out.vals[i], m.vals[i])
	}
	if len(m.extra) > 0 {
		out.extra = make(map[int64]float64, len(m.extra))
		for k, v := range m.extra {
			out.extra[k] = v
		}
	}
	return out
}

// Clamp bounds every stored score to [lo, hi]; the engine uses (-1, +1)
// open bounds for machine scores, reserving exactly ±1 for user
// decisions. Sparse matrices clamp stored cells only — implicit zeros
// stay zero.
func (m *Matrix) Clamp(lo, hi float64) {
	if m.Sparse() {
		m.Each(func(i, j int, v float64) {
			if v < lo {
				m.SetAt(i, j, lo)
			}
			if v > hi {
				m.SetAt(i, j, hi)
			}
		})
		return
	}
	for i := range m.Scores {
		for j := range m.Scores[i] {
			if m.Scores[i][j] < lo {
				m.Scores[i][j] = lo
			}
			if m.Scores[i][j] > hi {
				m.Scores[i][j] = hi
			}
		}
	}
}

// Correspondence is one scored pair, the unit the GUI displays as a line.
type Correspondence struct {
	Source     *model.Element
	Target     *model.Element
	Confidence float64
}

// String renders "source ↔ target (+0.80)".
func (c Correspondence) String() string {
	return fmt.Sprintf("%s ↔ %s (%+.2f)", c.Source.ID, c.Target.ID, c.Confidence)
}

// Above returns all pairs with confidence >= threshold, row-major order.
// On a sparse matrix only stored cells participate: a pair that blocking
// pruned is "no evidence", never a link (even when threshold <= 0).
func (m *Matrix) Above(threshold float64) []Correspondence {
	var out []Correspondence
	m.Each(func(i, j int, v float64) {
		if v >= threshold {
			out = append(out, Correspondence{m.Sources[i], m.Targets[j], v})
		}
	})
	return out
}

// MaxPerSource returns, for each source element, its highest-confidence
// target pair(s) — ties included — provided the score is at least
// threshold. This is the paper's third link filter ("displays, for each
// schema element, those links with maximal confidence (usually a single
// link, but ties are possible)").
func (m *Matrix) MaxPerSource(threshold float64) []Correspondence {
	var out []Correspondence
	for i, s := range m.Sources {
		best := math.Inf(-1)
		m.eachInRow(i, func(j int, v float64) {
			if v > best {
				best = v
			}
		})
		if best < threshold {
			continue
		}
		m.eachInRow(i, func(j int, v float64) {
			if v == best {
				out = append(out, Correspondence{s, m.Targets[j], best})
			}
		})
	}
	return out
}

// eachInRow calls fn for every stored cell of row i in ascending column
// order (all columns for a dense matrix).
func (m *Matrix) eachInRow(i int, fn func(j int, v float64)) {
	if !m.Sparse() {
		for j, v := range m.Scores[i] {
			fn(j, v)
		}
		return
	}
	var ex []int64
	if len(m.extra) > 0 {
		for k := range m.extra {
			if int(k>>32) == i {
				ex = append(ex, k)
			}
		}
		sort.Slice(ex, func(a, b int) bool { return ex[a] < ex[b] })
	}
	cols := m.pat.Rows[i]
	k, x := 0, 0
	for x < len(ex) {
		j := int(uint32(ex[x]))
		for k < len(cols) && int(cols[k]) < j {
			fn(int(cols[k]), m.vals[i][k])
			k++
		}
		fn(j, m.extra[ex[x]])
		x++
	}
	for ; k < len(cols); k++ {
		fn(int(cols[k]), m.vals[i][k])
	}
}

// StableMatching selects a one-to-one correspondence set by greedy
// highest-score-first assignment (the standard "stable marriage"-style
// selection used by matcher evaluations). Only pairs scoring at least
// threshold participate.
func (m *Matrix) StableMatching(threshold float64) []Correspondence {
	type cell struct {
		i, j int
		v    float64
	}
	var cells []cell
	m.Each(func(i, j int, v float64) {
		if v >= threshold {
			cells = append(cells, cell{i, j, v})
		}
	})
	// Sort descending by score, then by indices — a total order, so the
	// selection is deterministic even on fully tied matrices.
	sort.Slice(cells, func(a, b int) bool {
		x, y := cells[a], cells[b]
		if x.v != y.v {
			return x.v > y.v
		}
		if x.i != y.i {
			return x.i < y.i
		}
		return x.j < y.j
	})
	usedS := make([]bool, len(m.Sources))
	usedT := make([]bool, len(m.Targets))
	var out []Correspondence
	for _, c := range cells {
		if usedS[c.i] || usedT[c.j] {
			continue
		}
		usedS[c.i] = true
		usedT[c.j] = true
		out = append(out, Correspondence{m.Sources[c.i], m.Targets[c.j], c.v})
	}
	return out
}

// String renders the matrix as a compact table for debugging and the
// Figure 3 reproduction.
func (m *Matrix) String() string {
	var b strings.Builder
	b.WriteString("            ")
	for _, t := range m.Targets {
		fmt.Fprintf(&b, "%-14s", tail(t.ID))
	}
	b.WriteString("\n")
	for i, s := range m.Sources {
		fmt.Fprintf(&b, "%-12s", tail(s.ID))
		for j := range m.Targets {
			fmt.Fprintf(&b, "%+.2f         ", m.At(i, j))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func tail(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}
