// Package match implements the Harmony match engine's voting layer
// (paper §4, Figure 1): a panel of match voters, each scoring every
// [source element, target element] pair with a confidence in (-1, +1); a
// vote merger that combines the panel magnitude- and performance-weighted;
// and the structural similarity-flooding adjustment. Baseline matchers
// (name equality, edit distance, Melnik-style flooding, a COMA-style
// composite) live here too so that experiments can compare approaches.
package match

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/model"
)

// Confidence semantics (paper §4): -1 = definitely no correspondence,
// +1 = definite correspondence, 0 = complete uncertainty.

// Matrix holds a confidence score for every (source, target) element
// pair. Element order is the schemata's deterministic pre-order.
type Matrix struct {
	Sources []*model.Element
	Targets []*model.Element
	// Scores[i][j] is the confidence for (Sources[i], Targets[j]).
	Scores [][]float64

	srcIdx map[string]int
	tgtIdx map[string]int
}

// NewMatrix allocates a zero matrix over the given element lists.
func NewMatrix(sources, targets []*model.Element) *Matrix {
	m := &Matrix{
		Sources: sources,
		Targets: targets,
		Scores:  make([][]float64, len(sources)),
		srcIdx:  make(map[string]int, len(sources)),
		tgtIdx:  make(map[string]int, len(targets)),
	}
	for i := range m.Scores {
		m.Scores[i] = make([]float64, len(targets))
	}
	for i, e := range sources {
		m.srcIdx[e.ID] = i
	}
	for j, e := range targets {
		m.tgtIdx[e.ID] = j
	}
	return m
}

// MatrixOver builds a matrix over all non-root elements of two schemata.
func MatrixOver(source, target *model.Schema) *Matrix {
	return NewMatrix(source.Elements(), target.Elements())
}

// SourceIndex returns the row of a source element ID, or -1.
func (m *Matrix) SourceIndex(id string) int {
	if i, ok := m.srcIdx[id]; ok {
		return i
	}
	return -1
}

// TargetIndex returns the column of a target element ID, or -1.
func (m *Matrix) TargetIndex(id string) int {
	if j, ok := m.tgtIdx[id]; ok {
		return j
	}
	return -1
}

// Get returns the confidence for a pair of element IDs (0 when unknown).
func (m *Matrix) Get(srcID, tgtID string) float64 {
	i, j := m.SourceIndex(srcID), m.TargetIndex(tgtID)
	if i < 0 || j < 0 {
		return 0
	}
	return m.Scores[i][j]
}

// Set assigns the confidence for a pair of element IDs.
func (m *Matrix) Set(srcID, tgtID string, v float64) {
	i, j := m.SourceIndex(srcID), m.TargetIndex(tgtID)
	if i < 0 || j < 0 {
		return
	}
	m.Scores[i][j] = v
}

// Clone deep-copies the matrix (sharing the element slices).
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Sources, m.Targets)
	for i := range m.Scores {
		copy(out.Scores[i], m.Scores[i])
	}
	return out
}

// Clamp bounds every score to [lo, hi]; the engine uses (-1, +1) open
// bounds for machine scores, reserving exactly ±1 for user decisions.
func (m *Matrix) Clamp(lo, hi float64) {
	for i := range m.Scores {
		for j := range m.Scores[i] {
			if m.Scores[i][j] < lo {
				m.Scores[i][j] = lo
			}
			if m.Scores[i][j] > hi {
				m.Scores[i][j] = hi
			}
		}
	}
}

// Correspondence is one scored pair, the unit the GUI displays as a line.
type Correspondence struct {
	Source     *model.Element
	Target     *model.Element
	Confidence float64
}

// String renders "source ↔ target (+0.80)".
func (c Correspondence) String() string {
	return fmt.Sprintf("%s ↔ %s (%+.2f)", c.Source.ID, c.Target.ID, c.Confidence)
}

// Above returns all pairs with confidence >= threshold, row-major order.
func (m *Matrix) Above(threshold float64) []Correspondence {
	var out []Correspondence
	for i, s := range m.Sources {
		for j, t := range m.Targets {
			if m.Scores[i][j] >= threshold {
				out = append(out, Correspondence{s, t, m.Scores[i][j]})
			}
		}
	}
	return out
}

// MaxPerSource returns, for each source element, its highest-confidence
// target pair(s) — ties included — provided the score is at least
// threshold. This is the paper's third link filter ("displays, for each
// schema element, those links with maximal confidence (usually a single
// link, but ties are possible)").
func (m *Matrix) MaxPerSource(threshold float64) []Correspondence {
	var out []Correspondence
	for i, s := range m.Sources {
		best := math.Inf(-1)
		for j := range m.Targets {
			if m.Scores[i][j] > best {
				best = m.Scores[i][j]
			}
		}
		if best < threshold {
			continue
		}
		for j, t := range m.Targets {
			if m.Scores[i][j] == best {
				out = append(out, Correspondence{s, t, best})
			}
		}
	}
	return out
}

// StableMatching selects a one-to-one correspondence set by greedy
// highest-score-first assignment (the standard "stable marriage"-style
// selection used by matcher evaluations). Only pairs scoring at least
// threshold participate.
func (m *Matrix) StableMatching(threshold float64) []Correspondence {
	type cell struct {
		i, j int
		v    float64
	}
	var cells []cell
	for i := range m.Sources {
		for j := range m.Targets {
			if m.Scores[i][j] >= threshold {
				cells = append(cells, cell{i, j, m.Scores[i][j]})
			}
		}
	}
	// Sort descending by score, then by indices — a total order, so the
	// selection is deterministic even on fully tied matrices.
	sort.Slice(cells, func(a, b int) bool {
		x, y := cells[a], cells[b]
		if x.v != y.v {
			return x.v > y.v
		}
		if x.i != y.i {
			return x.i < y.i
		}
		return x.j < y.j
	})
	usedS := make([]bool, len(m.Sources))
	usedT := make([]bool, len(m.Targets))
	var out []Correspondence
	for _, c := range cells {
		if usedS[c.i] || usedT[c.j] {
			continue
		}
		usedS[c.i] = true
		usedT[c.j] = true
		out = append(out, Correspondence{m.Sources[c.i], m.Targets[c.j], c.v})
	}
	return out
}

// String renders the matrix as a compact table for debugging and the
// Figure 3 reproduction.
func (m *Matrix) String() string {
	var b strings.Builder
	b.WriteString("            ")
	for _, t := range m.Targets {
		fmt.Fprintf(&b, "%-14s", tail(t.ID))
	}
	b.WriteString("\n")
	for i, s := range m.Sources {
		fmt.Fprintf(&b, "%-12s", tail(s.ID))
		for j := range m.Targets {
			fmt.Fprintf(&b, "%+.2f         ", m.Scores[i][j])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func tail(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}
