package match

import (
	"testing"

	"repro/internal/model"
)

// floodFixture builds matched parent/child schemata where linguistic
// evidence exists only at one level, so flooding must move it.
func floodFixture() (*model.Schema, *model.Schema) {
	src := model.NewSchema("s", "er")
	e := src.AddElement(nil, "Entity1", model.KindEntity, model.ContainsElement)
	src.AddElement(e, "alpha", model.KindAttribute, model.ContainsAttribute)
	src.AddElement(e, "beta", model.KindAttribute, model.ContainsAttribute)
	f := src.AddElement(nil, "Entity2", model.KindEntity, model.ContainsElement)
	src.AddElement(f, "gamma", model.KindAttribute, model.ContainsAttribute)

	tgt := model.NewSchema("t", "er")
	g := tgt.AddElement(nil, "EntityA", model.KindEntity, model.ContainsElement)
	tgt.AddElement(g, "alpha", model.KindAttribute, model.ContainsAttribute)
	tgt.AddElement(g, "beta", model.KindAttribute, model.ContainsAttribute)
	h := tgt.AddElement(nil, "EntityB", model.KindEntity, model.ContainsElement)
	tgt.AddElement(h, "gamma", model.KindAttribute, model.ContainsAttribute)
	return src, tgt
}

func TestHarmonyFloodUpPropagation(t *testing.T) {
	src, tgt := floodFixture()
	m := MatrixOver(src, tgt)
	// Strong child matches; parents unknown (0).
	m.Set("s/Entity1/alpha", "t/EntityA/alpha", 0.8)
	m.Set("s/Entity1/beta", "t/EntityA/beta", 0.8)
	out := HarmonyFlood(m, src, tgt, FloodOptions{Iterations: 1})
	if got := out.Get("s/Entity1", "t/EntityA"); got <= 0 {
		t.Errorf("parents of matching children should rise: %g", got)
	}
	// Entity2's child doesn't match EntityA's children: no lift.
	if got := out.Get("s/Entity2", "t/EntityA"); got != 0 {
		t.Errorf("unrelated parent pair moved: %g", got)
	}
}

func TestHarmonyFloodDownPropagation(t *testing.T) {
	src, tgt := floodFixture()
	m := MatrixOver(src, tgt)
	// Ambiguous child evidence, strongly mismatched parents.
	m.Set("s/Entity1", "t/EntityB", -0.8)
	m.Set("s/Entity1/alpha", "t/EntityB/gamma", 0.4)
	out := HarmonyFlood(m, src, tgt, FloodOptions{Iterations: 1})
	if got := out.Get("s/Entity1/alpha", "t/EntityB/gamma"); got >= 0.4 {
		t.Errorf("negative parents should drag children down: %g", got)
	}
}

func TestHarmonyFloodPositiveParentsDoNotDrag(t *testing.T) {
	src, tgt := floodFixture()
	m := MatrixOver(src, tgt)
	m.Set("s/Entity1", "t/EntityA", 0.8)
	m.Set("s/Entity1/alpha", "t/EntityA/beta", -0.2)
	out := HarmonyFlood(m, src, tgt, FloodOptions{Iterations: 1})
	// Positive parents do NOT boost children in the Harmony variant
	// (positive flows up only); the -0.2 must not become more negative,
	// and must not be boosted either.
	got := out.Get("s/Entity1/alpha", "t/EntityA/beta")
	if got != -0.2 {
		t.Errorf("child under positive parents changed: %g, want -0.2", got)
	}
}

func TestHarmonyFloodBounded(t *testing.T) {
	src, tgt := floodFixture()
	m := MatrixOver(src, tgt)
	for i := range m.Scores {
		for j := range m.Scores[i] {
			m.Scores[i][j] = 0.95
		}
	}
	out := HarmonyFlood(m, src, tgt, FloodOptions{Iterations: 5})
	for i := range out.Scores {
		for j := range out.Scores[i] {
			if v := out.Scores[i][j]; v < -0.99 || v > 0.99 {
				t.Fatalf("score escaped bounds: %g", v)
			}
		}
	}
}

func TestMelnikFloodDisambiguatesByStructure(t *testing.T) {
	// Two sources with identical names; only structure separates them.
	src := model.NewSchema("s", "er")
	e1 := src.AddElement(nil, "item", model.KindEntity, model.ContainsElement)
	src.AddElement(e1, "price", model.KindAttribute, model.ContainsAttribute)
	e2 := src.AddElement(nil, "thing", model.KindEntity, model.ContainsElement)
	src.AddElement(e2, "weight", model.KindAttribute, model.ContainsAttribute)

	tgt := model.NewSchema("t", "er")
	f1 := tgt.AddElement(nil, "item", model.KindEntity, model.ContainsElement)
	tgt.AddElement(f1, "price", model.KindAttribute, model.ContainsAttribute)
	f2 := tgt.AddElement(nil, "thing", model.KindEntity, model.ContainsElement)
	tgt.AddElement(f2, "weight", model.KindAttribute, model.ContainsAttribute)

	ctx := NewContext(src, tgt)
	m := (MelnikMatcher{}).Vote(ctx)
	right := m.Get("s/item/price", "t/item/price")
	wrong := m.Get("s/item/price", "t/thing/weight")
	if right <= wrong {
		t.Errorf("flooding failed to separate: right=%g wrong=%g", right, wrong)
	}
}

func TestMelnikFloodConverges(t *testing.T) {
	src, tgt := floodFixture()
	init := MatrixOver(src, tgt)
	for i := range init.Scores {
		for j := range init.Scores[i] {
			init.Scores[i][j] = 0.5
		}
	}
	out := MelnikFlood(init, src, tgt, 200, 1e-6)
	// Normalized: max value should be 1 (or close), none negative.
	maxV := 0.0
	for i := range out.Scores {
		for j := range out.Scores[i] {
			if out.Scores[i][j] < 0 {
				t.Fatalf("negative score in [0,1] flooding: %g", out.Scores[i][j])
			}
			if out.Scores[i][j] > maxV {
				maxV = out.Scores[i][j]
			}
		}
	}
	if maxV < 0.99 || maxV > 1.0000001 {
		t.Errorf("normalization: max = %g", maxV)
	}
}

func TestFloodOptionsDefaults(t *testing.T) {
	var o FloodOptions
	o.defaults()
	if o.Iterations != 2 || o.UpWeight != 0.3 || o.DownWeight != 0.3 {
		t.Errorf("defaults: %+v", o)
	}
	// The DisableFlood sentinel must survive defaults() as an inert zero
	// rather than being replaced by the default weight.
	o = FloodOptions{Iterations: DisableFlood, UpWeight: DisableFlood, DownWeight: -0.5}
	o.defaults()
	if o.Iterations != 0 || o.UpWeight != 0 || o.DownWeight != 0 {
		t.Errorf("disabled defaults: %+v", o)
	}
}

func TestHarmonyFloodDisabledUpIsNoOp(t *testing.T) {
	src, tgt := floodFixture()
	m := MatrixOver(src, tgt)
	// Strong child matches that would normally lift the parents.
	m.Set("s/Entity1/alpha", "t/EntityA/alpha", 0.8)
	m.Set("s/Entity1/beta", "t/EntityA/beta", 0.8)
	out := HarmonyFlood(m, src, tgt, FloodOptions{Iterations: 1, UpWeight: DisableFlood})
	if got := out.Get("s/Entity1", "t/EntityA"); got != 0 {
		t.Errorf("up-propagation disabled but parents moved: %g", got)
	}
}

func TestHarmonyFloodDisabledDownIsNoOp(t *testing.T) {
	src, tgt := floodFixture()
	m := MatrixOver(src, tgt)
	// Mismatched parents that would normally drag the child pair down.
	m.Set("s/Entity1", "t/EntityB", -0.8)
	m.Set("s/Entity1/alpha", "t/EntityB/gamma", 0.4)
	out := HarmonyFlood(m, src, tgt, FloodOptions{Iterations: 1, DownWeight: DisableFlood})
	if got := out.Get("s/Entity1/alpha", "t/EntityB/gamma"); got != 0.4 {
		t.Errorf("down-propagation disabled but child moved: %g", got)
	}
}

func TestHarmonyFloodDisabledIterationsReturnsInput(t *testing.T) {
	src, tgt := floodFixture()
	m := MatrixOver(src, tgt)
	m.Set("s/Entity1/alpha", "t/EntityA/alpha", 0.8)
	out := HarmonyFlood(m, src, tgt, FloodOptions{Iterations: DisableFlood})
	if out.Get("s/Entity1", "t/EntityA") != 0 || out.Get("s/Entity1/alpha", "t/EntityA/alpha") != 0.8 {
		t.Errorf("disabled iterations still propagated:\n%s", out)
	}
}
