package match

import (
	"strings"
	"unicode/utf8"

	"repro/internal/lingo"
	"repro/internal/model"
)

// Voter is one match strategy: it scores every (source, target) element
// pair with a confidence in (-1, +1) (paper §4: "several match voters are
// invoked, each of which identifies correspondences using a different
// strategy").
type Voter interface {
	// Name identifies the voter in reports and learned-weight tables.
	Name() string
	// Vote returns a confidence matrix over ctx's schemata.
	Vote(ctx *Context) *Matrix
}

// calibrate maps a similarity s in [0,1] to a confidence in (-1,+1)
// around a pivot: similarities above the pivot scale toward +posMax,
// below it toward -negMax. Voters with precise evidence use larger
// magnitudes; weak-signal voters stay near zero so the magnitude-weighted
// merger discounts them automatically.
func calibrate(s, pivot, posMax, negMax float64) float64 {
	if s >= pivot {
		if pivot >= 1 {
			return posMax
		}
		return (s - pivot) / (1 - pivot) * posMax
	}
	if pivot <= 0 {
		return 0
	}
	return (s - pivot) / pivot * negMax
}

// kindCompatible reports whether two elements could plausibly correspond
// structurally: entities to entities, attributes to attributes,
// relationships to either entities or relationships (ER reification).
func kindCompatible(a, b *model.Element) bool {
	if a.Kind == b.Kind {
		return true
	}
	isRel := func(e *model.Element) bool { return e.Kind == model.KindRelationship }
	isEnt := func(e *model.Element) bool { return e.Kind == model.KindEntity }
	return (isRel(a) && isEnt(b)) || (isEnt(a) && isRel(b))
}

// forEachPair drives a voter body over all kind-compatible pairs;
// incompatible pairs receive a firm negative vote. Rows are sharded
// across the context's worker pool — each goroutine owns disjoint
// Scores[i] rows, so score must only read from the context (every
// built-in voter does).
func forEachPair(ctx *Context, m *Matrix, score func(s, t *model.Element) float64) {
	if m.Sparse() {
		// Blocking: only the pattern's surviving cells are scored; pruned
		// pairs stay at the implicit 0 ("no evidence").
		pat := m.pat
		shardRows(ctx.Workers(), len(m.Sources), func(i int) {
			s := m.Sources[i]
			vals := m.vals[i]
			for k, j := range pat.Rows[i] {
				t := m.Targets[j]
				if !kindCompatible(s, t) {
					vals[k] = -0.75
					continue
				}
				vals[k] = score(s, t)
			}
		})
		return
	}
	shardRows(ctx.Workers(), len(m.Sources), func(i int) {
		s := m.Sources[i]
		row := m.Scores[i]
		for j, t := range m.Targets {
			if !kindCompatible(s, t) {
				row[j] = -0.75
				continue
			}
			row[j] = score(s, t)
		}
	})
}

// NameVoter compares element names: token-set Jaccard blended with
// Jaro-Winkler over the raw names, so both word overlap ("shipTo" vs
// "ship_to") and string closeness ("qty" vs "qnty") contribute.
type NameVoter struct{}

// Name implements Voter.
func (NameVoter) Name() string { return "name" }

// Vote implements Voter.
func (v NameVoter) Vote(ctx *Context) *Matrix { return voteAll(ctx, v.scorer(ctx)) }

// VotePatch implements IncrementalVoter.
func (v NameVoter) VotePatch(ctx *Context, prev *Matrix, dirtySrc, dirtyTgt map[string]bool) *Matrix {
	return votePatch(ctx, prev, dirtySrc, dirtyTgt, v.scorer(ctx))
}

func (NameVoter) scorer(ctx *Context) scoreFunc {
	return func(s, t *model.Element) float64 {
		jac := lingo.Jaccard(ctx.NameTokens(s), ctx.NameTokens(t))
		jw := lingo.JaroWinkler(lower(s.Name), lower(t.Name))
		sim := 0.6*jac + 0.4*jw
		// Affix containment: "subtotal" contains "total", "deptCode"
		// contains "dept" — strong evidence for abbreviation-heavy names.
		if c := containmentSim(lower(s.Name), lower(t.Name)); c > sim {
			sim = c
		}
		return calibrate(sim, 0.45, 0.9, 0.3)
	}
}

// containmentSim scores one name containing the other: the length ratio,
// shifted into the positive band. Names shorter than 4 runes are too
// ambiguous to count — measured in runes, so a 2-character CJK name does
// not slip past the guard on byte length.
func containmentSim(a, b string) float64 {
	short, long := a, b
	shortLen, longLen := utf8.RuneCountInString(short), utf8.RuneCountInString(long)
	if shortLen > longLen {
		short, long = long, short
		shortLen, longLen = longLen, shortLen
	}
	if shortLen < 4 || !strings.Contains(long, short) {
		return 0
	}
	ratio := float64(shortLen) / float64(longLen)
	return 0.5 + 0.45*ratio
}

// lower is an ASCII fast path for the hot name comparisons, falling back
// to strings.ToLower as soon as a non-ASCII byte appears so that "É",
// "Ü" etc. still fold.
func lower(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return strings.ToLower(s)
		}
	}
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}

// DocVoter compares documentation bags-of-words using TF-IDF cosine
// (paper §4: "one matcher compares the words appearing in the elements'
// definitions"). Pairs where either side lacks documentation abstain (0).
type DocVoter struct{}

// Name implements Voter.
func (DocVoter) Name() string { return "documentation" }

// Vote implements Voter.
func (v DocVoter) Vote(ctx *Context) *Matrix { return voteAll(ctx, v.scorer(ctx)) }

// VotePatch implements IncrementalVoter. Note the engine only calls it
// when the TF-IDF corpus fingerprint is unchanged — see CorpusSensitive.
func (v DocVoter) VotePatch(ctx *Context, prev *Matrix, dirtySrc, dirtyTgt map[string]bool) *Matrix {
	return votePatch(ctx, prev, dirtySrc, dirtyTgt, v.scorer(ctx))
}

// CorpusSensitive marks that this voter's scores depend on global corpus
// state (IDF over every document), not just the two elements compared.
func (DocVoter) CorpusSensitive() bool { return true }

func (DocVoter) scorer(ctx *Context) scoreFunc {
	return func(s, t *model.Element) float64 {
		vs, vt := ctx.DocVectorSorted(s), ctx.DocVectorSorted(t)
		if len(vs.Terms) == 0 || len(vt.Terms) == 0 {
			return 0 // no evidence either way
		}
		sim := lingo.CosineSorted(vs, vt)
		// Documentation matchers have good recall but weaker precision
		// (§4.1): generous positive calibration, soft negative.
		return calibrate(sim, 0.2, 0.9, 0.2)
	}
}

// ThesaurusVoter expands name tokens through the thesaurus before
// comparing (paper §4: "another matcher expands the elements' names using
// a thesaurus").
type ThesaurusVoter struct{}

// Name implements Voter.
func (ThesaurusVoter) Name() string { return "thesaurus" }

// Vote implements Voter.
func (v ThesaurusVoter) Vote(ctx *Context) *Matrix {
	if ctx.Thesaurus == nil {
		return ctx.NewMatrix() // abstain entirely
	}
	return voteAll(ctx, v.scorer(ctx))
}

// VotePatch implements IncrementalVoter.
func (v ThesaurusVoter) VotePatch(ctx *Context, prev *Matrix, dirtySrc, dirtyTgt map[string]bool) *Matrix {
	if ctx.Thesaurus == nil {
		// The full path abstains with an all-zero matrix (no -0.75
		// incompatibility marks), so the patch path must too.
		return ctx.NewMatrix()
	}
	return votePatch(ctx, prev, dirtySrc, dirtyTgt, v.scorer(ctx))
}

func (ThesaurusVoter) scorer(ctx *Context) scoreFunc {
	return func(s, t *model.Element) float64 {
		// Expansion uses unstemmed tokens (thesauri hold surface forms),
		// cached per element by the context.
		es := ctx.ExpandedNameTokens(s)
		et := ctx.ExpandedNameTokens(t)
		sim := lingo.Jaccard(es, et)
		// Expansion inflates token sets, so a modest overlap is already
		// meaningful; pivot lower than the raw name voter.
		return calibrate(sim, 0.25, 0.8, 0.1)
	}
}

// DomainVoter compares enumerated domain values (paper §2: "domain values
// are often available and could be better exploited by schema matchers").
// Attributes whose coding schemes overlap strongly are likely the same
// property even when names differ entirely.
type DomainVoter struct{}

// Name implements Voter.
func (DomainVoter) Name() string { return "domain-values" }

// Vote implements Voter.
func (v DomainVoter) Vote(ctx *Context) *Matrix { return voteAll(ctx, v.scorer(ctx)) }

// VotePatch implements IncrementalVoter. Element signatures fold in the
// referenced domain's code list, so a domain edit dirties its referents.
func (v DomainVoter) VotePatch(ctx *Context, prev *Matrix, dirtySrc, dirtyTgt map[string]bool) *Matrix {
	return votePatch(ctx, prev, dirtySrc, dirtyTgt, v.scorer(ctx))
}

func (DomainVoter) scorer(ctx *Context) scoreFunc {
	return func(s, t *model.Element) float64 {
		ds, dt := ctx.Source.DomainOf(s), ctx.Target.DomainOf(t)
		if ds == nil || dt == nil {
			return 0 // abstain without evidence
		}
		sim := lingo.OverlapCoefficient(ds.Codes(), dt.Codes())
		// Two enumerated attributes with disjoint code sets are real
		// negative evidence; shared coding schemes are strong positives.
		return calibrate(sim, 0.4, 0.95, 0.6)
	}
}

// TypeVoter compares declared data types: a weak signal (many attributes
// share a type), so its magnitudes stay small and the merger discounts it.
type TypeVoter struct{}

// Name implements Voter.
func (TypeVoter) Name() string { return "data-type" }

// typeGroups buckets concrete type names into comparable families.
var typeGroups = map[string]string{
	"string": "text", "varchar": "text", "char": "text", "text": "text",
	"token": "text", "normalizedstring": "text",
	"int": "number", "integer": "number", "smallint": "number",
	"bigint": "number", "decimal": "number", "numeric": "number",
	"float": "number", "double": "number", "real": "number",
	"date": "temporal", "datetime": "temporal", "time": "temporal",
	"timestamp": "temporal",
	"bool":      "boolean", "boolean": "boolean", "bit": "boolean",
}

// Vote implements Voter.
func (v TypeVoter) Vote(ctx *Context) *Matrix { return voteAll(ctx, v.scorer(ctx)) }

// VotePatch implements IncrementalVoter.
func (v TypeVoter) VotePatch(ctx *Context, prev *Matrix, dirtySrc, dirtyTgt map[string]bool) *Matrix {
	return votePatch(ctx, prev, dirtySrc, dirtyTgt, v.scorer(ctx))
}

func (TypeVoter) scorer(ctx *Context) scoreFunc {
	return func(s, t *model.Element) float64 {
		if s.Kind != model.KindAttribute || t.Kind != model.KindAttribute {
			return 0
		}
		gs, gt := typeGroups[lower(s.DataType)], typeGroups[lower(t.DataType)]
		if gs == "" || gt == "" {
			return 0
		}
		if gs == gt {
			return 0.15
		}
		return -0.2
	}
}

// StructureVoter compares entities by the names of their children — two
// entities whose attribute sets look alike are likely the same concept
// even when the entity names differ.
type StructureVoter struct{}

// Name implements Voter.
func (StructureVoter) Name() string { return "structure" }

// Vote implements Voter.
func (v StructureVoter) Vote(ctx *Context) *Matrix { return voteAll(ctx, v.scorer(ctx)) }

// VotePatch implements IncrementalVoter. A score here reads the
// *children* of both elements, so callers must dirty an element whenever
// any of its children changed — the engine's dirty-set closure
// (ExpandDirty) takes care of that.
func (v StructureVoter) VotePatch(ctx *Context, prev *Matrix, dirtySrc, dirtyTgt map[string]bool) *Matrix {
	return votePatch(ctx, prev, dirtySrc, dirtyTgt, v.scorer(ctx))
}

func (StructureVoter) scorer(ctx *Context) scoreFunc {
	return func(s, t *model.Element) float64 {
		if s.IsLeaf() || t.IsLeaf() {
			return 0
		}
		var toksS, toksT []string
		for _, c := range s.Children() {
			toksS = append(toksS, ctx.NameTokens(c)...)
		}
		for _, c := range t.Children() {
			toksT = append(toksT, ctx.NameTokens(c)...)
		}
		sim := lingo.Jaccard(toksS, toksT)
		return calibrate(sim, 0.35, 0.7, 0.2)
	}
}

// DefaultVoters returns the full Harmony panel in its standard order.
func DefaultVoters() []Voter {
	return []Voter{
		NameVoter{},
		DocVoter{},
		ThesaurusVoter{},
		DomainVoter{},
		TypeVoter{},
		StructureVoter{},
	}
}
