package match

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests over the voting algebra and selection operators.

// randomVotes builds k vote matrices with scores in (-1,1) over the test
// fixture schemata.
func randomVotes(rng *rand.Rand, k int) []Vote {
	src, tgt := sourceSchema(), targetSchema()
	votes := make([]Vote, k)
	for v := 0; v < k; v++ {
		m := MatrixOver(src, tgt)
		for i := range m.Scores {
			for j := range m.Scores[i] {
				m.Scores[i][j] = rng.Float64()*1.98 - 0.99
			}
		}
		votes[v] = Vote{Voter: string(rune('A' + v)), Matrix: m}
	}
	return votes
}

// TestMergeBoundedByVotes: the merged score always lies within the
// [min, max] of the per-voter scores for that cell (a weighted mean).
func TestMergeBoundedByVotes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewMerger()
	for trial := 0; trial < 50; trial++ {
		votes := randomVotes(rng, 2+rng.Intn(4))
		merged := g.Merge(votes)
		for i := range merged.Scores {
			for j := range merged.Scores[i] {
				lo, hi := 1.0, -1.0
				for _, v := range votes {
					c := v.Matrix.Scores[i][j]
					lo = math.Min(lo, c)
					hi = math.Max(hi, c)
				}
				got := merged.Scores[i][j]
				if got < lo-1e-9 || got > hi+1e-9 {
					t.Fatalf("merged %g outside vote range [%g, %g]", got, lo, hi)
				}
			}
		}
	}
}

// TestMergeSignAgreement: when every voter is non-negative, the merge is
// non-negative (and symmetrically for non-positive).
func TestMergeSignAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := NewMerger()
	for trial := 0; trial < 30; trial++ {
		votes := randomVotes(rng, 3)
		for _, v := range votes {
			for i := range v.Matrix.Scores {
				for j := range v.Matrix.Scores[i] {
					v.Matrix.Scores[i][j] = math.Abs(v.Matrix.Scores[i][j])
				}
			}
		}
		merged := g.Merge(votes)
		for i := range merged.Scores {
			for j := range merged.Scores[i] {
				if merged.Scores[i][j] < 0 {
					t.Fatalf("all-positive votes merged negative: %g", merged.Scores[i][j])
				}
			}
		}
	}
}

// TestMergeOrderInvariant: vote order does not change the result.
func TestMergeOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := NewMerger()
	votes := randomVotes(rng, 4)
	a := g.Merge(votes)
	rev := make([]Vote, len(votes))
	for i, v := range votes {
		rev[len(votes)-1-i] = v
	}
	b := g.Merge(rev)
	for i := range a.Scores {
		for j := range a.Scores[i] {
			if math.Abs(a.Scores[i][j]-b.Scores[i][j]) > 1e-12 {
				t.Fatalf("order dependence at (%d,%d): %g vs %g", i, j, a.Scores[i][j], b.Scores[i][j])
			}
		}
	}
}

// TestStableMatchingIsOneToOne on random matrices.
func TestStableMatchingIsOneToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		m := MatrixOver(sourceSchema(), targetSchema())
		for i := range m.Scores {
			for j := range m.Scores[i] {
				m.Scores[i][j] = rng.Float64()*2 - 1
			}
		}
		sel := m.StableMatching(-1)
		seenS, seenT := map[string]bool{}, map[string]bool{}
		for _, c := range sel {
			if seenS[c.Source.ID] || seenT[c.Target.ID] {
				t.Fatal("selection not one-to-one")
			}
			seenS[c.Source.ID] = true
			seenT[c.Target.ID] = true
		}
		// Maximal: count = min(|S|, |T|) when threshold admits all.
		want := len(m.Sources)
		if len(m.Targets) < want {
			want = len(m.Targets)
		}
		if len(sel) != want {
			t.Fatalf("selection size %d, want %d", len(sel), want)
		}
	}
}

// TestStableMatchingGreedyOptimalFirst: the first selected pair carries
// the global maximum score.
func TestStableMatchingGreedyOptimalFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		m := MatrixOver(sourceSchema(), targetSchema())
		best := -2.0
		for i := range m.Scores {
			for j := range m.Scores[i] {
				m.Scores[i][j] = rng.Float64()*2 - 1
				if m.Scores[i][j] > best {
					best = m.Scores[i][j]
				}
			}
		}
		sel := m.StableMatching(-1)
		if len(sel) == 0 || sel[0].Confidence != best {
			t.Fatalf("first pick %g, want global max %g", sel[0].Confidence, best)
		}
	}
}

// TestAboveMaxPerSourceConsistency: MaxPerSource results are a subset of
// Above at the same threshold.
func TestAboveMaxPerSourceConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := MatrixOver(sourceSchema(), targetSchema())
	for i := range m.Scores {
		for j := range m.Scores[i] {
			m.Scores[i][j] = rng.Float64()*2 - 1
		}
	}
	above := map[string]bool{}
	for _, c := range m.Above(0.1) {
		above[c.Source.ID+"|"+c.Target.ID] = true
	}
	for _, c := range m.MaxPerSource(0.1) {
		if !above[c.Source.ID+"|"+c.Target.ID] {
			t.Fatalf("max link %v not in Above set", c)
		}
	}
}

// TestCalibrateRange: calibrate stays within [-negMax, posMax] for any
// similarity in [0,1].
func TestCalibrateRange(t *testing.T) {
	f := func(sRaw, pivotRaw uint8) bool {
		s := float64(sRaw) / 255
		pivot := float64(pivotRaw) / 255
		c := calibrate(s, pivot, 0.9, 0.5)
		return c >= -0.5-1e-12 && c <= 0.9+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCalibrateMonotone: higher similarity never lowers confidence.
func TestCalibrateMonotone(t *testing.T) {
	for pivot := 0.1; pivot < 1; pivot += 0.2 {
		prev := math.Inf(-1)
		for s := 0.0; s <= 1.0001; s += 0.01 {
			c := calibrate(s, pivot, 0.9, 0.5)
			if c < prev-1e-12 {
				t.Fatalf("calibrate not monotone at s=%g pivot=%g", s, pivot)
			}
			prev = c
		}
	}
}

// TestHarmonyFloodBoundsRandom: flooding keeps every score in [-0.99, 0.99]
// for arbitrary starting matrices.
func TestHarmonyFloodBoundsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src, tgt := sourceSchema(), targetSchema()
	for trial := 0; trial < 20; trial++ {
		m := MatrixOver(src, tgt)
		for i := range m.Scores {
			for j := range m.Scores[i] {
				m.Scores[i][j] = rng.Float64()*1.98 - 0.99
			}
		}
		out := HarmonyFlood(m, src, tgt, FloodOptions{Iterations: 1 + rng.Intn(4)})
		for i := range out.Scores {
			for j := range out.Scores[i] {
				if v := out.Scores[i][j]; v < -0.99-1e-9 || v > 0.99+1e-9 {
					t.Fatalf("flooding escaped bounds: %g", v)
				}
			}
		}
	}
}
