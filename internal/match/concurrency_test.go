package match

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/model"
)

// bigFixture builds a schema pair large enough that concurrent sweeps
// genuinely interleave: n entities with 4 documented attributes each.
func bigFixture(n int) (*model.Schema, *model.Schema) {
	build := func(name string) *model.Schema {
		s := model.NewSchema(name, "er")
		for i := 0; i < n; i++ {
			e := s.AddElement(nil, fmt.Sprintf("Entity%d", i), model.KindEntity, model.ContainsElement)
			e.Doc = fmt.Sprintf("entity number %d holding order shipment data", i)
			for j := 0; j < 4; j++ {
				a := s.AddElement(e, fmt.Sprintf("attr%d_%d", i, j), model.KindAttribute, model.ContainsAttribute)
				a.DataType = "string"
				a.Doc = fmt.Sprintf("attribute %d of entity %d describing a customer address part", j, i)
			}
		}
		return s
	}
	return build("s"), build("t")
}

// TestConcurrentContextAccess hammers one Context's read paths from many
// goroutines while another goroutine repeatedly invalidates the vector
// cache — the exact sharing pattern of a parallel voter panel plus
// in-flight learning. Run under -race this proves the Context is safe
// for concurrent readers.
func TestConcurrentContextAccess(t *testing.T) {
	src, tgt := bigFixture(10)
	ctx := NewContext(src, tgt)
	elems := append(append([]*model.Element(nil), src.Elements()...), tgt.Elements()...)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				for _, e := range elems {
					_ = ctx.NameTokens(e)
					_ = ctx.NameTokensRaw(e)
					_ = ctx.ExpandedNameTokens(e)
					_ = ctx.DocTokens(e)
					if v := ctx.DocVector(e); len(v) == 0 {
						t.Errorf("goroutine %d: empty doc vector for %s", g, e.ID)
						return
					}
				}
			}
		}(g)
	}
	// Interleave cache invalidation with the readers (the Learn →
	// InvalidateVectors → re-Run sequence, compressed).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 50; round++ {
			ctx.InvalidateVectors()
		}
	}()
	wg.Wait()
}

// TestConcurrentVotersShareContext runs the full default panel
// concurrently against one shared Context and checks every matrix is
// bit-identical to a sequential pass — the determinism contract of the
// parallel voter panel.
func TestConcurrentVotersShareContext(t *testing.T) {
	src, tgt := bigFixture(8)
	ctx := NewContext(src, tgt)
	voters := DefaultVoters()

	want := make([]*Matrix, len(voters))
	for i, v := range voters {
		want[i] = v.Vote(ctx)
	}

	got := make([]*Matrix, len(voters))
	var wg sync.WaitGroup
	for i, v := range voters {
		wg.Add(1)
		go func(i int, v Voter) {
			defer wg.Done()
			got[i] = v.Vote(ctx)
		}(i, v)
	}
	wg.Wait()

	for i, v := range voters {
		if !reflect.DeepEqual(want[i].Scores, got[i].Scores) {
			t.Errorf("voter %s: concurrent matrix differs from sequential", v.Name())
		}
	}
}

// TestConcurrentForEachPairSharded checks the row-sharded sweep against
// the sequential sweep on a scoring function with per-pair structure.
func TestConcurrentForEachPairSharded(t *testing.T) {
	src, tgt := bigFixture(8)
	score := func(s, t *model.Element) float64 {
		return float64(len(s.Name)+len(t.Name)) / 100
	}

	seq := MatrixOver(src, tgt)
	seqCtx := NewContext(src, tgt, WithParallelism(1))
	forEachPair(seqCtx, seq, score)

	par := MatrixOver(src, tgt)
	parCtx := NewContext(src, tgt, WithParallelism(4))
	forEachPair(parCtx, par, score)

	if !reflect.DeepEqual(seq.Scores, par.Scores) {
		t.Error("sharded forEachPair differs from sequential")
	}
}

// TestConcurrentHarmonyFloodSharded checks row-sharded flooding against
// the sequential rounds, including the up/down overwrite ordering.
func TestConcurrentHarmonyFloodSharded(t *testing.T) {
	src, tgt := bigFixture(8)
	init := MatrixOver(src, tgt)
	// Seed a mix of positive and negative evidence so both sweeps fire.
	for i := range init.Scores {
		for j := range init.Scores[i] {
			init.Scores[i][j] = float64((i*31+j*17)%19-9) / 12
		}
	}
	seq := HarmonyFlood(init.Clone(), src, tgt, FloodOptions{Iterations: 3, Parallelism: 1})
	par := HarmonyFlood(init.Clone(), src, tgt, FloodOptions{Iterations: 3, Parallelism: 4})
	if !reflect.DeepEqual(seq.Scores, par.Scores) {
		t.Error("sharded HarmonyFlood differs from sequential")
	}
}
