package match

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
)

// Sparse/dense agreement properties. A sparse matrix must behave like a
// dense matrix whose off-pattern cells are pinned to zero — except that
// writes outside the pattern land in the extra overflow and must still
// read back, clone, and iterate exactly like any other cell.

// randomPatternPair builds a random element pair plus a random pattern
// over it.
func randomPatternPair(rng *rand.Rand, nr, nc int) ([]*model.Element, []*model.Element, *Pattern) {
	src := model.NewSchema("src", "xsd")
	tgt := model.NewSchema("tgt", "xsd")
	for i := 0; i < nr; i++ {
		src.AddElement(nil, fmt.Sprintf("s%d", i), model.KindAttribute, model.ContainsAttribute)
	}
	for j := 0; j < nc; j++ {
		tgt.AddElement(nil, fmt.Sprintf("t%d", j), model.KindAttribute, model.ContainsAttribute)
	}
	rows := make([][]int32, nr)
	for i := range rows {
		for j := 0; j < nc; j++ {
			if rng.Float64() < 0.3 {
				rows[i] = append(rows[i], int32(j))
			}
		}
	}
	return src.Elements(), tgt.Elements(), NewPattern(rows)
}

func TestPropertySparseDenseAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		nr, nc := 1+rng.Intn(8), 1+rng.Intn(8)
		srcs, tgts, pat := randomPatternPair(rng, nr, nc)
		sp := NewSparseMatrix(srcs, tgts, pat)
		dn := NewMatrix(srcs, tgts)
		// Mirror writes: mostly inside the pattern, some outside (the
		// overflow path a user pin exercises).
		for w := 0; w < nr*nc; w++ {
			i, j := rng.Intn(nr), rng.Intn(nc)
			v := rng.Float64()*2 - 1
			sp.SetAt(i, j, v)
			dn.SetAt(i, j, v)
		}
		for i := 0; i < nr; i++ {
			for j := 0; j < nc; j++ {
				if math.Float64bits(sp.At(i, j)) != math.Float64bits(dn.At(i, j)) {
					t.Fatalf("trial %d: At(%d,%d) sparse %g vs dense %g", trial, i, j, sp.At(i, j), dn.At(i, j))
				}
			}
		}
		// Get/Set by ID agree too.
		si, tj := rng.Intn(nr), rng.Intn(nc)
		if sp.Get(srcs[si].ID, tgts[tj].ID) != dn.Get(srcs[si].ID, tgts[tj].ID) {
			t.Fatalf("trial %d: Get by ID disagrees", trial)
		}
		// ToDense reproduces every cell.
		td := sp.ToDense()
		for i := 0; i < nr; i++ {
			for j := 0; j < nc; j++ {
				if math.Float64bits(td.At(i, j)) != math.Float64bits(sp.At(i, j)) {
					t.Fatalf("trial %d: ToDense differs at (%d,%d)", trial, i, j)
				}
			}
		}
		// Clone is independent and equal.
		cl := sp.Clone()
		for i := 0; i < nr; i++ {
			for j := 0; j < nc; j++ {
				if cl.At(i, j) != sp.At(i, j) {
					t.Fatalf("trial %d: Clone differs at (%d,%d)", trial, i, j)
				}
			}
		}
		cl.SetAt(si, tj, 0.123456)
		if sp.At(si, tj) == 0.123456 && dn.At(si, tj) != 0.123456 {
			t.Fatalf("trial %d: Clone shares storage with original", trial)
		}
	}
}

func TestPropertySparseEachOrderAndCoverage(t *testing.T) {
	// Each must visit cells in row-major order (ascending i, then
	// ascending j, overflow cells interleaved at their proper column
	// position) and visit exactly the nonzero-or-stored set.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		nr, nc := 1+rng.Intn(6), 1+rng.Intn(6)
		srcs, tgts, pat := randomPatternPair(rng, nr, nc)
		sp := NewSparseMatrix(srcs, tgts, pat)
		want := map[[2]int]float64{}
		for w := 0; w < nr*nc; w++ {
			i, j := rng.Intn(nr), rng.Intn(nc)
			v := rng.Float64()*2 - 1
			sp.SetAt(i, j, v)
			want[[2]int{i, j}] = v
		}
		lastI, lastJ := -1, -1
		seen := map[[2]int]bool{}
		sp.Each(func(i, j int, v float64) {
			if i < lastI || (i == lastI && j <= lastJ) {
				t.Fatalf("trial %d: Each out of order: (%d,%d) after (%d,%d)", trial, i, j, lastI, lastJ)
			}
			lastI, lastJ = i, j
			if seen[[2]int{i, j}] {
				t.Fatalf("trial %d: Each visited (%d,%d) twice", trial, i, j)
			}
			seen[[2]int{i, j}] = true
			if math.Float64bits(sp.At(i, j)) != math.Float64bits(v) {
				t.Fatalf("trial %d: Each value %g != At %g at (%d,%d)", trial, v, sp.At(i, j), i, j)
			}
		})
		// Every written nonzero cell was visited.
		for ij, v := range want {
			if v != 0 && !seen[ij] {
				t.Fatalf("trial %d: Each skipped written cell (%d,%d)=%g", trial, ij[0], ij[1], v)
			}
		}
	}
}

func TestPropertyPatternPosContains(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		nr, nc := 1+rng.Intn(10), 1+rng.Intn(10)
		_, _, pat := randomPatternPair(rng, nr, nc)
		nnz := 0
		for i := 0; i < nr; i++ {
			for j := 0; j < nc; j++ {
				in := false
				for _, c := range pat.Rows[i] {
					if int(c) == j {
						in = true
						break
					}
				}
				if pat.Contains(i, j) != in {
					t.Fatalf("trial %d: Contains(%d,%d) = %v, want %v", trial, i, j, !in, in)
				}
				if in {
					nnz++
				}
			}
		}
		if pat.NNZ() != nnz {
			t.Fatalf("trial %d: NNZ = %d, counted %d", trial, pat.NNZ(), nnz)
		}
	}
}
