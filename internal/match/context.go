package match

import (
	"sync"

	"repro/internal/lingo"
	"repro/internal/model"
)

// Context carries the preprocessed linguistic state shared by all voters
// for one (source, target) schema pair. Building it once per engine run
// corresponds to Figure 1's "linguistic preprocessing" stage.
//
// A Context is safe for concurrent readers: all per-element caches
// (name tokens, thesaurus expansions, TF-IDF vectors) are fully built by
// NewContext — they are bounded by element count, not pair count — so the
// voter panel can share one Context across goroutines. The only mutating
// entry points are InvalidateVectors and the Corpus/Thesaurus fields
// themselves; InvalidateVectors re-opens the vector cache's lazy path,
// which is guarded by a lock, while replacing Corpus or Thesaurus after
// construction is not concurrency-safe and has no effect on the
// precomputed expansions.
type Context struct {
	Source *model.Schema
	Target *model.Schema
	// Thesaurus backs the thesaurus voter; nil disables expansion. Set it
	// via WithThesaurus — expansions are precomputed in NewContext.
	Thesaurus *lingo.Thesaurus
	// Corpus accumulates documentation for TF-IDF. Exposed so the engine
	// can adjust word weights from user feedback (§4.3); call
	// InvalidateVectors after adjusting.
	Corpus *lingo.Corpus
	// Parallelism is the worker count the row-sharded pair sweeps
	// (forEachPair) fan out to: 0 = GOMAXPROCS, 1 = sequential, n = n.
	// Results are bit-identical at any setting.
	Parallelism int
	// candidates is the blocking pattern the voter sweeps restrict
	// themselves to; nil means dense (score every pair). Set via
	// SetCandidates after running BuildCandidates. The pattern indexes
	// the schemata's current Elements() order, so the owner must rebuild
	// it (or clear it) after any structural edit.
	candidates *Pattern

	nameTokens map[*model.Element][]string
	// nameTokensRaw holds unstemmed name tokens; the thesaurus voter
	// looks these up since synonym tables hold surface forms.
	nameTokensRaw map[*model.Element][]string
	// expandedTokens caches thesaurus expansions per element — computing
	// them per pair would cost O(|S|·|T|) expansions. Fully built by
	// NewContext, read-only afterwards.
	expandedTokens map[*model.Element][]string
	docTokens      map[*model.Element][]string
	// vecMu guards docVectors/docVecSorted: the vectors are precomputed
	// by NewContext, but InvalidateVectors re-opens the lazy rebuild
	// path, which concurrent voters then race through.
	vecMu      sync.RWMutex
	docVectors map[*model.Element]lingo.Vector
	// docVecSorted holds the term-sorted, norm-precomputed form the
	// documentation voter's O(|S|·|T|) cosine sweep runs on.
	docVecSorted map[*model.Element]lingo.SortedVector
	// Stem controls whether preprocessing stems tokens (ablation hook).
	Stem bool
}

// ContextOption customizes context construction.
type ContextOption func(*Context)

// WithThesaurus sets the thesaurus used for name expansion.
func WithThesaurus(t *lingo.Thesaurus) ContextOption {
	return func(c *Context) { c.Thesaurus = t }
}

// WithoutStemming disables stemming (the DESIGN.md stemming ablation).
func WithoutStemming() ContextOption {
	return func(c *Context) { c.Stem = false }
}

// WithParallelism sets the worker count for row-sharded pair sweeps
// (0 = GOMAXPROCS, 1 = sequential).
func WithParallelism(n int) ContextOption {
	return func(c *Context) { c.Parallelism = n }
}

// NewContext preprocesses both schemata: element names and documentation
// are tokenized, stop-word filtered and stemmed, the documentation corpus
// is built, and the per-element thesaurus expansions and TF-IDF vectors
// are precomputed so later reads are lock-free.
func NewContext(source, target *model.Schema, opts ...ContextOption) *Context {
	c := &Context{
		Source:         source,
		Target:         target,
		Thesaurus:      lingo.DefaultThesaurus(),
		Corpus:         lingo.NewCorpus(),
		nameTokens:     map[*model.Element][]string{},
		nameTokensRaw:  map[*model.Element][]string{},
		expandedTokens: map[*model.Element][]string{},
		docTokens:      map[*model.Element][]string{},
		docVectors:     map[*model.Element]lingo.Vector{},
		docVecSorted:   map[*model.Element]lingo.SortedVector{},
		Stem:           true,
	}
	for _, o := range opts {
		o(c)
	}
	pre := lingo.Preprocess
	if !c.Stem {
		pre = lingo.PreprocessNoStem
	}
	for _, s := range []*model.Schema{source, target} {
		for _, e := range s.Elements() {
			c.nameTokens[e] = pre(e.Name)
			c.nameTokensRaw[e] = lingo.PreprocessNoStem(e.Name)
			doc := e.Doc
			// Fold enumerated domain documentation into the attribute's
			// document — the paper's §2 point that domain values carry
			// matchable documentation.
			if d := s.DomainOf(e); d != nil {
				doc += " " + d.Doc
				for _, v := range d.Values {
					doc += " " + v.Doc
				}
			}
			toks := pre(doc)
			c.docTokens[e] = toks
			if len(toks) > 0 {
				c.Corpus.AddDocument(toks)
			}
		}
	}
	// Second pass, after the corpus is complete (IDF needs both schemata's
	// documents): precompute expansions and vectors eagerly. Both are
	// O(elements), and doing it here makes the read paths race-free.
	for _, s := range []*model.Schema{source, target} {
		for _, e := range s.Elements() {
			toks := c.nameTokensRaw[e]
			if c.Thesaurus != nil {
				toks = c.Thesaurus.Expand(toks)
			}
			c.expandedTokens[e] = toks
			v := c.Corpus.Vector(c.docTokens[e])
			c.docVectors[e] = v
			c.docVecSorted[e] = v.Sorted()
		}
	}
	return c
}

// Refresh re-derives the per-element caches after in-place edits to the
// context's schemas, keeping the corpus and every untouched element's
// state. dirtySrc/dirtyTgt name the elements (by ID) whose content may
// have changed; elements added since construction are found on its own.
// Refresh succeeds only when the documentation corpus is provably
// unchanged — every added, edited or removed element must contribute
// the same document tokens as before (typically: edits that didn't
// touch documentation). When that doesn't hold it returns false without
// mutating anything and the caller must rebuild with NewContext; IDF is
// global, so a changed document invalidates every vector. After a
// successful Refresh the cached state is bit-identical to a freshly
// built context's.
func (c *Context) Refresh(dirtySrc, dirtyTgt map[string]bool) bool {
	pre := lingo.Preprocess
	if !c.Stem {
		pre = lingo.PreprocessNoStem
	}
	type update struct {
		e   *model.Element
		doc []string
	}
	var updates []update
	for _, sd := range []struct {
		s     *model.Schema
		dirty map[string]bool
	}{{c.Source, dirtySrc}, {c.Target, dirtyTgt}} {
		for _, e := range sd.s.Elements() {
			if _, known := c.nameTokens[e]; known && !sd.dirty[e.ID] {
				continue
			}
			doc := e.Doc
			if d := sd.s.DomainOf(e); d != nil {
				doc += " " + d.Doc
				for _, v := range d.Values {
					doc += " " + v.Doc
				}
			}
			toks := pre(doc)
			if !tokensEqual(toks, c.docTokens[e]) {
				return false
			}
			updates = append(updates, update{e, toks})
		}
	}
	// Elements whose pointers left the schemas may only leave if they
	// never contributed a document.
	var stale []*model.Element
	for e := range c.nameTokens {
		if c.Source.Element(e.ID) == e || c.Target.Element(e.ID) == e {
			continue
		}
		if len(c.docTokens[e]) > 0 {
			return false
		}
		stale = append(stale, e)
	}
	// Commit. No corpus change is possible past this point, so the kept
	// Corpus — and every clean element's cached vector — stays exact.
	for _, u := range updates {
		e := u.e
		c.nameTokens[e] = pre(e.Name)
		c.nameTokensRaw[e] = lingo.PreprocessNoStem(e.Name)
		toks := c.nameTokensRaw[e]
		if c.Thesaurus != nil {
			toks = c.Thesaurus.Expand(toks)
		}
		c.expandedTokens[e] = toks
		c.docTokens[e] = u.doc
		v := c.Corpus.Vector(u.doc)
		c.vecMu.Lock()
		c.docVectors[e] = v
		c.docVecSorted[e] = v.Sorted()
		c.vecMu.Unlock()
	}
	for _, e := range stale {
		delete(c.nameTokens, e)
		delete(c.nameTokensRaw, e)
		delete(c.expandedTokens, e)
		delete(c.docTokens, e)
		c.vecMu.Lock()
		delete(c.docVectors, e)
		delete(c.docVecSorted, e)
		c.vecMu.Unlock()
	}
	return true
}

// tokensEqual reports whether two token slices are identical.
func tokensEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SetCandidates installs (or, with nil, clears) the blocking pattern
// that NewMatrix hands to every voter. Not safe to call concurrently
// with a running voter panel.
func (c *Context) SetCandidates(p *Pattern) { c.candidates = p }

// Candidates returns the installed blocking pattern (nil = dense).
func (c *Context) Candidates() *Pattern { return c.candidates }

// NewMatrix allocates the zero matrix a voter should fill: sparse over
// the blocking pattern when one is installed, the full dense cross
// product otherwise.
func (c *Context) NewMatrix() *Matrix {
	if c.candidates != nil {
		return NewSparseMatrix(c.Source.Elements(), c.Target.Elements(), c.candidates)
	}
	return MatrixOver(c.Source, c.Target)
}

// Workers resolves the context's Parallelism to a concrete worker count.
func (c *Context) Workers() int {
	if c == nil {
		return 1
	}
	return ResolveWorkers(c.Parallelism)
}

// NameTokens returns the preprocessed name tokens of an element.
func (c *Context) NameTokens(e *model.Element) []string { return c.nameTokens[e] }

// NameTokensRaw returns the unstemmed name tokens of an element.
func (c *Context) NameTokensRaw(e *model.Element) []string { return c.nameTokensRaw[e] }

// ExpandedNameTokens returns the element's unstemmed name tokens expanded
// through the thesaurus. The expansion is precomputed by NewContext, so
// this is a plain map read, safe under any number of goroutines.
func (c *Context) ExpandedNameTokens(e *model.Element) []string {
	return c.expandedTokens[e]
}

// DocTokens returns the preprocessed documentation tokens of an element.
func (c *Context) DocTokens(e *model.Element) []string { return c.docTokens[e] }

// DocVector returns the TF-IDF vector of an element's documentation.
// Vectors are precomputed by NewContext; after InvalidateVectors they are
// rebuilt lazily under a lock, so concurrent voters stay race-free while
// learning takes effect.
func (c *Context) DocVector(e *model.Element) lingo.Vector {
	c.vecMu.RLock()
	v, ok := c.docVectors[e]
	c.vecMu.RUnlock()
	if ok {
		return v
	}
	v, _ = c.rebuildVector(e)
	return v
}

// DocVectorSorted returns the element's TF-IDF vector in the term-sorted,
// norm-precomputed form lingo.CosineSorted consumes — the documentation
// voter's hot-path representation. Same caching discipline as DocVector.
func (c *Context) DocVectorSorted(e *model.Element) lingo.SortedVector {
	c.vecMu.RLock()
	sv, ok := c.docVecSorted[e]
	c.vecMu.RUnlock()
	if ok {
		return sv
	}
	_, sv = c.rebuildVector(e)
	return sv
}

// rebuildVector recomputes and caches both vector forms for one element
// under the write lock (the post-InvalidateVectors lazy path).
func (c *Context) rebuildVector(e *model.Element) (lingo.Vector, lingo.SortedVector) {
	c.vecMu.Lock()
	defer c.vecMu.Unlock()
	if v, ok := c.docVectors[e]; ok {
		return v, c.docVecSorted[e]
	}
	v := c.Corpus.Vector(c.docTokens[e])
	sv := v.Sorted()
	c.docVectors[e] = v
	c.docVecSorted[e] = sv
	return v, sv
}

// InvalidateVectors clears cached TF-IDF vectors; call after adjusting
// word weights so learning takes effect on the next engine run. Safe to
// call concurrently with DocVector readers (but not with writers to
// Corpus itself).
func (c *Context) InvalidateVectors() {
	c.vecMu.Lock()
	c.docVectors = make(map[*model.Element]lingo.Vector, len(c.docTokens))
	c.docVecSorted = make(map[*model.Element]lingo.SortedVector, len(c.docTokens))
	c.vecMu.Unlock()
}
