package match

import (
	"repro/internal/lingo"
	"repro/internal/model"
)

// Context carries the preprocessed linguistic state shared by all voters
// for one (source, target) schema pair. Building it once per engine run
// corresponds to Figure 1's "linguistic preprocessing" stage.
type Context struct {
	Source *model.Schema
	Target *model.Schema
	// Thesaurus backs the thesaurus voter; nil disables expansion.
	Thesaurus *lingo.Thesaurus
	// Corpus accumulates documentation for TF-IDF. Exposed so the engine
	// can adjust word weights from user feedback (§4.3).
	Corpus *lingo.Corpus

	nameTokens map[*model.Element][]string
	// nameTokensRaw holds unstemmed name tokens; the thesaurus voter
	// looks these up since synonym tables hold surface forms.
	nameTokensRaw map[*model.Element][]string
	// expandedTokens caches thesaurus expansions per element — computing
	// them per pair would cost O(|S|·|T|) expansions.
	expandedTokens map[*model.Element][]string
	docTokens      map[*model.Element][]string
	docVectors     map[*model.Element]lingo.Vector
	// Stem controls whether preprocessing stems tokens (ablation hook).
	Stem bool
}

// ContextOption customizes context construction.
type ContextOption func(*Context)

// WithThesaurus sets the thesaurus used for name expansion.
func WithThesaurus(t *lingo.Thesaurus) ContextOption {
	return func(c *Context) { c.Thesaurus = t }
}

// WithoutStemming disables stemming (the DESIGN.md stemming ablation).
func WithoutStemming() ContextOption {
	return func(c *Context) { c.Stem = false }
}

// NewContext preprocesses both schemata: element names and documentation
// are tokenized, stop-word filtered and stemmed, and the documentation
// corpus is built so voters can compute TF-IDF weights.
func NewContext(source, target *model.Schema, opts ...ContextOption) *Context {
	c := &Context{
		Source:         source,
		Target:         target,
		Thesaurus:      lingo.DefaultThesaurus(),
		Corpus:         lingo.NewCorpus(),
		nameTokens:     map[*model.Element][]string{},
		nameTokensRaw:  map[*model.Element][]string{},
		expandedTokens: map[*model.Element][]string{},
		docTokens:      map[*model.Element][]string{},
		docVectors:     map[*model.Element]lingo.Vector{},
		Stem:           true,
	}
	for _, o := range opts {
		o(c)
	}
	pre := lingo.Preprocess
	if !c.Stem {
		pre = lingo.PreprocessNoStem
	}
	for _, s := range []*model.Schema{source, target} {
		for _, e := range s.Elements() {
			c.nameTokens[e] = pre(e.Name)
			c.nameTokensRaw[e] = lingo.PreprocessNoStem(e.Name)
			doc := e.Doc
			// Fold enumerated domain documentation into the attribute's
			// document — the paper's §2 point that domain values carry
			// matchable documentation.
			if d := s.DomainOf(e); d != nil {
				doc += " " + d.Doc
				for _, v := range d.Values {
					doc += " " + v.Doc
				}
			}
			toks := pre(doc)
			c.docTokens[e] = toks
			if len(toks) > 0 {
				c.Corpus.AddDocument(toks)
			}
		}
	}
	return c
}

// NameTokens returns the preprocessed name tokens of an element.
func (c *Context) NameTokens(e *model.Element) []string { return c.nameTokens[e] }

// NameTokensRaw returns the unstemmed name tokens of an element.
func (c *Context) NameTokensRaw(e *model.Element) []string { return c.nameTokensRaw[e] }

// ExpandedNameTokens returns (computing once) the element's unstemmed
// name tokens expanded through the thesaurus.
func (c *Context) ExpandedNameTokens(e *model.Element) []string {
	if toks, ok := c.expandedTokens[e]; ok {
		return toks
	}
	toks := c.nameTokensRaw[e]
	if c.Thesaurus != nil {
		toks = c.Thesaurus.Expand(toks)
	}
	if c.expandedTokens == nil {
		c.expandedTokens = map[*model.Element][]string{}
	}
	c.expandedTokens[e] = toks
	return toks
}

// DocTokens returns the preprocessed documentation tokens of an element.
func (c *Context) DocTokens(e *model.Element) []string { return c.docTokens[e] }

// DocVector returns (lazily building) the TF-IDF vector of an element's
// documentation. Vectors are invalidated by InvalidateVectors after the
// corpus's word weights change.
func (c *Context) DocVector(e *model.Element) lingo.Vector {
	if v, ok := c.docVectors[e]; ok {
		return v
	}
	v := c.Corpus.Vector(c.docTokens[e])
	c.docVectors[e] = v
	return v
}

// InvalidateVectors clears cached TF-IDF vectors; call after adjusting
// word weights so learning takes effect on the next engine run.
func (c *Context) InvalidateVectors() {
	c.docVectors = map[*model.Element]lingo.Vector{}
}
