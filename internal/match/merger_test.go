package match

import (
	"math"
	"testing"
)

func twoVoterVotes(cA, cB float64) []Vote {
	src, tgt := sourceSchema(), targetSchema()
	ma := MatrixOver(src, tgt)
	mb := MatrixOver(src, tgt)
	ma.Scores[0][0] = cA
	mb.Scores[0][0] = cB
	return []Vote{{"A", ma}, {"B", mb}}
}

func TestMergeMagnitudeWeighting(t *testing.T) {
	g := NewMerger()
	// Strong positive (0.9) vs weak negative (-0.1): magnitude weighting
	// should land clearly positive, much closer to 0.9 than the plain
	// mean (0.4).
	merged := g.Merge(twoVoterVotes(0.9, -0.1))
	got := merged.Scores[0][0]
	want := (0.9*0.9 - 0.1*0.1) / (0.9 + 0.1)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("merged = %g, want %g", got, want)
	}
	if got <= 0.4 {
		t.Errorf("magnitude weighting should beat plain mean: %g", got)
	}
}

func TestMergeWithoutMagnitudeWeighting(t *testing.T) {
	g := NewMerger()
	g.MagnitudeWeighting = false
	merged := g.Merge(twoVoterVotes(0.9, -0.1))
	if got := merged.Scores[0][0]; math.Abs(got-0.4) > 1e-12 {
		t.Errorf("plain mean = %g, want 0.4", got)
	}
}

func TestMergeAbstainersIgnored(t *testing.T) {
	g := NewMerger()
	// One voter abstains (0): result is the other voter's score.
	merged := g.Merge(twoVoterVotes(0.6, 0))
	if got := merged.Scores[0][0]; math.Abs(got-0.6) > 1e-12 {
		t.Errorf("merged = %g, want 0.6", got)
	}
	// All abstain → 0.
	merged = g.Merge(twoVoterVotes(0, 0))
	if got := merged.Scores[0][0]; got != 0 {
		t.Errorf("all-abstain merged = %g", got)
	}
}

func TestMergePerformanceWeights(t *testing.T) {
	g := NewMerger()
	g.SetWeight("A", 4)
	g.SetWeight("B", 1)
	merged := g.Merge(twoVoterVotes(0.5, -0.5))
	// Equal magnitudes; weights 4:1 → (4*0.5 - 1*0.5)/(4+1) * ... =
	// (2 - 0.5)/(2.5) ... compute: num = 4*0.5*0.5 + 1*0.5*(-0.5) = 1 - 0.25
	// = 0.75; den = 4*0.5 + 1*0.5 = 2.5 → 0.3.
	if got := merged.Scores[0][0]; math.Abs(got-0.3) > 1e-12 {
		t.Errorf("weighted merge = %g, want 0.3", got)
	}
}

func TestMergeClampsToOpenInterval(t *testing.T) {
	g := NewMerger()
	merged := g.Merge(twoVoterVotes(0.999, 0.999))
	if got := merged.Scores[0][0]; got > 0.99 {
		t.Errorf("machine scores must stay below +1: %g", got)
	}
}

func TestMergeEmpty(t *testing.T) {
	if got := NewMerger().Merge(nil); got != nil {
		t.Error("empty vote list should merge to nil")
	}
}

func TestSetWeightClamps(t *testing.T) {
	g := NewMerger()
	g.SetWeight("A", 100)
	if g.Weight("A") != 5 {
		t.Errorf("upper clamp: %g", g.Weight("A"))
	}
	g.SetWeight("A", 0)
	if g.Weight("A") != 0.05 {
		t.Errorf("lower clamp: %g", g.Weight("A"))
	}
	if g.Weight("unknown") != 1 {
		t.Error("unlearned weight should be 1")
	}
}

func TestLearnWeights(t *testing.T) {
	src, tgt := sourceSchema(), targetSchema()
	good := MatrixOver(src, tgt) // agrees with the user
	bad := MatrixOver(src, tgt)  // disagrees
	sID := "purchaseOrder/purchaseOrder/shipTo"
	tID := "shippingInfo/shippingInfo"
	good.Set(sID, tID, 0.8)
	bad.Set(sID, tID, -0.8)
	votes := []Vote{{"good", good}, {"bad", bad}}
	g := NewMerger()
	g.LearnWeights(votes, []Feedback{{sID, tID, true}}, 0.2)
	if g.Weight("good") <= 1 {
		t.Errorf("agreeing voter weight = %g, want > 1", g.Weight("good"))
	}
	if g.Weight("bad") >= 1 {
		t.Errorf("disagreeing voter weight = %g, want < 1", g.Weight("bad"))
	}
	// Rejection feedback flips the credit.
	g2 := NewMerger()
	g2.LearnWeights(votes, []Feedback{{sID, tID, false}}, 0.2)
	if g2.Weight("good") >= 1 || g2.Weight("bad") <= 1 {
		t.Errorf("rejection learning: good=%g bad=%g", g2.Weight("good"), g2.Weight("bad"))
	}
}

func TestLearnWeightsAbstainerUnchanged(t *testing.T) {
	src, tgt := sourceSchema(), targetSchema()
	abstainer := MatrixOver(src, tgt) // all zeros
	votes := []Vote{{"abstainer", abstainer}}
	g := NewMerger()
	g.LearnWeights(votes, []Feedback{{"purchaseOrder/purchaseOrder/shipTo", "shippingInfo/shippingInfo", true}}, 0.2)
	if g.Weight("abstainer") != 1 {
		t.Errorf("abstaining voter should not be penalized: %g", g.Weight("abstainer"))
	}
}

func TestLearnWeightsDefaultRate(t *testing.T) {
	src, tgt := sourceSchema(), targetSchema()
	m := MatrixOver(src, tgt)
	sID, tID := "purchaseOrder/purchaseOrder/shipTo", "shippingInfo/shippingInfo"
	m.Set(sID, tID, 1)
	g := NewMerger()
	g.LearnWeights([]Vote{{"v", m}}, []Feedback{{sID, tID, true}}, 0)
	if math.Abs(g.Weight("v")-1.1) > 1e-12 {
		t.Errorf("default rate: %g, want 1.1", g.Weight("v"))
	}
}

func TestWeightsCopy(t *testing.T) {
	g := NewMerger()
	g.SetWeight("A", 2)
	w := g.Weights()
	w["A"] = 99
	if g.Weight("A") != 2 {
		t.Error("Weights() must return a copy")
	}
}
