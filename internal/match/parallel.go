package match

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Row-sharded parallelism for the dense O(|S|·|T|) sweeps (forEachPair,
// the flooding propagation loops). Work is split by matrix row: every
// goroutine owns disjoint Scores[i] rows, so the sweeps need no locking
// and produce bit-identical results at any worker count — each cell is
// still computed by exactly one goroutine running the same code path.

// ResolveWorkers maps the package-wide parallelism convention to a
// concrete worker count: 0 (or any negative value) means GOMAXPROCS,
// 1 means fully sequential, n means n workers.
func ResolveWorkers(parallelism int) int {
	if parallelism == 1 {
		return 1
	}
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// shardRows invokes fn(i) exactly once for every row index in [0, n),
// fanning the rows out across up to workers goroutines. Rows are handed
// out through an atomic counter so uneven row costs (entities with many
// children vs. bare attributes) balance dynamically. workers <= 1 runs
// inline with no goroutine overhead.
func shardRows(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
