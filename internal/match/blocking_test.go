package match

import (
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/registry"
)

// blockingFixture builds a ~2000-element registry model and its
// perturbed copy — the same sizing regmatch.SizedPair uses for the
// BENCH_7 2000elem point — plus the ground truth mapping. Built once:
// the corpus is deterministic and the tests only read it.
var blockingFix struct {
	once sync.Once
	ctx  *Context
	gt   *registry.GroundTruth
}

func blockingFixture(t *testing.T) (*Context, *registry.GroundTruth) {
	t.Helper()
	blockingFix.once.Do(func() {
		const n = 2000
		cfg := registry.DefaultConfig()
		cfg.Seed = 42
		cfg.Models = 1
		cfg.ElementsTotal = n * 8 / 100
		cfg.AttributesTotal = n - cfg.ElementsTotal
		cfg.DomainValuesTotal = n
		src := registry.Generate(cfg).Models[0]
		pcfg := registry.DefaultPerturb()
		pcfg.Seed = 43
		tgt, gt := registry.Perturb(src, pcfg)
		blockingFix.ctx = NewContext(src, tgt)
		blockingFix.gt = gt
	})
	return blockingFix.ctx, blockingFix.gt
}

func TestBuildCandidatesRecallAndDensity(t *testing.T) {
	// The acceptance bar for the blocking index: on a realistically
	// perturbed pair (renames, doc paraphrases, drops) the candidate
	// pattern must keep >= 95% of the true pairs while storing < 5% of
	// the cross product. If this fails, BENCH_7's recall@k is capped
	// before a single voter runs.
	ctx, gt := blockingFixture(t)
	pat := BuildCandidates(ctx, BlockingOptions{Enabled: true})

	srcs := ctx.Source.Elements()
	tgts := ctx.Target.Elements()
	if len(srcs) < 1500 {
		t.Fatalf("fixture too small (%d source elements) to exercise registry-scale blocking", len(srcs))
	}
	srcIdx := make(map[string]int, len(srcs))
	for i, e := range srcs {
		srcIdx[e.ID] = i
	}
	tgtIdx := make(map[string]int, len(tgts))
	for j, e := range tgts {
		tgtIdx[e.ID] = j
	}
	hits, total := 0, 0
	for sid, tid := range gt.Pairs {
		i, ok1 := srcIdx[sid]
		j, ok2 := tgtIdx[tid]
		if !ok1 || !ok2 {
			continue
		}
		total++
		if pat.Contains(i, j) {
			hits++
		}
	}
	if total == 0 {
		t.Fatal("ground truth empty")
	}
	recall := float64(hits) / float64(total)
	density := float64(pat.NNZ()) / float64(len(srcs)*len(tgts))
	t.Logf("pattern recall %.4f (%d/%d), density %.4f", recall, hits, total, density)
	if recall < 0.95 {
		t.Errorf("pattern recall %.4f < 0.95", recall)
	}
	if density >= 0.05 {
		t.Errorf("pattern density %.4f >= 0.05", density)
	}
}

func TestBuildCandidatesDeterministic(t *testing.T) {
	ctx, _ := blockingFixture(t)
	a := BuildCandidates(ctx, BlockingOptions{Enabled: true})
	// A fresh context over the same schemas must produce the same
	// pattern: postings iterate in sorted term order and ties break by
	// column, so nothing depends on map iteration order.
	b := BuildCandidates(NewContext(ctx.Source, ctx.Target), BlockingOptions{Enabled: true})
	if !a.Equal(b) {
		t.Fatal("BuildCandidates not deterministic across runs")
	}
}

func TestBuildCandidatesParentClosure(t *testing.T) {
	ctx, _ := blockingFixture(t)
	pat := BuildCandidates(ctx, BlockingOptions{Enabled: true})
	srcs := ctx.Source.Elements()
	tgts := ctx.Target.Elements()
	srcIdx := make(map[string]int, len(srcs))
	for i, e := range srcs {
		srcIdx[e.ID] = i
	}
	tgtIdx := make(map[string]int, len(tgts))
	for j, e := range tgts {
		tgtIdx[e.ID] = j
	}
	// Closure invariant: for every surviving pair whose elements both
	// have non-schema parents, the parent pair is also in the pattern.
	for i, cols := range pat.Rows {
		for _, j := range cols {
			ps, pt := srcs[i].Parent(), tgts[j].Parent()
			if ps == nil || pt == nil || ps.Kind == model.KindSchema || pt.Kind == model.KindSchema {
				continue
			}
			pi, ok1 := srcIdx[ps.ID]
			pj, ok2 := tgtIdx[pt.ID]
			if !ok1 || !ok2 {
				continue
			}
			if !pat.Contains(pi, pj) {
				t.Fatalf("pair (%s,%s) survives but parent pair (%s,%s) missing from pattern",
					srcs[i].ID, tgts[j].ID, ps.ID, pt.ID)
			}
		}
	}
}
