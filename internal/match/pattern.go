package match

import "sort"

// Pattern is the sparsity pattern of a candidate pair set: for every
// source row, the sorted list of target columns that survived blocking.
// A Pattern is immutable once built and is shared by every matrix of one
// engine run (the voter panel, the merged matrix, each flooding round),
// so positional kernels can copy and merge values without per-cell
// index lookups.
type Pattern struct {
	// Rows[i] holds the stored target columns of source row i, strictly
	// ascending. Column indices are int32 — a matrix side is bounded by
	// element count, far below 2^31 — which halves the index footprint
	// at registry scale.
	Rows [][]int32

	nnz int
}

// NewPattern wraps per-row column lists into a Pattern. Each row is
// sorted and deduplicated defensively; rows may be nil (no candidates).
func NewPattern(rows [][]int32) *Pattern {
	p := &Pattern{Rows: rows}
	for i, cols := range rows {
		if !int32Sorted(cols) {
			sort.Slice(cols, func(a, b int) bool { return cols[a] < cols[b] })
		}
		rows[i] = int32Dedup(cols)
		p.nnz += len(rows[i])
	}
	return p
}

// NNZ returns the number of stored cells.
func (p *Pattern) NNZ() int { return p.nnz }

// pos returns the storage offset of column j within row i, or -1 when
// the cell is not part of the pattern. Binary search over the sorted row.
func (p *Pattern) pos(i int, j int32) int {
	if i < 0 || i >= len(p.Rows) {
		return -1
	}
	cols := p.Rows[i]
	lo, hi := 0, len(cols)
	for lo < hi {
		mid := (lo + hi) / 2
		if cols[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(cols) && cols[lo] == j {
		return lo
	}
	return -1
}

// Contains reports whether cell (i, j) is stored.
func (p *Pattern) Contains(i, j int) bool { return p.pos(i, int32(j)) >= 0 }

// Equal reports whether two patterns store exactly the same cell set.
func (p *Pattern) Equal(q *Pattern) bool {
	if p == q {
		return true
	}
	if p == nil || q == nil || len(p.Rows) != len(q.Rows) || p.nnz != q.nnz {
		return false
	}
	for i := range p.Rows {
		a, b := p.Rows[i], q.Rows[i]
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if a[k] != b[k] {
				return false
			}
		}
	}
	return true
}

// Bytes estimates the pattern's resident size for cache accounting.
func (p *Pattern) Bytes() int64 {
	if p == nil {
		return 0
	}
	return int64(p.nnz)*4 + int64(len(p.Rows))*24 + 64
}

func int32Sorted(a []int32) bool {
	for k := 1; k < len(a); k++ {
		if a[k-1] > a[k] {
			return false
		}
	}
	return true
}

func int32Dedup(a []int32) []int32 {
	if len(a) < 2 {
		return a
	}
	out := a[:1]
	for _, v := range a[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
