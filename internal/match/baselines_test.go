package match

import (
	"testing"

	"repro/internal/model"
)

func TestNameEqualityMatcher(t *testing.T) {
	src := model.NewSchema("s", "er")
	e := src.AddElement(nil, "Person", model.KindEntity, model.ContainsElement)
	src.AddElement(e, "Name", model.KindAttribute, model.ContainsAttribute)
	tgt := model.NewSchema("t", "er")
	f := tgt.AddElement(nil, "person", model.KindEntity, model.ContainsElement)
	tgt.AddElement(f, "title", model.KindAttribute, model.ContainsAttribute)
	ctx := NewContext(src, tgt)
	m := (NameEqualityMatcher{}).Vote(ctx)
	if got := m.Get("s/Person", "t/person"); got != 0.95 {
		t.Errorf("case-insensitive equality = %g", got)
	}
	if got := m.Get("s/Person/Name", "t/person/title"); got != 0 {
		t.Errorf("different names = %g", got)
	}
}

func TestEditDistanceMatcher(t *testing.T) {
	ctx := ctxFixture()
	m := (EditDistanceMatcher{}).Vote(ctx)
	same := m.Get("purchaseOrder/purchaseOrder/shipTo/subtotal", "shippingInfo/shippingInfo/total")
	diff := m.Get("purchaseOrder/purchaseOrder/shipTo/firstName", "shippingInfo/shippingInfo/total")
	if same <= diff {
		t.Errorf("edit distance: close pair %g should beat far pair %g", same, diff)
	}
}

func TestCOMAMatcherUsesStructure(t *testing.T) {
	// Same entity names, children decide.
	src := model.NewSchema("s", "er")
	e := src.AddElement(nil, "rec", model.KindEntity, model.ContainsElement)
	src.AddElement(e, "salary", model.KindAttribute, model.ContainsAttribute)
	src.AddElement(e, "dept", model.KindAttribute, model.ContainsAttribute)
	tgt := model.NewSchema("t", "er")
	f := tgt.AddElement(nil, "rec", model.KindEntity, model.ContainsElement)
	tgt.AddElement(f, "salary", model.KindAttribute, model.ContainsAttribute)
	tgt.AddElement(f, "dept", model.KindAttribute, model.ContainsAttribute)
	g := tgt.AddElement(nil, "rec2", model.KindEntity, model.ContainsElement)
	tgt.AddElement(g, "runway", model.KindAttribute, model.ContainsAttribute)

	ctx := NewContext(src, tgt)
	m := (COMAMatcher{}).Vote(ctx)
	right := m.Get("s/rec", "t/rec")
	wrong := m.Get("s/rec", "t/rec2")
	if right <= wrong {
		t.Errorf("COMA: %g should beat %g", right, wrong)
	}
	if right <= 0 {
		t.Errorf("COMA on identical entity = %g, want positive", right)
	}
}

func TestCOMAIgnoresDocumentation(t *testing.T) {
	// Two elements whose only shared signal is documentation: COMA should
	// not see it, the doc voter should.
	src := model.NewSchema("s", "er")
	e := src.AddElement(nil, "Xq", model.KindEntity, model.ContainsElement)
	e.Doc = "the airport facility where aircraft land and depart"
	tgt := model.NewSchema("t", "er")
	f := tgt.AddElement(nil, "Zw", model.KindEntity, model.ContainsElement)
	f.Doc = "a facility where aircraft land, an airport"
	ctx := NewContext(src, tgt)
	coma := (COMAMatcher{}).Vote(ctx).Get("s/Xq", "t/Zw")
	doc := (DocVoter{}).Vote(ctx).Get("s/Xq", "t/Zw")
	if doc <= 0 {
		t.Errorf("doc voter = %g, want positive", doc)
	}
	if coma >= doc {
		t.Errorf("COMA (%g) should not see documentation signal (%g)", coma, doc)
	}
}

func TestBaselineScoresInRange(t *testing.T) {
	ctx := ctxFixture()
	for _, v := range []Voter{NameEqualityMatcher{}, EditDistanceMatcher{}, COMAMatcher{}, MelnikMatcher{}} {
		m := v.Vote(ctx)
		for i := range m.Scores {
			for j := range m.Scores[i] {
				if c := m.Scores[i][j]; c < -0.99 || c > 0.99 {
					t.Errorf("%s: score %g out of range", v.Name(), c)
				}
			}
		}
	}
}

func TestCupidMatcherLeavesInheritParentContext(t *testing.T) {
	// Two leaves named identically under different entities: Cupid's
	// structural component should prefer the pair whose parents also
	// align linguistically.
	src := model.NewSchema("s", "er")
	e1 := src.AddElement(nil, "employee", model.KindEntity, model.ContainsElement)
	src.AddElement(e1, "name", model.KindAttribute, model.ContainsAttribute)
	tgt := model.NewSchema("t", "er")
	f1 := tgt.AddElement(nil, "employee", model.KindEntity, model.ContainsElement)
	tgt.AddElement(f1, "name", model.KindAttribute, model.ContainsAttribute)
	f2 := tgt.AddElement(nil, "airport", model.KindEntity, model.ContainsElement)
	tgt.AddElement(f2, "name", model.KindAttribute, model.ContainsAttribute)

	ctx := NewContext(src, tgt)
	m := (CupidMatcher{}).Vote(ctx)
	right := m.Get("s/employee/name", "t/employee/name")
	wrong := m.Get("s/employee/name", "t/airport/name")
	if right <= wrong {
		t.Errorf("Cupid context: right=%g wrong=%g", right, wrong)
	}
}

func TestCupidMatcherInnerNodesUseLeaves(t *testing.T) {
	// Entities with alien names but identical attribute sets: the
	// structural half should lift the pair.
	src := model.NewSchema("s", "er")
	e := src.AddElement(nil, "zebra", model.KindEntity, model.ContainsElement)
	src.AddElement(e, "salary", model.KindAttribute, model.ContainsAttribute)
	src.AddElement(e, "department", model.KindAttribute, model.ContainsAttribute)
	tgt := model.NewSchema("t", "er")
	f := tgt.AddElement(nil, "quokka", model.KindEntity, model.ContainsElement)
	tgt.AddElement(f, "salary", model.KindAttribute, model.ContainsAttribute)
	tgt.AddElement(f, "department", model.KindAttribute, model.ContainsAttribute)
	g := tgt.AddElement(nil, "wombat", model.KindEntity, model.ContainsElement)
	tgt.AddElement(g, "runway", model.KindAttribute, model.ContainsAttribute)

	ctx := NewContext(src, tgt)
	m := (CupidMatcher{}).Vote(ctx)
	right := m.Get("s/zebra", "t/quokka")
	wrong := m.Get("s/zebra", "t/wombat")
	if right <= wrong || right <= 0 {
		t.Errorf("Cupid structure: right=%g wrong=%g", right, wrong)
	}
}

func TestCupidMatcherCustomWeight(t *testing.T) {
	ctx := ctxFixture()
	pureLing := (CupidMatcher{WStruct: 0.0001}).Vote(ctx)
	pureStruct := (CupidMatcher{WStruct: 0.9999}).Vote(ctx)
	// The two extremes must differ somewhere.
	differ := false
	for i := range pureLing.Scores {
		for j := range pureLing.Scores[i] {
			if pureLing.Scores[i][j] != pureStruct.Scores[i][j] {
				differ = true
			}
		}
	}
	if !differ {
		t.Error("WStruct has no effect")
	}
}
