package match

import "repro/internal/model"

// Incremental recomputation (DESIGN.md §12). The refinement loop edits a
// handful of elements between runs, so each stage re-scores only the
// dirty rows and columns and copies every other cell from the previous
// run's output, aligned by element ID. Bit-identity with a cold run
// follows from two rules enforced here and in the engine:
//
//  1. Every recomputed cell goes through the exact same per-cell kernel
//     as the full path (scoreFunc via forEachPair's pair logic,
//     Merger.mergeCell, floodCell) — same float64 ops, same order.
//  2. A cell is only ever copied when none of its inputs changed; the
//     caller's dirty sets must be closed under each stage's
//     dependencies (parents for StructureVoter, per-round
//     parent/children expansion for flooding — see HarmonyFloodPatch).

// scoreFunc scores one kind-compatible element pair; each built-in
// voter exposes its scoring closure so Vote and VotePatch share it.
type scoreFunc func(s, t *model.Element) float64

// IncrementalVoter is a Voter that can re-score only dirty rows and
// columns against a previous vote over the same context options.
type IncrementalVoter interface {
	Voter
	// VotePatch returns the matrix Vote(ctx) would return, reusing prev
	// (an earlier Vote output, aligned by element ID) for every cell
	// whose source row and target column are both clean.
	VotePatch(ctx *Context, prev *Matrix, dirtySrc, dirtyTgt map[string]bool) *Matrix
}

// CorpusSensitive marks voters whose scores depend on corpus-global
// state (TF-IDF document frequencies): any documentation change moves
// every IDF weight, so such voters need a full revote whenever the
// corpus fingerprint changes, not just dirty rows. Implemented by
// DocVoter.
type CorpusSensitive interface {
	CorpusSensitive() bool
}

// voteAll is the shared full-sweep body of every built-in voter.
func voteAll(ctx *Context, score scoreFunc) *Matrix {
	m := ctx.NewMatrix()
	forEachPair(ctx, m, score)
	return m
}

// votePatch recomputes rows in dirtySrc and columns in dirtyTgt (plus
// any row/column with no counterpart in prev) and copies the rest from
// prev. The recompute branch duplicates forEachPair's pair logic —
// including the firm -0.75 for kind-incompatible pairs — so a patched
// cell is bit-identical to its full-sweep value.
//
// In sparse mode the copy branch additionally requires the cell to be
// present in prev's pattern: a cell new to the current pattern has no
// previous value and is recomputed, which is exactly what a cold sparse
// run would compute for it (both sides are clean, so the scorer reads
// identical context state). A storage-mode flip between runs (blocking
// toggled) degrades to a full sweep.
func votePatch(ctx *Context, prev *Matrix, dirtySrc, dirtyTgt map[string]bool, score scoreFunc) *Matrix {
	if prev == nil {
		return voteAll(ctx, score)
	}
	m := ctx.NewMatrix()
	if m.Sparse() != prev.Sparse() {
		forEachPair(ctx, m, score)
		return m
	}
	oldCol := alignIndices(m.Targets, prev.TargetIndex)
	if m.Sparse() {
		pat := m.pat
		shardRows(ctx.Workers(), len(m.Sources), func(i int) {
			s := m.Sources[i]
			vals := m.vals[i]
			oi := prev.SourceIndex(s.ID)
			rowClean := oi >= 0 && !dirtySrc[s.ID]
			for k, j := range pat.Rows[i] {
				t := m.Targets[j]
				if rowClean {
					if oj := oldCol[j]; oj >= 0 && !dirtyTgt[t.ID] {
						if op := prev.pat.pos(oi, int32(oj)); op >= 0 {
							vals[k] = prev.vals[oi][op]
							continue
						}
					}
				}
				if !kindCompatible(s, t) {
					vals[k] = -0.75
					continue
				}
				vals[k] = score(s, t)
			}
		})
		return m
	}
	shardRows(ctx.Workers(), len(m.Sources), func(i int) {
		s := m.Sources[i]
		row := m.Scores[i]
		oi := prev.SourceIndex(s.ID)
		rowClean := oi >= 0 && !dirtySrc[s.ID]
		var prevRow []float64
		if rowClean {
			prevRow = prev.Scores[oi]
		}
		for j, t := range m.Targets {
			if rowClean {
				if oj := oldCol[j]; oj >= 0 && !dirtyTgt[t.ID] {
					row[j] = prevRow[oj]
					continue
				}
			}
			if !kindCompatible(s, t) {
				row[j] = -0.75
				continue
			}
			row[j] = score(s, t)
		}
	})
	return m
}

// alignIndices maps each element to its index in a previous matrix
// (-1 when the element is new).
func alignIndices(elems []*model.Element, index func(string) int) []int {
	out := make([]int, len(elems))
	for i, e := range elems {
		out[i] = index(e.ID)
	}
	return out
}

// ExpandDirty closes a dirty element-ID set under the voter panel's
// structural dependency: StructureVoter scores an element by its
// children's names, so whenever an element changed, its current parent
// must be re-scored too. Parents of *removed* elements are the caller's
// job (they are absent from sch); the engine folds them in from its
// previous-run snapshot.
func ExpandDirty(sch *model.Schema, dirty map[string]bool) map[string]bool {
	out := make(map[string]bool, 2*len(dirty))
	for id := range dirty {
		out[id] = true
		e := sch.Element(id)
		if e == nil {
			continue
		}
		if p := e.Parent(); p != nil && p.Kind != model.KindSchema {
			out[p.ID] = true
		}
	}
	return out
}

// MatrixBytes estimates a matrix's resident size for cache accounting:
// the score payload plus per-row slice headers and the two index maps.
// Sparse matrices charge their stored cells and their share of the
// (immutable, run-shared) pattern instead of the cross product.
func MatrixBytes(m *Matrix) int64 {
	if m == nil {
		return 0
	}
	r, c := int64(len(m.Sources)), int64(len(m.Targets))
	if m.Sparse() {
		return int64(m.NNZ())*8 + m.pat.Bytes() + int64(len(m.extra))*24 + (r+c)*64 + 256
	}
	return r*c*8 + (r+c)*64 + 256
}

// HarmonyFloodPatch warm-starts flooding from a previous run's recorded
// FloodState. Per round it recomputes only cells in the cross-shaped
// region R×all ∪ all×C and copies the rest from the corresponding
// recorded round, where R and C start as the callers' dirty sets and
// grow by parents(R) ∪ children(R) each round — exactly the cells a
// changed cell can influence: an up-sweep reads children-pair scores
// (dirty child ⇒ parent pair dirty next round) and a down-sweep reads
// the parent pair (dirty parent ⇒ child pairs dirty next round). The
// cross shape is closed under that expansion, so every recomputed cell
// reads a round-start matrix equal to the cold run's, and floodCell
// makes the recomputation itself bit-identical.
//
// ok is false when prev cannot warm-start this schedule (nil, different
// resolved options, or wrong round count); callers then fall back to
// HarmonyFloodState.
func HarmonyFloodPatch(prev *FloodState, merged *Matrix, source, target *model.Schema, dirtySrc, dirtyTgt map[string]bool, opts FloodOptions) (*Matrix, *FloodState, bool) {
	opts.defaults()
	if prev == nil || len(prev.Rounds) != opts.Iterations+1 ||
		prev.Iterations != opts.Iterations ||
		prev.UpWeight != opts.UpWeight || prev.DownWeight != opts.DownWeight {
		return nil, nil, false
	}
	if len(prev.Rounds) > 0 && prev.Rounds[0].Sparse() != merged.Sparse() {
		return nil, nil, false // blocking toggled between runs
	}
	if merged.Sparse() && !prev.Rounds[0].CandidatePattern().Equal(merged.CandidatePattern()) {
		// Flooding is the one stage with cross-cell reads: a cell's value
		// depends on which of its structural neighbors exist in the
		// pattern. An edit that reshuffles any row's top-K therefore moves
		// flood values in rows the dirty-set closure cannot see, so a
		// drifted pattern forfeits the warm start entirely. (Voter and
		// merge patches stay safe — they are strictly per-cell.)
		return nil, nil, false
	}
	workers := ResolveWorkers(opts.Parallelism)
	old := prev.Rounds[0]
	oldRow := alignIndices(merged.Sources, old.SourceIndex)
	oldCol := alignIndices(merged.Targets, old.TargetIndex)
	// Elements without a counterpart in the previous run are dirty by
	// definition; fold them in so the copy branch never misaligns.
	R := copyIDSet(dirtySrc)
	C := copyIDSet(dirtyTgt)
	for i, e := range merged.Sources {
		if oldRow[i] < 0 {
			R[e.ID] = true
		}
	}
	for j, e := range merged.Targets {
		if oldCol[j] < 0 {
			C[e.ID] = true
		}
	}
	st := &FloodState{
		Rounds:     []*Matrix{merged.Clone()},
		Iterations: opts.Iterations,
		UpWeight:   opts.UpWeight,
		DownWeight: opts.DownWeight,
	}
	m := merged
	for it := 0; it < opts.Iterations; it++ {
		R = expandFloodSet(R, source)
		C = expandFloodSet(C, target)
		prevRound := prev.Rounds[it+1]
		next := NewMatrixLike(m)
		if m.Sparse() {
			// Sparse cross-shaped patch. The copy branch additionally
			// needs the cell to exist in the recorded round's pattern; a
			// cell new to the current pattern is recomputed, which is
			// sound for *any* clean cell: the round-start matrix equals
			// the cold run's by induction, so floodCell reproduces the
			// cold value exactly.
			cur := m
			shardRows(workers, len(m.Sources), func(i int) {
				s := cur.Sources[i]
				rowDirty := R[s.ID]
				oi := oldRow[i]
				for k, j := range cur.pat.Rows[i] {
					t := cur.Targets[j]
					if !rowDirty && !C[t.ID] {
						if op := prevRound.pat.pos(oi, int32(oldCol[j])); op >= 0 {
							next.vals[i][k] = prevRound.vals[oi][op]
							continue
						}
					}
					next.vals[i][k] = floodCell(cur, s, t, i, int(j), cur.vals[i][k], opts)
				}
			})
		} else {
			cur := m
			shardRows(workers, len(m.Sources), func(i int) {
				s := cur.Sources[i]
				rowDirty := R[s.ID]
				oi := oldRow[i]
				row := cur.Scores[i]
				for j, t := range cur.Targets {
					if !rowDirty && !C[t.ID] {
						next.Scores[i][j] = prevRound.Scores[oi][oldCol[j]]
						continue
					}
					next.Scores[i][j] = floodCell(cur, s, t, i, j, row[j], opts)
				}
			})
		}
		m = next
		st.Rounds = append(st.Rounds, next.Clone())
	}
	return m, st, true
}

func copyIDSet(in map[string]bool) map[string]bool {
	out := make(map[string]bool, len(in))
	for id, v := range in {
		if v {
			out[id] = true
		}
	}
	return out
}

// expandFloodSet grows a dirty set by one structural hop in each
// direction on the current schema.
func expandFloodSet(set map[string]bool, sch *model.Schema) map[string]bool {
	out := make(map[string]bool, 2*len(set))
	for id := range set {
		out[id] = true
		e := sch.Element(id)
		if e == nil {
			continue
		}
		if p := e.Parent(); p != nil && p.Kind != model.KindSchema {
			out[p.ID] = true
		}
		for _, c := range e.Children() {
			out[c.ID] = true
		}
	}
	return out
}
