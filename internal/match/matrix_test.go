package match

import (
	"strings"
	"testing"

	"repro/internal/model"
)

// fixture schemata: a documented purchase-order source and a shipping
// target, the Figure 2 pair extended with decoys.

func sourceSchema() *model.Schema {
	s := model.NewSchema("purchaseOrder", "xsd")
	po := s.AddElement(nil, "purchaseOrder", model.KindEntity, model.ContainsElement)
	po.Doc = "A purchase order submitted by a customer"
	shipTo := s.AddElement(po, "shipTo", model.KindEntity, model.ContainsElement)
	shipTo.Doc = "Shipping destination address for the order"
	fn := s.AddElement(shipTo, "firstName", model.KindAttribute, model.ContainsAttribute)
	fn.DataType = "string"
	fn.Doc = "Given name of the person receiving the shipment"
	ln := s.AddElement(shipTo, "lastName", model.KindAttribute, model.ContainsAttribute)
	ln.DataType = "string"
	ln.Doc = "Family name of the person receiving the shipment"
	st := s.AddElement(shipTo, "subtotal", model.KindAttribute, model.ContainsAttribute)
	st.DataType = "decimal"
	st.Doc = "Sum of line item prices before tax"
	return s
}

func targetSchema() *model.Schema {
	s := model.NewSchema("shippingInfo", "xsd")
	si := s.AddElement(nil, "shippingInfo", model.KindEntity, model.ContainsElement)
	si.Doc = "Information about where an order ships"
	nm := s.AddElement(si, "name", model.KindAttribute, model.ContainsAttribute)
	nm.DataType = "string"
	nm.Doc = "Full name of the shipment recipient"
	tot := s.AddElement(si, "total", model.KindAttribute, model.ContainsAttribute)
	tot.DataType = "decimal"
	tot.Doc = "Total price of the order including tax"
	return s
}

func TestMatrixBasics(t *testing.T) {
	src, tgt := sourceSchema(), targetSchema()
	m := MatrixOver(src, tgt)
	if len(m.Sources) != 5 || len(m.Targets) != 3 {
		t.Fatalf("matrix is %dx%d", len(m.Sources), len(m.Targets))
	}
	m.Set("purchaseOrder/purchaseOrder/shipTo", "shippingInfo/shippingInfo", 0.8)
	if got := m.Get("purchaseOrder/purchaseOrder/shipTo", "shippingInfo/shippingInfo"); got != 0.8 {
		t.Errorf("Get = %g", got)
	}
	if got := m.Get("ghost", "shippingInfo/shippingInfo"); got != 0 {
		t.Errorf("unknown pair = %g", got)
	}
	m.Set("ghost", "also-ghost", 1) // must not panic
	if m.SourceIndex("ghost") != -1 || m.TargetIndex("ghost") != -1 {
		t.Error("unknown ids should index to -1")
	}
}

func TestMatrixCloneIndependent(t *testing.T) {
	m := MatrixOver(sourceSchema(), targetSchema())
	m.Scores[0][0] = 0.5
	c := m.Clone()
	c.Scores[0][0] = -0.5
	if m.Scores[0][0] != 0.5 {
		t.Error("clone aliases original")
	}
}

func TestMatrixClamp(t *testing.T) {
	m := MatrixOver(sourceSchema(), targetSchema())
	m.Scores[0][0] = 3
	m.Scores[1][1] = -3
	m.Clamp(-0.99, 0.99)
	if m.Scores[0][0] != 0.99 || m.Scores[1][1] != -0.99 {
		t.Errorf("clamp: %g, %g", m.Scores[0][0], m.Scores[1][1])
	}
}

func TestAbove(t *testing.T) {
	m := MatrixOver(sourceSchema(), targetSchema())
	m.Scores[0][0] = 0.9
	m.Scores[1][1] = 0.5
	m.Scores[2][2] = 0.3
	got := m.Above(0.5)
	if len(got) != 2 {
		t.Fatalf("Above = %v", got)
	}
	if got[0].Confidence != 0.9 {
		t.Errorf("row-major order broken: %v", got)
	}
}

func TestMaxPerSourceWithTies(t *testing.T) {
	m := MatrixOver(sourceSchema(), targetSchema())
	// Row 0: tie between cols 0 and 2.
	m.Scores[0][0] = 0.7
	m.Scores[0][2] = 0.7
	m.Scores[0][1] = 0.2
	// Row 1: below threshold.
	m.Scores[1][0] = 0.1
	got := m.MaxPerSource(0.5)
	if len(got) != 2 {
		t.Fatalf("MaxPerSource = %v", got)
	}
	for _, c := range got {
		if c.Confidence != 0.7 {
			t.Errorf("tie handling: %v", c)
		}
	}
}

func TestStableMatchingOneToOne(t *testing.T) {
	m := MatrixOver(sourceSchema(), targetSchema())
	// Two sources both prefer target 0; higher score wins, other takes
	// second best.
	m.Scores[3][1] = 0.9 // lastName → name
	m.Scores[2][1] = 0.8 // firstName → name
	m.Scores[2][2] = 0.6 // firstName → total (wrong but available)
	got := m.StableMatching(0.5)
	if len(got) != 2 {
		t.Fatalf("StableMatching = %v", got)
	}
	if got[0].Source.Name != "lastName" || got[0].Target.Name != "name" {
		t.Errorf("first pick: %v", got[0])
	}
	// One-to-one: no target repeated.
	seen := map[string]bool{}
	for _, c := range got {
		if seen[c.Target.ID] {
			t.Error("target matched twice")
		}
		seen[c.Target.ID] = true
	}
}

func TestCorrespondenceString(t *testing.T) {
	src := sourceSchema()
	tgt := targetSchema()
	c := Correspondence{src.Elements()[0], tgt.Elements()[0], 0.8}
	if !strings.Contains(c.String(), "+0.80") {
		t.Errorf("String = %q", c.String())
	}
}

func TestMatrixString(t *testing.T) {
	m := MatrixOver(sourceSchema(), targetSchema())
	out := m.String()
	if !strings.Contains(out, "shipTo") || !strings.Contains(out, "total") {
		t.Errorf("matrix render:\n%s", out)
	}
}

func TestStableMatchingDeterministicOnTies(t *testing.T) {
	// Fully tied matrix: the (score desc, i asc, j asc) total order must
	// pick the diagonal, identically on every run.
	src, tgt := sourceSchema(), targetSchema()
	m := MatrixOver(src, tgt)
	for i := range m.Scores {
		for j := range m.Scores[i] {
			m.Scores[i][j] = 0.5
		}
	}
	want := m.StableMatching(0.25)
	n := len(m.Targets)
	if len(m.Sources) < n {
		n = len(m.Sources)
	}
	if len(want) != n {
		t.Fatalf("tied matching size = %d, want %d", len(want), n)
	}
	for k, c := range want {
		if c.Source != m.Sources[k] || c.Target != m.Targets[k] {
			t.Errorf("pick %d = %v, want diagonal pair", k, c)
		}
	}
	for round := 0; round < 20; round++ {
		got := m.StableMatching(0.25)
		if len(got) != len(want) {
			t.Fatalf("round %d: size changed", round)
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("round %d: selection changed at %d: %v vs %v", round, k, got[k], want[k])
			}
		}
	}
}
