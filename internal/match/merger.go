package match

import "math"

// Merger combines the voter panel's matrices into one (paper §4: "Given k
// match voters, the vote merger combines the k values for each pair into
// a single confidence score. The vote merger weights each matcher's
// confidence based on its magnitude ... [and] weights each matcher in
// toto based on past performance").
type Merger struct {
	// weights holds the per-voter performance weight (default 1).
	weights map[string]float64
	// MagnitudeWeighting toggles |score| weighting (the DESIGN.md merger
	// ablation). On by default.
	MagnitudeWeighting bool
}

// NewMerger returns a merger with uniform voter weights.
func NewMerger() *Merger {
	return &Merger{weights: map[string]float64{}, MagnitudeWeighting: true}
}

// Weight returns the performance weight of a voter (1 when unlearned).
func (g *Merger) Weight(voter string) float64 {
	if w, ok := g.weights[voter]; ok {
		return w
	}
	return 1
}

// SetWeight assigns a voter's performance weight, clamped to [0.05, 5].
func (g *Merger) SetWeight(voter string, w float64) {
	if w < 0.05 {
		w = 0.05
	}
	if w > 5 {
		w = 5
	}
	g.weights[voter] = w
}

// Vote is one voter's matrix tagged with the voter's name.
type Vote struct {
	Voter  string
	Matrix *Matrix
}

// Merge combines per-voter matrices. Each cell's merged confidence is
//
//	Σ_i w_i · |c_i| · c_i  /  Σ_i w_i · |c_i|
//
// so voters near zero ("did not see enough evidence to make a strong
// prediction") barely influence the result, and per-voter performance
// weights w_i scale whole matchers. With MagnitudeWeighting off, |c_i| is
// replaced by 1 (plain weighted mean), the ablation baseline.
func (g *Merger) Merge(votes []Vote) *Matrix {
	if len(votes) == 0 {
		return nil
	}
	out := NewMatrixLike(votes[0].Matrix)
	if out.Sparse() {
		if votesAligned(votes, out.pat) {
			for i := range out.vals {
				for k := range out.vals[i] {
					out.vals[i][k] = g.mergeStored(votes, i, k)
				}
			}
			return out
		}
		// A vote with a foreign pattern (defensive — the engine hands
		// every voter the same context) falls back to At-based reads.
		for i, cols := range out.pat.Rows {
			for k, j := range cols {
				out.vals[i][k] = g.mergeCellAt(votes, i, int(j))
			}
		}
		return out
	}
	for i := range out.Scores {
		for j := range out.Scores[i] {
			out.Scores[i][j] = g.mergeCell(votes, i, j)
		}
	}
	return out
}

// votesAligned reports whether every vote matrix is sparse over a
// pattern equal to pat (with no overflow cells), which licenses the
// positional merge kernel.
func votesAligned(votes []Vote, pat *Pattern) bool {
	for _, v := range votes {
		m := v.Matrix
		if !m.Sparse() || len(m.extra) > 0 || !m.pat.Equal(pat) {
			return false
		}
	}
	return true
}

// mergeCell merges one cell across the panel, clamped to (-1, +1) open
// bounds (exactly ±1 is reserved for user decisions). The single kernel
// serves Merge and MergePatch so incremental re-merges are bit-identical
// — the votes slice must present the panel in the same order.
func (g *Merger) mergeCell(votes []Vote, i, j int) float64 {
	var num, den float64
	for _, v := range votes {
		c := v.Matrix.Scores[i][j]
		w := g.Weight(v.Voter)
		mag := 1.0
		if g.MagnitudeWeighting {
			mag = math.Abs(c)
		}
		num += w * mag * c
		den += w * mag
	}
	return clampMerged(num, den)
}

// mergeStored is mergeCell's positional twin for aligned sparse votes:
// storage offset k addresses the same (row, column) cell in every vote,
// so the arithmetic — and therefore the result bits — match mergeCell's
// for that cell.
func (g *Merger) mergeStored(votes []Vote, i, k int) float64 {
	var num, den float64
	for _, v := range votes {
		c := v.Matrix.vals[i][k]
		w := g.Weight(v.Voter)
		mag := 1.0
		if g.MagnitudeWeighting {
			mag = math.Abs(c)
		}
		num += w * mag * c
		den += w * mag
	}
	return clampMerged(num, den)
}

// mergeCellAt is the representation-agnostic kernel (At instead of
// direct indexing) for mixed-pattern vote sets.
func (g *Merger) mergeCellAt(votes []Vote, i, j int) float64 {
	var num, den float64
	for _, v := range votes {
		c := v.Matrix.At(i, j)
		w := g.Weight(v.Voter)
		mag := 1.0
		if g.MagnitudeWeighting {
			mag = math.Abs(c)
		}
		num += w * mag * c
		den += w * mag
	}
	return clampMerged(num, den)
}

func clampMerged(num, den float64) float64 {
	var out float64
	if den > 0 {
		out = num / den
	}
	if out < -0.99 {
		out = -0.99
	}
	if out > 0.99 {
		out = 0.99
	}
	return out
}

// MergePatch re-merges only cells whose source row or target column is
// dirty, copying every other cell from prev (a full Merge output over
// the previous element lists, aligned by element ID). Rows or columns
// absent from prev are treated as dirty. The votes must be over the
// current element lists, in the same panel order as the run that
// produced prev.
func (g *Merger) MergePatch(votes []Vote, prev *Matrix, dirtySrc, dirtyTgt map[string]bool) *Matrix {
	if len(votes) == 0 {
		return nil
	}
	if prev == nil {
		return g.Merge(votes)
	}
	proto := votes[0].Matrix
	if proto.Sparse() != prev.Sparse() || len(prev.extra) > 0 {
		// Blocking toggled between runs, or a previous matrix carrying
		// out-of-pattern cells (shouldn't happen for a pre-pin merge):
		// patching is unsound, recompute everything.
		return g.Merge(votes)
	}
	if proto.Sparse() {
		if !votesAligned(votes, proto.pat) {
			return g.Merge(votes)
		}
		out := NewMatrixLike(proto)
		oldCol := alignIndices(out.Targets, prev.TargetIndex)
		for i, s := range out.Sources {
			oi := prev.SourceIndex(s.ID)
			rowClean := oi >= 0 && !dirtySrc[s.ID]
			for k, j := range out.pat.Rows[i] {
				t := out.Targets[j]
				if rowClean {
					if oj := oldCol[j]; oj >= 0 && !dirtyTgt[t.ID] {
						if op := prev.pat.pos(oi, int32(oj)); op >= 0 {
							out.vals[i][k] = prev.vals[oi][op]
							continue
						}
						// Cell joined the pattern since prev: recompute.
						// Both sides are clean, so the merge reads votes
						// identical to a cold run's.
					}
				}
				out.vals[i][k] = g.mergeStored(votes, i, k)
			}
		}
		return out
	}
	out := NewMatrix(proto.Sources, proto.Targets)
	oldCol := alignIndices(out.Targets, prev.TargetIndex)
	for i, s := range out.Sources {
		oi := prev.SourceIndex(s.ID)
		rowClean := oi >= 0 && !dirtySrc[s.ID]
		for j, t := range out.Targets {
			if rowClean {
				if oj := oldCol[j]; oj >= 0 && !dirtyTgt[t.ID] {
					out.Scores[i][j] = prev.Scores[oi][oj]
					continue
				}
			}
			out.Scores[i][j] = g.mergeCell(votes, i, j)
		}
	}
	return out
}

// Feedback is one user decision on a pair: accepted (confidence pinned to
// +1) or rejected (pinned to -1).
type Feedback struct {
	SourceID, TargetID string
	Accepted           bool
}

// LearnWeights updates per-voter performance weights from user feedback
// (§4.3). A voter is credited when the sign of its vote agrees with the
// user's decision, proportionally to the magnitude of its vote, and
// debited when it disagrees. The learning rate is deliberately gentle:
// "learning new weights must be done carefully" (§4.3).
func (g *Merger) LearnWeights(votes []Vote, feedback []Feedback, rate float64) {
	if rate <= 0 {
		rate = 0.1
	}
	for _, v := range votes {
		var credit float64
		n := 0
		for _, f := range feedback {
			c := v.Matrix.Get(f.SourceID, f.TargetID)
			if c == 0 {
				continue // abstained: no credit either way
			}
			want := 1.0
			if !f.Accepted {
				want = -1
			}
			credit += want * c // agreement in sign → positive
			n++
		}
		if n == 0 {
			continue
		}
		avg := credit / float64(n) // in [-1, 1]
		g.SetWeight(v.Voter, g.Weight(v.Voter)*(1+rate*avg))
	}
}

// Weights returns a copy of the learned weight table.
func (g *Merger) Weights() map[string]float64 {
	out := make(map[string]float64, len(g.weights))
	for k, v := range g.weights {
		out[k] = v
	}
	return out
}
