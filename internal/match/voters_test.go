package match

import (
	"testing"

	"repro/internal/lingo"
	"repro/internal/model"
)

func ctxFixture() *Context {
	return NewContext(sourceSchema(), targetSchema())
}

func TestCalibrate(t *testing.T) {
	if got := calibrate(1, 0.5, 0.9, 0.5); got != 0.9 {
		t.Errorf("perfect sim = %g", got)
	}
	if got := calibrate(0, 0.5, 0.9, 0.5); got != -0.5 {
		t.Errorf("zero sim = %g", got)
	}
	if got := calibrate(0.5, 0.5, 0.9, 0.5); got != 0 {
		t.Errorf("pivot sim = %g", got)
	}
	if got := calibrate(0.75, 0.5, 0.9, 0.5); got != 0.45 {
		t.Errorf("mid sim = %g", got)
	}
	if got := calibrate(0.8, 1, 0.9, 0.5); got >= 0 {
		t.Errorf("pivot=1, sub-pivot sim should be negative: %g", got)
	}
	if got := calibrate(1, 1, 0.9, 0.5); got != 0.9 {
		t.Errorf("pivot=1 at sim=1 = %g", got)
	}
	if got := calibrate(0.5, 0, 0.9, 0.5); got != 0.45 {
		t.Errorf("pivot=0 = %g", got)
	}
}

func TestNameVoterIdenticalAndDisjoint(t *testing.T) {
	ctx := ctxFixture()
	m := (NameVoter{}).Vote(ctx)
	// subtotal vs total share the "total" token: should be positive.
	if got := m.Get("purchaseOrder/purchaseOrder/shipTo/subtotal", "shippingInfo/shippingInfo/total"); got <= 0 {
		t.Errorf("subtotal/total name vote = %g, want > 0", got)
	}
	// firstName vs total: negative.
	if got := m.Get("purchaseOrder/purchaseOrder/shipTo/firstName", "shippingInfo/shippingInfo/total"); got >= 0 {
		t.Errorf("firstName/total name vote = %g, want < 0", got)
	}
}

func TestKindMismatchVote(t *testing.T) {
	ctx := ctxFixture()
	m := (NameVoter{}).Vote(ctx)
	// Entity vs attribute gets the firm negative regardless of names.
	if got := m.Get("purchaseOrder/purchaseOrder/shipTo", "shippingInfo/shippingInfo/name"); got != -0.75 {
		t.Errorf("kind mismatch = %g, want -0.75", got)
	}
}

func TestDocVoterUsesDocumentation(t *testing.T) {
	ctx := ctxFixture()
	m := (DocVoter{}).Vote(ctx)
	// firstName's doc shares recipient/name/shipment vocabulary with
	// target name's doc.
	fn := m.Get("purchaseOrder/purchaseOrder/shipTo/firstName", "shippingInfo/shippingInfo/name")
	if fn <= 0 {
		t.Errorf("doc vote firstName/name = %g, want > 0", fn)
	}
	// Abstention without docs.
	src := model.NewSchema("s", "er")
	src.AddElement(nil, "E", model.KindEntity, model.ContainsElement)
	tgt := model.NewSchema("t", "er")
	tgt.AddElement(nil, "F", model.KindEntity, model.ContainsElement)
	ctx2 := NewContext(src, tgt)
	m2 := (DocVoter{}).Vote(ctx2)
	if got := m2.Get("s/E", "t/F"); got != 0 {
		t.Errorf("no-doc vote = %g, want abstain 0", got)
	}
}

func TestThesaurusVoterBridgesSynonyms(t *testing.T) {
	// "lastName" vs "surname" share no tokens, but the default thesaurus
	// relates last ↔ surname.
	src := model.NewSchema("s", "er")
	e := src.AddElement(nil, "Person", model.KindEntity, model.ContainsElement)
	src.AddElement(e, "lastName", model.KindAttribute, model.ContainsAttribute)
	tgt := model.NewSchema("t", "er")
	f := tgt.AddElement(nil, "Person", model.KindEntity, model.ContainsElement)
	tgt.AddElement(f, "surname", model.KindAttribute, model.ContainsAttribute)
	ctx := NewContext(src, tgt)

	name := (NameVoter{}).Vote(ctx).Get("s/Person/lastName", "t/Person/surname")
	thes := (ThesaurusVoter{}).Vote(ctx).Get("s/Person/lastName", "t/Person/surname")
	if thes <= 0 {
		t.Errorf("thesaurus vote = %g, want > 0", thes)
	}
	if thes <= name {
		t.Errorf("thesaurus (%g) should beat raw name (%g) on synonyms", thes, name)
	}
	// Nil thesaurus abstains.
	ctx.Thesaurus = nil
	if got := (ThesaurusVoter{}).Vote(ctx).Get("s/Person/lastName", "t/Person/surname"); got != 0 {
		t.Errorf("nil thesaurus vote = %g", got)
	}
}

func TestDomainVoter(t *testing.T) {
	src := model.NewSchema("s", "sql")
	e := src.AddElement(nil, "flight", model.KindEntity, model.ContainsTable)
	a := src.AddElement(e, "equip", model.KindAttribute, model.ContainsAttribute)
	a.DomainRef = "D1"
	src.AddDomain(&model.Domain{Name: "D1", Values: []model.DomainValue{
		{Code: "B738"}, {Code: "A320"}, {Code: "E145"},
	}})
	b := src.AddElement(e, "status", model.KindAttribute, model.ContainsAttribute)
	b.DomainRef = "D2"
	src.AddDomain(&model.Domain{Name: "D2", Values: []model.DomainValue{
		{Code: "scheduled"}, {Code: "airborne"},
	}})

	tgt := model.NewSchema("t", "xsd")
	f := tgt.AddElement(nil, "aircraft", model.KindEntity, model.ContainsElement)
	c := tgt.AddElement(f, "typeDesignator", model.KindAttribute, model.ContainsAttribute)
	c.DomainRef = "T1"
	tgt.AddDomain(&model.Domain{Name: "T1", Values: []model.DomainValue{
		{Code: "B738"}, {Code: "A320"},
	}})

	ctx := NewContext(src, tgt)
	m := (DomainVoter{}).Vote(ctx)
	// equip and typeDesignator share coding schemes despite alien names.
	if got := m.Get("s/flight/equip", "t/aircraft/typeDesignator"); got <= 0.5 {
		t.Errorf("shared coding scheme vote = %g, want strong positive", got)
	}
	// status's codes are disjoint: negative evidence.
	if got := m.Get("s/flight/status", "t/aircraft/typeDesignator"); got >= 0 {
		t.Errorf("disjoint coding scheme vote = %g, want negative", got)
	}
	// No domain on either side: abstain.
	if got := m.Get("s/flight", "t/aircraft"); got != 0 {
		t.Errorf("entity pair domain vote = %g, want 0", got)
	}
}

func TestTypeVoter(t *testing.T) {
	ctx := ctxFixture()
	m := (TypeVoter{}).Vote(ctx)
	// string vs string → small positive.
	if got := m.Get("purchaseOrder/purchaseOrder/shipTo/firstName", "shippingInfo/shippingInfo/name"); got != 0.15 {
		t.Errorf("same type group = %g", got)
	}
	// string vs decimal → small negative.
	if got := m.Get("purchaseOrder/purchaseOrder/shipTo/firstName", "shippingInfo/shippingInfo/total"); got != -0.2 {
		t.Errorf("different type group = %g", got)
	}
	// Entities abstain.
	if got := m.Get("purchaseOrder/purchaseOrder/shipTo", "shippingInfo/shippingInfo"); got != 0 {
		t.Errorf("entities type vote = %g", got)
	}
}

func TestStructureVoter(t *testing.T) {
	src := model.NewSchema("s", "er")
	e := src.AddElement(nil, "Emp", model.KindEntity, model.ContainsElement)
	src.AddElement(e, "salary", model.KindAttribute, model.ContainsAttribute)
	src.AddElement(e, "department", model.KindAttribute, model.ContainsAttribute)
	tgt := model.NewSchema("t", "er")
	f := tgt.AddElement(nil, "Worker", model.KindEntity, model.ContainsElement)
	tgt.AddElement(f, "salary", model.KindAttribute, model.ContainsAttribute)
	tgt.AddElement(f, "department", model.KindAttribute, model.ContainsAttribute)
	g := tgt.AddElement(nil, "Building", model.KindEntity, model.ContainsElement)
	tgt.AddElement(g, "floors", model.KindAttribute, model.ContainsAttribute)

	ctx := NewContext(src, tgt)
	m := (StructureVoter{}).Vote(ctx)
	same := m.Get("s/Emp", "t/Worker")
	diff := m.Get("s/Emp", "t/Building")
	if same <= 0 {
		t.Errorf("identical children vote = %g, want > 0", same)
	}
	if diff >= same {
		t.Errorf("disjoint children (%g) should score below identical (%g)", diff, same)
	}
	// Leaves abstain.
	if got := m.Get("s/Emp/salary", "t/Worker/salary"); got != 0 {
		t.Errorf("leaf structure vote = %g", got)
	}
}

func TestDefaultVotersComplete(t *testing.T) {
	vs := DefaultVoters()
	if len(vs) != 6 {
		t.Fatalf("panel size = %d", len(vs))
	}
	seen := map[string]bool{}
	ctx := ctxFixture()
	for _, v := range vs {
		if seen[v.Name()] {
			t.Errorf("duplicate voter name %q", v.Name())
		}
		seen[v.Name()] = true
		m := v.Vote(ctx)
		for i := range m.Scores {
			for j := range m.Scores[i] {
				if c := m.Scores[i][j]; c <= -1 || c >= 1 {
					t.Errorf("%s score out of open interval: %g", v.Name(), c)
				}
			}
		}
	}
}

func TestContextDomainDocsFoldedIn(t *testing.T) {
	s := model.NewSchema("s", "er")
	e := s.AddElement(nil, "flight", model.KindEntity, model.ContainsElement)
	a := s.AddElement(e, "ac", model.KindAttribute, model.ContainsAttribute)
	a.DomainRef = "D"
	s.AddDomain(&model.Domain{Name: "D", Doc: "aircraft designators",
		Values: []model.DomainValue{{Code: "B738", Doc: "Boeing"}}})
	t2 := model.NewSchema("t", "er")
	t2.AddElement(nil, "x", model.KindEntity, model.ContainsElement)
	ctx := NewContext(s, t2)
	toks := ctx.DocTokens(a)
	joined := ""
	for _, tk := range toks {
		joined += tk + " "
	}
	if !contains(toks, lingo.Stem("aircraft")) || !contains(toks, lingo.Stem("boeing")) {
		t.Errorf("domain docs not folded into attribute doc tokens: %v", toks)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func TestContextWithoutStemming(t *testing.T) {
	ctx := NewContext(sourceSchema(), targetSchema(), WithoutStemming())
	fn := ctx.Source.MustElement("purchaseOrder/purchaseOrder/shipTo/firstName")
	for _, tok := range ctx.DocTokens(fn) {
		if tok == "receiv" {
			t.Error("stemming applied despite WithoutStemming")
		}
	}
}

func TestContextVectorCacheInvalidation(t *testing.T) {
	ctx := ctxFixture()
	fn := ctx.Source.MustElement("purchaseOrder/purchaseOrder/shipTo/firstName")
	v1 := ctx.DocVector(fn)
	ctx.Corpus.AdjustWordWeight(lingo.Stem("name"), 5)
	// Cached until invalidated.
	v2 := ctx.DocVector(fn)
	if &v1 == &v2 {
		t.Log("same map returned (cached) — expected")
	}
	ctx.InvalidateVectors()
	v3 := ctx.DocVector(fn)
	stem := lingo.Stem("name")
	if v3[stem] <= v1[stem] {
		t.Errorf("weight change not reflected after invalidation: %g vs %g", v3[stem], v1[stem])
	}
}

func TestContainmentSimCountsRunesNotBytes(t *testing.T) {
	// "価格" is 2 runes but 6 bytes: under the old byte-length guard it
	// passed the "at least 4" check and scored containment against
	// "価格コード" (price code). Two-character CJK names are exactly the
	// ambiguous short names the guard exists for.
	if got := containmentSim("価格", "価格コード"); got != 0 {
		t.Errorf("2-rune CJK name passed the 4-rune guard: %g", got)
	}
	// A genuinely long CJK containment still scores, with the length
	// ratio measured in runes (6/8), not bytes.
	want := 0.5 + 0.45*(6.0/8.0)
	if got := containmentSim("データベース", "データベース管理"); got != want {
		t.Errorf("CJK containment = %g, want %g", got, want)
	}
	// ASCII behavior is unchanged.
	if got := containmentSim("total", "subtotal"); got != 0.5+0.45*(5.0/8.0) {
		t.Errorf("ascii containment = %g", got)
	}
	if got := containmentSim("qty", "quantity"); got != 0 {
		t.Errorf("3-rune ascii name passed the guard: %g", got)
	}
}

func TestLowerFallsBackForNonASCII(t *testing.T) {
	if got := lower("ÉCOLE"); got != "école" {
		t.Errorf("lower(ÉCOLE) = %q", got)
	}
	if got := lower("ShipTo"); got != "shipto" {
		t.Errorf("lower(ShipTo) = %q", got)
	}
}

func TestNameVoterNonASCIINames(t *testing.T) {
	// Accented names differing only in case must fold to an exact match;
	// before the lower() fix, "É" stayed uppercase and the similarity
	// dropped below certainty.
	src := model.NewSchema("s", "er")
	e := src.AddElement(nil, "Commande", model.KindEntity, model.ContainsElement)
	src.AddElement(e, "ÉCOLE", model.KindAttribute, model.ContainsAttribute)
	tgt := model.NewSchema("t", "er")
	f := tgt.AddElement(nil, "Commande", model.KindEntity, model.ContainsElement)
	tgt.AddElement(f, "école", model.KindAttribute, model.ContainsAttribute)
	ctx := NewContext(src, tgt)
	m := (NameVoter{}).Vote(ctx)
	if got := m.Get("s/Commande/ÉCOLE", "t/Commande/école"); got < 0.85 {
		t.Errorf("case-folded accented names should match strongly: %g", got)
	}
}
