package match

import (
	"strings"

	"repro/internal/lingo"
	"repro/internal/model"
)

// Baseline matchers for experiment E6 (DESIGN.md): simpler strategies the
// Harmony panel is compared against.

// NameEqualityMatcher marks pairs whose names are equal
// (case-insensitively) with +0.95 and everything else with 0 — the
// no-tooling strawman.
type NameEqualityMatcher struct{}

// Name implements Voter.
func (NameEqualityMatcher) Name() string { return "baseline-name-equality" }

// Vote implements Voter.
func (NameEqualityMatcher) Vote(ctx *Context) *Matrix {
	m := MatrixOver(ctx.Source, ctx.Target)
	for i, s := range m.Sources {
		for j, t := range m.Targets {
			if strings.EqualFold(s.Name, t.Name) {
				m.Scores[i][j] = 0.95
			}
		}
	}
	return m
}

// EditDistanceMatcher scores pairs purely by normalized edit similarity
// over raw names — the classic string-matcher baseline.
type EditDistanceMatcher struct{}

// Name implements Voter.
func (EditDistanceMatcher) Name() string { return "baseline-edit-distance" }

// Vote implements Voter.
func (EditDistanceMatcher) Vote(ctx *Context) *Matrix {
	m := MatrixOver(ctx.Source, ctx.Target)
	for i, s := range m.Sources {
		for j, t := range m.Targets {
			sim := lingo.EditSimilarity(lower(s.Name), lower(t.Name))
			m.Scores[i][j] = calibrate(sim, 0.5, 0.9, 0.5)
		}
	}
	return m
}

// COMAMatcher is a COMA-style composite (Do & Rahm, VLDB 2002): the
// average of a name-token matcher, a character-trigram matcher and a
// children-name matcher — structure and strings, but no documentation and
// no thesaurus, which is precisely the signal the paper argues enterprise
// schemata reward.
type COMAMatcher struct{}

// Name implements Voter.
func (COMAMatcher) Name() string { return "baseline-coma" }

// Vote implements Voter.
func (COMAMatcher) Vote(ctx *Context) *Matrix {
	m := MatrixOver(ctx.Source, ctx.Target)
	forEachPair(ctx, m, func(s, t *model.Element) float64 {
		name := lingo.Jaccard(ctx.NameTokens(s), ctx.NameTokens(t))
		tri := lingo.TrigramSimilarity(lower(s.Name), lower(t.Name))
		n := 2.0
		childSim := 0.0
		if !s.IsLeaf() && !t.IsLeaf() {
			var ts, tt []string
			for _, c := range s.Children() {
				ts = append(ts, ctx.NameTokens(c)...)
			}
			for _, c := range t.Children() {
				tt = append(tt, ctx.NameTokens(c)...)
			}
			childSim = lingo.Jaccard(ts, tt)
			n = 3
		}
		sim := (name + tri + childSim) / n
		return calibrate(sim, 0.4, 0.9, 0.5)
	})
	return m
}

// CupidMatcher is a Cupid-style baseline (Madhavan, Bernstein, Rahm,
// VLDB 2001): per-pair similarity is a weighted blend of linguistic
// similarity (name tokens + thesaurus) and structural similarity (for
// leaves, the parents' linguistic similarity; for inner nodes, the mean
// best leaf-pair similarity of their subtrees), wsim = wstruct·ssim +
// (1−wstruct)·lsim with the classic wstruct = 0.5.
type CupidMatcher struct {
	// WStruct is the structural weight (default 0.5 when zero).
	WStruct float64
}

// Name implements Voter.
func (CupidMatcher) Name() string { return "baseline-cupid" }

// Vote implements Voter.
func (c CupidMatcher) Vote(ctx *Context) *Matrix {
	ws := c.WStruct
	if ws == 0 {
		ws = 0.5
	}
	// Linguistic similarity for every pair.
	lsimCache := map[[2]*model.Element]float64{}
	lsim := func(s, t *model.Element) float64 {
		if v, ok := lsimCache[[2]*model.Element{s, t}]; ok {
			return v
		}
		base := lingo.Jaccard(ctx.NameTokens(s), ctx.NameTokens(t))
		if ctx.Thesaurus != nil {
			exp := lingo.Jaccard(ctx.ExpandedNameTokens(s), ctx.ExpandedNameTokens(t))
			if exp > base {
				base = exp
			}
		}
		lsimCache[[2]*model.Element{s, t}] = base
		return base
	}
	m := MatrixOver(ctx.Source, ctx.Target)
	forEachPair(ctx, m, func(s, t *model.Element) float64 {
		l := lsim(s, t)
		var ssim float64
		if s.IsLeaf() && t.IsLeaf() {
			// Leaves inherit context from their parents.
			ps, pt := s.Parent(), t.Parent()
			if ps != nil && pt != nil && ps.Kind != model.KindSchema && pt.Kind != model.KindSchema {
				ssim = lsim(ps, pt)
			}
		} else if !s.IsLeaf() && !t.IsLeaf() {
			// Inner nodes: mean best leaf-pair linguistic similarity.
			var sum float64
			n := 0
			for _, cs := range s.Children() {
				best := 0.0
				for _, ct := range t.Children() {
					if v := lsim(cs, ct); v > best {
						best = v
					}
				}
				sum += best
				n++
			}
			if n > 0 {
				ssim = sum / float64(n)
			}
		}
		wsim := ws*ssim + (1-ws)*l
		return calibrate(wsim, 0.35, 0.9, 0.4)
	})
	return m
}

// MelnikMatcher is pure similarity flooding seeded with trigram name
// similarity — the Melnik ICDE 2002 system as a baseline matcher.
type MelnikMatcher struct{}

// Name implements Voter.
func (MelnikMatcher) Name() string { return "baseline-similarity-flooding" }

// Vote implements Voter.
func (MelnikMatcher) Vote(ctx *Context) *Matrix {
	init := MatrixOver(ctx.Source, ctx.Target)
	for i, s := range init.Sources {
		for j, t := range init.Targets {
			init.Scores[i][j] = lingo.TrigramSimilarity(lower(s.Name), lower(t.Name))
		}
	}
	flooded := MelnikFlood(init, ctx.Source, ctx.Target, 50, 1e-3)
	// Rescale [0,1] → (-1,+1) confidence convention.
	out := NewMatrix(flooded.Sources, flooded.Targets)
	for i := range flooded.Scores {
		for j := range flooded.Scores[i] {
			out.Scores[i][j] = flooded.Scores[i][j]*2 - 1
		}
	}
	out.Clamp(-0.99, 0.99)
	return out
}
