package match

import (
	"math"

	"repro/internal/model"
)

// Structural score adjustment (paper §4): "A version of similarity
// flooding adjusts the confidence scores based on structural information.
// Positive confidence scores propagate up the schema graph (e.g., from
// attributes to entities), and negative confidence scores trickle down
// the schema graph. Intuitively, two attributes are unlikely to match if
// their parent entities do not match."

// DisableFlood is a sentinel for FloodOptions fields meaning "off": a
// direction weight of DisableFlood (or any negative value) disables
// propagation in that direction, and Iterations = DisableFlood runs zero
// rounds. The zero value still selects the defaults, so existing callers
// that leave fields unset keep today's behavior.
const DisableFlood = -1

// FloodOptions tunes HarmonyFlood.
type FloodOptions struct {
	// Iterations is the number of propagation rounds (0 = default 2,
	// negative = no rounds).
	Iterations int
	// UpWeight scales child→parent positive propagation (0 = default 0.3,
	// negative = direction disabled).
	UpWeight float64
	// DownWeight scales parent→child negative propagation (0 = default
	// 0.3, negative = direction disabled).
	DownWeight float64
	// Parallelism shards each propagation round row-wise across a worker
	// pool (0 = GOMAXPROCS, 1 = sequential). Each goroutine owns disjoint
	// rows of the next-round matrix, so results are bit-identical at any
	// setting.
	Parallelism int
}

// defaults resolves the unset-vs-disabled convention: zero fields take
// the documented defaults, negative sentinels collapse to an inert 0.
func (o *FloodOptions) defaults() {
	switch {
	case o.Iterations == 0:
		o.Iterations = 2
	case o.Iterations < 0:
		o.Iterations = 0
	}
	switch {
	case o.UpWeight == 0:
		o.UpWeight = 0.3
	case o.UpWeight < 0:
		o.UpWeight = 0
	}
	switch {
	case o.DownWeight == 0:
		o.DownWeight = 0.3
	case o.DownWeight < 0:
		o.DownWeight = 0
	}
}

// HarmonyFlood applies the Harmony flooding variant to a merged matrix,
// in place, and returns it.
//
// Up-propagation: for each (sourceEntity, targetEntity) pair, the mean of
// the positive best-per-child correspondences among their children raises
// the pair's score. Down-propagation: for each (sourceChild, targetChild)
// pair whose parents score negatively, the parents' negativity drags the
// pair down.
func HarmonyFlood(m *Matrix, source, target *model.Schema, opts FloodOptions) *Matrix {
	out, _ := harmonyFlood(m, source, target, opts, false)
	return out
}

// FloodState records the matrix after every flooding round (Rounds[0] is
// the pre-flood input, Rounds[k] the output of round k), so a later
// incremental pass can copy unaffected cells round by round. The
// resolved option values are kept for a validity check: a state warm-
// starts a patch only under the exact same propagation schedule.
// Parallelism is deliberately not recorded — results are bit-identical
// at any worker count.
type FloodState struct {
	Rounds     []*Matrix
	Iterations int
	UpWeight   float64
	DownWeight float64
}

// Bytes estimates the state's cache charge.
func (st *FloodState) Bytes() int64 {
	var n int64
	for _, m := range st.Rounds {
		n += MatrixBytes(m)
	}
	return n
}

// HarmonyFloodState is HarmonyFlood plus a recorded FloodState for
// warm-starting HarmonyFloodPatch later.
func HarmonyFloodState(m *Matrix, source, target *model.Schema, opts FloodOptions) (*Matrix, *FloodState) {
	return harmonyFlood(m, source, target, opts, true)
}

func harmonyFlood(m *Matrix, source, target *model.Schema, opts FloodOptions, record bool) (*Matrix, *FloodState) {
	opts.defaults()
	workers := ResolveWorkers(opts.Parallelism)
	var st *FloodState
	if record {
		st = &FloodState{
			Rounds:     []*Matrix{m.Clone()},
			Iterations: opts.Iterations,
			UpWeight:   opts.UpWeight,
			DownWeight: opts.DownWeight,
		}
	}
	for it := 0; it < opts.Iterations; it++ {
		next := NewMatrixLike(m)
		// floodCell reads only the frozen round-start matrix m and each
		// goroutine owns disjoint rows of next, so sharding is race-free.
		if m.Sparse() {
			// Sparse sweep: only the pattern's cells propagate. The
			// structural reads inside floodCell (children pairs, parent
			// pair) go through Get/At, which treats pruned pairs as 0 —
			// the parent closure in BuildCandidates keeps the cells
			// flooding actually needs inside the pattern.
			cur := m
			shardRows(workers, len(m.Sources), func(i int) {
				s := cur.Sources[i]
				for k, j := range cur.pat.Rows[i] {
					t := cur.Targets[j]
					next.vals[i][k] = floodCell(cur, s, t, i, int(j), cur.vals[i][k], opts)
				}
			})
		} else {
			cur := m
			shardRows(workers, len(m.Sources), func(i int) {
				s := cur.Sources[i]
				row := cur.Scores[i]
				for j, t := range cur.Targets {
					next.Scores[i][j] = floodCell(cur, s, t, i, j, row[j], opts)
				}
			})
		}
		m = next
		if record {
			st.Rounds = append(st.Rounds, next.Clone())
		}
	}
	return m, st
}

// floodCell computes one cell of the next flooding round from the frozen
// round-start matrix m; v0 is that cell's round-start value (passed in so
// sparse sweeps avoid a per-cell pattern lookup). This single kernel
// serves both the full sweep and the incremental patch, which is what
// makes warm-started results bit-identical to cold runs: both paths run
// the exact same float64 operations in the exact same order for every
// recomputed cell.
//
// The overwrite order mirrors the original two-sweep formulation: the
// up-propagation result is discarded when down-propagation also fires
// (both blend from the round-start value), and the clamp applies last.
func floodCell(m *Matrix, s, t *model.Element, i, j int, v0 float64, opts FloodOptions) float64 {
	v := v0
	if opts.UpWeight > 0 && !s.IsLeaf() && !t.IsLeaf() && kindCompatible(s, t) {
		// Up: children lift parents.
		if lift := childLift(m, s, t); lift > 0 {
			v = blend(v0, lift, opts.UpWeight)
		}
	}
	if opts.DownWeight > 0 {
		// Down: negative parents drag children.
		ps, pt := s.Parent(), t.Parent()
		if ps != nil && ps.Kind != model.KindSchema && pt != nil && pt.Kind != model.KindSchema {
			if parentScore := m.Get(ps.ID, pt.ID); parentScore < 0 {
				v = blend(v0, parentScore, opts.DownWeight)
			}
		}
	}
	if v < -0.99 {
		v = -0.99
	}
	if v > 0.99 {
		v = 0.99
	}
	return v
}

// childLift computes the mean positive best-match score between the
// children of s and the children of t.
func childLift(m *Matrix, s, t *model.Element) float64 {
	var sum float64
	n := 0
	for _, cs := range s.Children() {
		best := 0.0
		for _, ct := range t.Children() {
			if v := m.Get(cs.ID, ct.ID); v > best {
				best = v
			}
		}
		sum += best
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// blend moves cur toward val by weight w.
func blend(cur, val, w float64) float64 {
	return cur*(1-w) + val*w
}

// MelnikFlood is the classic similarity-flooding baseline (Melnik,
// Garcia-Molina, Rahm, ICDE 2002): build the pairwise connectivity graph
// over element pairs connected when both schemata connect them with the
// same edge label, then iterate sim' = normalize(sim0 + sim + Σ neighbor
// contributions) until the residual drops below epsilon or maxIter.
//
// Scores here live in [0,1]; the caller rescales to (-1,+1) when mixing
// with Harmony confidences. The initial matrix should also be in [0,1].
func MelnikFlood(init *Matrix, source, target *model.Schema, maxIter int, epsilon float64) *Matrix {
	// The fixpoint iteration normalises over every cell, so it is
	// inherently dense; a sparse input is materialised first.
	init = init.ToDense()
	if maxIter <= 0 {
		maxIter = 50
	}
	if epsilon <= 0 {
		epsilon = 1e-3
	}
	type pairKey struct{ i, j int }
	// Propagation edges: (parent pair) <-> (child pair) when edges share
	// a label. In the canonical tree model, each element has one parent
	// edge, so pairs are neighbors when both child edges carry the same
	// label.
	neighbors := map[pairKey][]pairKey{}
	addEdge := func(a, b pairKey) {
		neighbors[a] = append(neighbors[a], b)
		neighbors[b] = append(neighbors[b], a)
	}
	for i, s := range init.Sources {
		for j, t := range init.Targets {
			ps, pt := s.Parent(), t.Parent()
			if ps == nil || pt == nil {
				continue
			}
			if s.EdgeFromParent != t.EdgeFromParent {
				continue
			}
			pi, pj := init.SourceIndex(ps.ID), init.TargetIndex(pt.ID)
			if pi < 0 || pj < 0 {
				continue // parent is the root
			}
			addEdge(pairKey{pi, pj}, pairKey{i, j})
		}
	}

	cur := init.Clone()
	for it := 0; it < maxIter; it++ {
		next := NewMatrix(init.Sources, init.Targets)
		maxVal := 0.0
		for i := range cur.Scores {
			for j := range cur.Scores[i] {
				v := init.Scores[i][j] + cur.Scores[i][j]
				for _, nb := range neighbors[pairKey{i, j}] {
					deg := float64(len(neighbors[nb]))
					if deg > 0 {
						v += cur.Scores[nb.i][nb.j] / deg
					}
				}
				next.Scores[i][j] = v
				if v > maxVal {
					maxVal = v
				}
			}
		}
		if maxVal > 0 {
			for i := range next.Scores {
				for j := range next.Scores[i] {
					next.Scores[i][j] /= maxVal
				}
			}
		}
		// Residual.
		res := 0.0
		for i := range next.Scores {
			for j := range next.Scores[i] {
				res += math.Abs(next.Scores[i][j] - cur.Scores[i][j])
			}
		}
		cur = next
		if res < epsilon {
			break
		}
	}
	return cur
}
