package match

import (
	"math"
	"testing"

	"repro/internal/model"
)

// incrTestPair builds a small two-schema pair with entities, attributes,
// domains and documentation so every voter has evidence to score.
func incrTestPair() (*model.Schema, *model.Schema) {
	src := model.NewSchema("src", "er")
	src.AddDomain(&model.Domain{Name: "country", Doc: "country codes", Values: []model.DomainValue{
		{Code: "US", Doc: "united states"}, {Code: "DE", Doc: "germany"},
	}})
	po := src.AddElement(nil, "purchaseOrder", model.KindEntity, model.ContainsElement)
	po.Doc = "a purchase order placed by a customer"
	ship := src.AddElement(po, "shipTo", model.KindEntity, model.ContainsElement)
	ship.Doc = "shipping address of the order"
	a := src.AddElement(ship, "country", model.KindAttribute, model.ContainsAttribute)
	a.Doc = "destination country"
	a.DataType = "string"
	a.DomainRef = "country"
	b := src.AddElement(ship, "zipCode", model.KindAttribute, model.ContainsAttribute)
	b.Doc = "postal code of the shipping address"
	b.DataType = "string"
	c := src.AddElement(po, "total", model.KindAttribute, model.ContainsAttribute)
	c.Doc = "total order amount in dollars"
	c.DataType = "decimal"

	tgt := model.NewSchema("tgt", "er")
	tgt.AddDomain(&model.Domain{Name: "nation", Doc: "nation codes", Values: []model.DomainValue{
		{Code: "US", Doc: "united states of america"}, {Code: "FR", Doc: "france"},
	}})
	order := tgt.AddElement(nil, "order", model.KindEntity, model.ContainsElement)
	order.Doc = "an order submitted by a buyer"
	addr := tgt.AddElement(order, "shippingAddress", model.KindEntity, model.ContainsElement)
	addr.Doc = "where the order ships"
	d := tgt.AddElement(addr, "nation", model.KindAttribute, model.ContainsAttribute)
	d.Doc = "destination nation"
	d.DataType = "varchar"
	d.DomainRef = "nation"
	e := tgt.AddElement(addr, "postcode", model.KindAttribute, model.ContainsAttribute)
	e.Doc = "postal code for shipping"
	e.DataType = "varchar"
	f := tgt.AddElement(order, "subtotal", model.KindAttribute, model.ContainsAttribute)
	f.Doc = "order amount before tax in dollars"
	f.DataType = "numeric"
	return src, tgt
}

func matricesBitIdentical(t *testing.T, label string, want, got *Matrix) {
	t.Helper()
	if len(want.Sources) != len(got.Sources) || len(want.Targets) != len(got.Targets) {
		t.Fatalf("%s: dimensions differ: %dx%d vs %dx%d", label,
			len(want.Sources), len(want.Targets), len(got.Sources), len(got.Targets))
	}
	for i := range want.Sources {
		if want.Sources[i].ID != got.Sources[i].ID {
			t.Fatalf("%s: source order differs at %d: %s vs %s", label, i, want.Sources[i].ID, got.Sources[i].ID)
		}
	}
	for j := range want.Targets {
		if want.Targets[j].ID != got.Targets[j].ID {
			t.Fatalf("%s: target order differs at %d", label, j)
		}
	}
	for i := range want.Scores {
		for j := range want.Scores[i] {
			w, g := want.Scores[i][j], got.Scores[i][j]
			if math.Float64bits(w) != math.Float64bits(g) {
				t.Fatalf("%s: cell (%s, %s) differs: %v vs %v (bits %x vs %x)", label,
					want.Sources[i].ID, want.Targets[j].ID, w, g,
					math.Float64bits(w), math.Float64bits(g))
			}
		}
	}
}

// TestVotePatchMatchesFullVote edits one source attribute and asserts
// every incremental voter's patched matrix is bit-identical to a full
// re-vote over the edited pair.
func TestVotePatchMatchesFullVote(t *testing.T) {
	src, tgt := incrTestPair()
	ctx := NewContext(src, tgt)
	prev := map[string]*Matrix{}
	for _, v := range DefaultVoters() {
		prev[v.Name()] = v.Vote(ctx)
	}

	// Rename one attribute and retype another.
	edited := src.MustElement("src/purchaseOrder/total")
	edited.Name = "grandTotal"
	edited.DataType = "float"
	dirtySrc := map[string]bool{edited.ID: true, edited.Parent().ID: true}
	dirtyTgt := map[string]bool{}

	fresh := NewContext(src, tgt)
	for _, v := range DefaultVoters() {
		iv, ok := v.(IncrementalVoter)
		if !ok {
			t.Fatalf("builtin voter %s is not incremental", v.Name())
		}
		want := v.Vote(fresh)
		got := iv.VotePatch(fresh, prev[v.Name()], dirtySrc, dirtyTgt)
		matricesBitIdentical(t, "voter "+v.Name(), want, got)
	}
}

// TestVotePatchAddRemove exercises structural edits: a new target
// attribute and a dropped source attribute, with the dirty set closed
// over parents as the engine does.
func TestVotePatchAddRemove(t *testing.T) {
	src, tgt := incrTestPair()
	ctx := NewContext(src, tgt)
	prev := map[string]*Matrix{}
	for _, v := range DefaultVoters() {
		prev[v.Name()] = v.Vote(ctx)
	}

	addr := tgt.MustElement("tgt/order/shippingAddress")
	added := tgt.AddElement(addr, "street", model.KindAttribute, model.ContainsAttribute)
	added.Doc = "street line of the address"
	added.DataType = "string"
	removedParent := src.MustElement("src/purchaseOrder/shipTo")
	src.RemoveElement("src/purchaseOrder/shipTo/zipCode")

	dirtySrc := ExpandDirty(src, map[string]bool{"src/purchaseOrder/shipTo/zipCode": true})
	dirtySrc[removedParent.ID] = true // parent of a removed element
	dirtyTgt := ExpandDirty(tgt, map[string]bool{added.ID: true})

	fresh := NewContext(src, tgt)
	for _, v := range DefaultVoters() {
		want := v.Vote(fresh)
		var got *Matrix
		if cs, ok := v.(CorpusSensitive); ok && cs.CorpusSensitive() {
			// Adding/removing documented elements changes every IDF
			// weight, so corpus-sensitive voters must re-vote fully —
			// the engine enforces this via the corpus fingerprint.
			got = v.Vote(fresh)
		} else {
			got = v.(IncrementalVoter).VotePatch(fresh, prev[v.Name()], dirtySrc, dirtyTgt)
		}
		matricesBitIdentical(t, "voter "+v.Name(), want, got)
	}
}

// TestMergePatchMatchesFullMerge asserts cross-shaped re-merging equals
// a full merge bit for bit, including with learned weights and the
// magnitude ablation off.
func TestMergePatchMatchesFullMerge(t *testing.T) {
	src, tgt := incrTestPair()
	ctx := NewContext(src, tgt)
	voters := DefaultVoters()
	votes := func(c *Context) []Vote {
		out := make([]Vote, len(voters))
		for i, v := range voters {
			out[i] = Vote{Voter: v.Name(), Matrix: v.Vote(c)}
		}
		return out
	}
	for _, magnitude := range []bool{true, false} {
		g := NewMerger()
		g.MagnitudeWeighting = magnitude
		g.SetWeight("name", 1.3)
		g.SetWeight("data-type", 0.4)
		prev := g.Merge(votes(ctx))

		edited := src.MustElement("src/purchaseOrder/shipTo/country")
		edited.Name = "countryCode"
		fresh := NewContext(src, tgt)
		dirtySrc := ExpandDirty(src, map[string]bool{edited.ID: true})
		newVotes := votes(fresh)
		want := g.Merge(newVotes)
		got := g.MergePatch(newVotes, prev, dirtySrc, map[string]bool{})
		matricesBitIdentical(t, "merge", want, got)
		edited.Name = "country" // restore for the second ablation pass
	}
}

// TestHarmonyFloodPatchMatchesFull asserts warm-started flooding equals
// the cold flood bit for bit across dirty-set shapes, including a dirty
// leaf whose effect must propagate to its parent's pairs.
func TestHarmonyFloodPatchMatchesFull(t *testing.T) {
	src, tgt := incrTestPair()
	ctx := NewContext(src, tgt)
	g := NewMerger()
	voters := DefaultVoters()
	mkVotes := func(c *Context) []Vote {
		out := make([]Vote, len(voters))
		for i, v := range voters {
			out[i] = Vote{Voter: v.Name(), Matrix: v.Vote(c)}
		}
		return out
	}
	opts := FloodOptions{Iterations: 3}
	merged := g.Merge(mkVotes(ctx))
	_, state := HarmonyFloodState(merged, src, tgt, opts)

	// Edit a leaf: its pairs change, and via up-propagation its parent's
	// pairs change in later rounds.
	edited := src.MustElement("src/purchaseOrder/shipTo/country")
	edited.Name = "countryOfDestination"
	fresh := NewContext(src, tgt)
	dirtySrc := ExpandDirty(src, map[string]bool{edited.ID: true})
	newMerged := g.MergePatch(mkVotes(fresh), merged, dirtySrc, map[string]bool{})

	want, wantState := HarmonyFloodState(newMerged, src, tgt, opts)
	got, gotState, ok := HarmonyFloodPatch(state, newMerged, src, tgt, dirtySrc, map[string]bool{}, opts)
	if !ok {
		t.Fatal("HarmonyFloodPatch rejected a compatible state")
	}
	matricesBitIdentical(t, "flood", want, got)
	if len(wantState.Rounds) != len(gotState.Rounds) {
		t.Fatalf("round counts differ: %d vs %d", len(wantState.Rounds), len(gotState.Rounds))
	}
	for k := range wantState.Rounds {
		matricesBitIdentical(t, "flood round", wantState.Rounds[k], gotState.Rounds[k])
	}

	// Incompatible schedule must be refused, not silently misused.
	if _, _, ok := HarmonyFloodPatch(state, newMerged, src, tgt, dirtySrc, map[string]bool{}, FloodOptions{Iterations: 2}); ok {
		t.Fatal("HarmonyFloodPatch accepted a state recorded under a different schedule")
	}
	if _, _, ok := HarmonyFloodPatch(nil, newMerged, src, tgt, dirtySrc, map[string]bool{}, opts); ok {
		t.Fatal("HarmonyFloodPatch accepted a nil state")
	}
}

// TestFloodSingleSweepUnchanged pins the refactored single-sweep
// HarmonyFlood against a hand-executed two-sweep round on a tiny case
// where up- and down-propagation both fire on the same cell.
func TestFloodSingleSweepUnchanged(t *testing.T) {
	src := model.NewSchema("s", "er")
	pe := src.AddElement(nil, "e", model.KindEntity, model.ContainsElement)
	src.AddElement(pe, "a", model.KindAttribute, model.ContainsAttribute)
	tgt := model.NewSchema("t", "er")
	qe := tgt.AddElement(nil, "f", model.KindEntity, model.ContainsElement)
	tgt.AddElement(qe, "b", model.KindAttribute, model.ContainsAttribute)

	m := MatrixOver(src, tgt)
	m.Set("s/e", "t/f", -0.4)    // negative parent pair
	m.Set("s/e/a", "t/f/b", 0.6) // positive child pair
	opts := FloodOptions{Iterations: 1, UpWeight: 0.3, DownWeight: 0.3}
	out := HarmonyFlood(m.Clone(), src, tgt, opts)

	// Parent pair: childLift = 0.6 > 0 → blend(-0.4, 0.6, 0.3) = -0.1;
	// its own parent is the root, so no down sweep.
	if got, want := out.Get("s/e", "t/f"), blend(-0.4, 0.6, 0.3); got != want {
		t.Fatalf("parent pair = %v; want %v", got, want)
	}
	// Child pair: leaf (no up), parent pair scored -0.4 < 0 →
	// blend(0.6, -0.4, 0.3) = 0.3.
	if got, want := out.Get("s/e/a", "t/f/b"), blend(0.6, -0.4, 0.3); got != want {
		t.Fatalf("child pair = %v; want %v", got, want)
	}
}
