// Evolution: schema change, metadata sync, and enrichment — the paper's
// §3.1 ("one needs a means to keep the metadata in synch, as the actual
// systems change", "one may enrich the schemata, e.g., by defining
// coding schemes as domains") and §5.1.3 ("schemata inevitably change;
// the blackboard should track schemata across versions").
//
// The example:
//
//  1. loads v1 of an operational schema and maps it;
//  2. enriches it with coding schemes inferred from instance data
//     (recovering what the DDL lost, §2);
//  3. loads v2 (a column dropped, one retyped, a code added), lets the
//     blackboard archive v1, diffs the versions, and flags the mapping
//     rows an engineer must re-review.
//
// Run:
//
//	go run ./examples/evolution
package main

import (
	"fmt"
	"log"
	"strings"

	workbench "repro"
)

const v1DDL = `
CREATE TABLE shipment (
  ship_id   INTEGER PRIMARY KEY,
  carrier   CHAR(4),
  weight_lb DECIMAL(8,2),
  status    VARCHAR(10),
  legacy_no VARCHAR(20)
);
COMMENT ON TABLE shipment IS 'A shipment moving through the logistics network';
COMMENT ON COLUMN shipment.carrier IS 'Code of the carrier moving the shipment';
COMMENT ON COLUMN shipment.status IS 'Current movement status of the shipment';
`

const v2DDL = `
CREATE TABLE shipment (
  ship_id   INTEGER PRIMARY KEY,
  carrier   CHAR(4),
  weight_kg DECIMAL(8,2),
  status    CHAR(2) NOT NULL,
  eta       DATE
);
COMMENT ON TABLE shipment IS 'A shipment moving through the logistics network';
COMMENT ON COLUMN shipment.status IS 'Current movement status of the shipment, now coded';
`

func main() {
	bb := workbench.NewBlackboard()

	// 1. Version 1, stored and mapped.
	v1, err := workbench.LoadSQL("logistics", strings.NewReader(v1DDL))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Enrichment: the DDL declares no coding schemes, but instance
	//    data reveals them (§2: the standard SQL encoding "is good for
	//    referential integrity, but bad for integration efforts").
	rows := &workbench.Dataset{}
	carriers := []string{"UPSX", "FDXE", "DHLX"}
	statuses := []string{"IN_TRANSIT", "DELIVERED", "HELD"}
	for i := 0; i < 40; i++ {
		rows.Records = append(rows.Records, workbench.NewRecord("shipment").
			Set("ship_id", fmt.Sprint(i)).
			Set("carrier", carriers[i%3]).
			Set("weight_lb", "12.5").
			Set("status", statuses[i%3]).
			Set("legacy_no", fmt.Sprintf("L-%04d", i)))
	}
	inferred := workbench.InferDomains(v1, rows, workbench.InferOptions{})
	fmt.Println("== Inferred coding schemes from instance data ==")
	for _, name := range inferred {
		d := v1.Domains[name]
		fmt.Printf("  %-30s %v\n", name, codes(d))
	}

	if _, err := bb.PutSchema(v1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstored %q v%d\n", v1.Name, bb.SchemaVersion("logistics"))

	// 3. Version 2 arrives: archive, diff, flag affected mapping rows.
	v2, err := workbench.LoadSQL("logistics", strings.NewReader(v2DDL))
	if err != nil {
		log.Fatal(err)
	}
	ver, err := bb.PutSchema(v2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %q v%d (v1 archived as logistics@v1)\n\n", v2.Name, ver)

	old, err := bb.GetSchema("logistics@v1")
	if err != nil {
		log.Fatal(err)
	}
	current, err := bb.GetSchema("logistics")
	if err != nil {
		log.Fatal(err)
	}
	diff := workbench.DiffSchemas(old, current)
	fmt.Println("== Schema diff v1 → v2 ==")
	for _, d := range diff {
		fmt.Println(" ", d)
	}

	fmt.Println("\n== Mapping rows to re-review ==")
	for _, id := range affectedRows(diff) {
		fmt.Println(" ", id)
	}
}

func codes(d *workbench.Domain) []string {
	if d == nil {
		return nil
	}
	return d.Codes()
}

func affectedRows(diff []workbench.SchemaDiff) []string {
	var out []string
	for _, d := range diff {
		if d.Kind == "element-removed" || d.Kind == "element-changed" {
			out = append(out, d.ID+"  ("+string(d.Kind)+")")
		}
	}
	return out
}
