// Purchase order: the paper's Figures 2 and 3, executable.
//
// Figure 2 shows a purchaseOrder source schema (shipTo with firstName,
// lastName, subtotal) and a shippingInfo target (name, total). Figure 3
// shows the annotated mapping matrix: machine confidence scores on the
// shipTo row (+0.8 / −0.4 / −0.6), user decisions (±1) on the attribute
// rows, variable-name and is-complete annotations, per-column code, and
// the assembled let/return mapping.
//
// This example loads the Figure 2 schemata from XSD, recreates the
// Figure 3 matrix cell by cell on the blackboard, prints it in the
// figure's layout, and then executes the figure's code on a sample
// document.
//
// Run:
//
//	go run ./examples/purchaseorder
package main

import (
	"fmt"
	"log"
	"strings"

	workbench "repro"
)

const purchaseOrderXSD = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="purchaseOrder">
    <xs:annotation><xs:documentation>A purchase order submitted by a customer</xs:documentation></xs:annotation>
    <xs:complexType>
      <xs:sequence>
        <xs:element name="shipTo">
          <xs:annotation><xs:documentation>Shipping destination for the order</xs:documentation></xs:annotation>
          <xs:complexType>
            <xs:sequence>
              <xs:element name="firstName" type="xs:string">
                <xs:annotation><xs:documentation>Given name of the recipient</xs:documentation></xs:annotation>
              </xs:element>
              <xs:element name="lastName" type="xs:string">
                <xs:annotation><xs:documentation>Family name of the recipient</xs:documentation></xs:annotation>
              </xs:element>
              <xs:element name="subtotal" type="xs:decimal">
                <xs:annotation><xs:documentation>Order subtotal before tax</xs:documentation></xs:annotation>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

const shippingInfoXSD = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="shippingInfo">
    <xs:annotation><xs:documentation>Information about where an order ships</xs:documentation></xs:annotation>
    <xs:complexType>
      <xs:sequence>
        <xs:element name="name" type="xs:string">
          <xs:annotation><xs:documentation>Full name of the shipment recipient</xs:documentation></xs:annotation>
        </xs:element>
        <xs:element name="total" type="xs:decimal">
          <xs:annotation><xs:documentation>Total price of the order including tax</xs:documentation></xs:annotation>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

// Figure 3's rows and columns.
var (
	rows = []string{
		"purchaseOrder/purchaseOrder/shipTo",
		"purchaseOrder/purchaseOrder/shipTo/firstName",
		"purchaseOrder/purchaseOrder/shipTo/lastName",
		"purchaseOrder/purchaseOrder/shipTo/subtotal",
	}
	cols = []string{
		"shippingInfo/shippingInfo",
		"shippingInfo/shippingInfo/name",
		"shippingInfo/shippingInfo/total",
	}
)

func main() {
	src, err := workbench.LoadXSD("purchaseOrder", strings.NewReader(purchaseOrderXSD))
	if err != nil {
		log.Fatal(err)
	}
	tgt, err := workbench.LoadXSD("shippingInfo", strings.NewReader(shippingInfoXSD))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Figure 2: sample schema graphs ==")
	fmt.Print(src)
	fmt.Print(tgt)

	session, err := workbench.NewIntegrationSession("figure3", src, tgt,
		"purchaseOrder/purchaseOrder/shipTo", "shippingInfo/shippingInfo")
	if err != nil {
		log.Fatal(err)
	}
	mapping, err := session.Mapping()
	if err != nil {
		log.Fatal(err)
	}

	// Machine scores on the shipTo row, exactly as in Figure 3.
	mapping.SetCell(rows[0], cols[0], +0.8, false, "harmony")
	mapping.SetCell(rows[0], cols[1], -0.4, false, "harmony")
	mapping.SetCell(rows[0], cols[2], -0.6, false, "harmony")

	// User decisions on the attribute rows (is-user-defined=true, ±1).
	userCells := map[[2]int]float64{
		{1, 0}: -1, {1, 1}: +1, {1, 2}: -1, // firstName → name
		{2, 0}: -1, {2, 1}: +1, {2, 2}: -1, // lastName → name
		{3, 0}: -1, {3, 1}: -1, {3, 2}: +1, // subtotal → total
	}
	for rc, conf := range userCells {
		mapping.SetCell(rows[rc[0]], cols[rc[1]], conf, true, "engineer")
	}

	// Row annotations: variable-name and is-complete.
	mapping.SetRowVariable(rows[0], "$shipto")
	mapping.SetRowVariable(rows[1], "$fName")
	mapping.SetRowVariable(rows[2], "$lName")
	mapping.SetRowVariable(rows[3], "$shipto/subtotal")
	for _, r := range rows[1:] {
		mapping.SetRowComplete(r, true)
	}
	mapping.SetRowComplete(rows[0], false)

	// Column code annotations — the figure's exact expressions, phrased
	// over the $shipto binding so they are executable.
	if err := session.WriteCode(rows[0], "$shipto", cols[1],
		`concat($shipto/lastName, concat(", ", $shipto/firstName))`); err != nil {
		log.Fatal(err)
	}
	if err := session.WriteCode(rows[0], "$shipto", cols[2],
		`data($shipto/subtotal) * 1.05`); err != nil {
		log.Fatal(err)
	}

	// Print the Figure 3 matrix.
	fmt.Println("== Figure 3: annotated mapping matrix ==")
	fmt.Printf("%-28s", "")
	for _, c := range cols {
		fmt.Printf("%-24s", tail(c))
	}
	fmt.Println()
	for _, r := range rows {
		label := fmt.Sprintf("%s var=%s", tail(r), mapping.RowVariable(r))
		fmt.Printf("%-28s", label)
		for _, c := range cols {
			cell, ok := mapping.GetCell(r, c)
			if !ok {
				fmt.Printf("%-24s", ".")
				continue
			}
			fmt.Printf("conf=%+.1f user=%-6t ", cell.Confidence, cell.UserDefined)
		}
		fmt.Printf(" complete=%t\n", mapping.RowComplete(r))
	}
	for _, c := range cols[1:] {
		fmt.Printf("column %-8s code = %s\n", tail(c), mapping.ColumnCode(c))
	}

	// The assembled whole-matrix code annotation.
	code, err := session.GeneratedCode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Assembled mapping (the matrix-level code annotation) ==")
	fmt.Println(code)

	// Execute on a sample purchase order.
	doc := workbench.NewRecord("purchaseOrder")
	doc.AddChild(workbench.NewRecord("shipTo").
		Set("firstName", "John").Set("lastName", "Doe").Set("subtotal", "100"))
	out, violations, err := session.Execute(&workbench.Dataset{
		Records: []*workbench.Record{doc},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Executed on a sample document (%d violations) ==\n", len(violations))
	for _, r := range out.Records {
		fmt.Print(r.ToXML())
	}
}

func tail(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}
