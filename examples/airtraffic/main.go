// Air traffic flow management: the paper's §4.1 working domain.
//
// "In the air traffic flow management domain, these sub-schemata might
// include facilities (airports and runways), weather, and routing."
//
// This example matches two ER models of that domain, demonstrating the
// engineer's documented workflow:
//
//  1. focus on entities only (depth filter) to establish top-level
//     correspondences;
//  2. drop to the domain values (the §2 pattern: engineers inspect
//     coding schemes before attributes) — the domain voter exploits
//     shared ICAO coding schemes;
//  3. focus on the Facility sub-schema (sub-tree filter), confirm its
//     links and mark it complete, watching the progress bar;
//  4. rerun the engine, which learns from the feedback.
//
// Run:
//
//	go run ./examples/airtraffic
package main

import (
	"fmt"
	"log"
	"strings"

	workbench "repro"
)

const faaER = `
schema FAA "FAA air traffic flow management model"

domain AircraftType "ICAO aircraft type designators" {
  B738 "Boeing 737-800 narrowbody jet"
  A320 "Airbus A320 narrowbody jet"
  E145 "Embraer 145 regional jet"
  C130 "Lockheed C-130 Hercules transport"
}

domain RunwayCondition "Reported runway surface condition" {
  DRY "Dry surface"
  WET "Wet surface"
  SNOW "Snow covered"
  ICE "Ice covered"
}

entity Facility "An airport or other ground facility in the national airspace" {
  facilityID string key      "Unique identifier assigned to the facility"
  name       string required "Official name of the facility"
  elevation  int             "Field elevation above sea level in feet"
  condition  string domain(RunwayCondition) "Current condition of the primary runway"
}

entity Weather "A weather observation affecting traffic flow" {
  stationID   string key "Identifier of the observing station"
  visibility  int        "Horizontal visibility in statute miles"
  windSpeed   int        "Sustained wind speed in knots"
}

entity Route "A route through the airspace between facilities" {
  routeID   string key "Unique identifier for the route"
  originID  string required "Identifier of the departure facility"
  acType    string domain(AircraftType) "Type of aircraft flown on this route"
}

relationship departsFrom Route -> Facility "A route departs from a facility"
`

const euroER = `
schema Eurocontrol "European air traffic control conceptual model"

domain AircraftDesignator "Aircraft type designators per ICAO doc 8643" {
  B738 "Boeing 737-800"
  A320 "Airbus A320"
  E145 "Embraer ERJ-145"
  A400 "Airbus A400M Atlas transport"
}

domain SurfaceState "State of the runway surface" {
  DRY "Dry runway"
  WET "Wet runway"
  SNOW "Snow on runway"
  SLUSH "Slush on runway"
}

entity Aerodrome "An aerodrome serving air traffic in European airspace" {
  aerodromeCode string key "Unique code assigned to the aerodrome"
  title         string required "Official title of the aerodrome"
  altitude      int    "Altitude of the field above sea level in metres"
  surfaceState  string domain(SurfaceState) "Present state of the main runway surface"
}

entity Meteorology "A meteorological report used for flow planning" {
  reportID   string key "Identifier of the meteorological report"
  visibility int        "Visibility distance in kilometres"
  wind       int        "Wind velocity in kilometres per hour"
}

entity Airway "An airway connecting aerodromes" {
  airwayCode     string key "Unique code of the airway"
  departureCode  string required "Code of the departure aerodrome"
  planeKind      string domain(AircraftDesignator) "Kind of plane operating the airway"
}

relationship origin Airway -> Aerodrome "An airway originates at an aerodrome"
`

func main() {
	src, err := workbench.LoadER("FAA", strings.NewReader(faaER))
	if err != nil {
		log.Fatal(err)
	}
	tgt, err := workbench.LoadER("Eurocontrol", strings.NewReader(euroER))
	if err != nil {
		log.Fatal(err)
	}

	engine := workbench.NewEngine(src, tgt, workbench.EngineOptions{Flooding: true})
	engine.Run()

	// Step 1: entities only (depth filter), max-confidence links.
	fmt.Println("== Step 1: top-level entity correspondences (depth ≤ 1) ==")
	entityView := workbench.View{
		MaxConfidence:     true,
		LinkFilters:       []workbench.LinkFilter{workbench.ConfidenceFilter(0.1)},
		SourceNodeFilters: []workbench.NodeFilter{workbench.DepthFilter(1), workbench.KindFilter(workbench.KindEntity)},
		TargetNodeFilters: []workbench.NodeFilter{workbench.DepthFilter(1), workbench.KindFilter(workbench.KindEntity)},
	}
	for _, l := range engine.Links(entityView) {
		fmt.Printf("  %s\n", l.Correspondence)
	}

	// Step 2: the coding-scheme signal. Even with alien names (acType vs
	// planeKind), shared ICAO codes give the pair away.
	fmt.Println("\n== Step 2: domain values betray acType ↔ planeKind ==")
	m := engine.Matrix()
	fmt.Printf("  acType ↔ planeKind      %+.2f  (shared ICAO codes)\n",
		m.Get("FAA/Route/acType", "Eurocontrol/Airway/planeKind"))
	fmt.Printf("  acType ↔ surfaceState   %+.2f  (disjoint coding schemes)\n",
		m.Get("FAA/Route/acType", "Eurocontrol/Aerodrome/surfaceState"))

	// Step 3: focus on the Facility sub-schema, decide, mark complete.
	fmt.Println("\n== Step 3: Facility sub-schema focus ==")
	facility := src.MustElement("FAA/Facility")
	subView := workbench.View{
		MaxConfidence:     true,
		LinkFilters:       []workbench.LinkFilter{workbench.ConfidenceFilter(0.1)},
		SourceNodeFilters: []workbench.NodeFilter{workbench.SubtreeFilter(facility)},
	}
	for _, l := range engine.Links(subView) {
		fmt.Printf("  %s\n", l.Correspondence)
	}
	// The engineer confirms the Facility links and one subtlety: the
	// elevation (feet) ↔ altitude (metres) pair needs a unit conversion
	// later, but the correspondence itself is right.
	pairs := [][2]string{
		{"FAA/Facility", "Eurocontrol/Aerodrome"},
		{"FAA/Facility/facilityID", "Eurocontrol/Aerodrome/aerodromeCode"},
		{"FAA/Facility/name", "Eurocontrol/Aerodrome/title"},
		{"FAA/Facility/elevation", "Eurocontrol/Aerodrome/altitude"},
		{"FAA/Facility/condition", "Eurocontrol/Aerodrome/surfaceState"},
	}
	for _, p := range pairs {
		if err := engine.Accept(p[0], p[1]); err != nil {
			log.Fatal(err)
		}
	}
	engine.MarkSubtreeComplete(facility, 0.3)
	fmt.Printf("Progress after completing Facility: %.0f%%\n", 100*engine.Progress())

	// Step 4: learn and rerun; decisions survive, weights adapt.
	engine.Learn()
	engine.Run()
	fmt.Println("\n== Step 4: after learning + rerun ==")
	fmt.Printf("  facilityID ↔ aerodromeCode pinned at %+.0f (user decision survives)\n",
		engine.Matrix().Get("FAA/Facility/facilityID", "Eurocontrol/Aerodrome/aerodromeCode"))
	fmt.Println("  learned voter weights:")
	for name, w := range engine.Merger().Weights() {
		fmt.Printf("    %-22s %.3f\n", name, w)
	}
	fmt.Printf("  overall progress: %.0f%%\n", 100*engine.Progress())
}
