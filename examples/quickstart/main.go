// Quickstart: from two schemata to an executable mapping in one sitting.
//
// This example loads a relational source (SQL DDL) and an XML target
// (XSD), lets Harmony propose correspondences, confirms the good ones,
// attaches transformation code, and runs the generated mapping over
// sample rows — the full §3 pipeline on the workbench's public API.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	workbench "repro"
)

const sourceDDL = `
CREATE TABLE customer (
  cust_id    INTEGER PRIMARY KEY,
  first_name VARCHAR(40) NOT NULL,
  last_name  VARCHAR(40) NOT NULL,
  balance    DECIMAL(10,2)
);
COMMENT ON TABLE customer IS 'A person who places orders with the company';
COMMENT ON COLUMN customer.first_name IS 'Given name of the customer';
COMMENT ON COLUMN customer.last_name IS 'Family name of the customer';
COMMENT ON COLUMN customer.balance IS 'Outstanding account balance in dollars';
`

const targetXSD = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="client">
    <xs:annotation><xs:documentation>A client of the business who buys goods</xs:documentation></xs:annotation>
    <xs:complexType>
      <xs:sequence>
        <xs:element name="fullName" type="xs:string">
          <xs:annotation><xs:documentation>Complete name of the client</xs:documentation></xs:annotation>
        </xs:element>
        <xs:element name="amountOwed" type="xs:decimal">
          <xs:annotation><xs:documentation>Dollar balance the client still owes</xs:documentation></xs:annotation>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

func main() {
	// 1. Schema preparation (tasks 1–2): load both schemata.
	src, err := workbench.LoadSQL("crm", strings.NewReader(sourceDDL))
	if err != nil {
		log.Fatal(err)
	}
	tgt, err := workbench.LoadXSD("orders", strings.NewReader(targetXSD))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Source schema ==")
	fmt.Print(src)
	fmt.Println("== Target schema ==")
	fmt.Print(tgt)

	// 2. Build the integration session: workbench + mapping + tools.
	session, err := workbench.NewIntegrationSession(
		"crm-to-orders", src, tgt, "crm/customer", "orders/client")
	if err != nil {
		log.Fatal(err)
	}

	// 3. Schema matching (task 3): Harmony proposes, we review.
	n, err := session.Match(0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHarmony published %d candidate correspondences:\n", n)
	engine, err := session.Engine()
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range engine.Links(workbench.View{
		MaxConfidence: true,
		LinkFilters:   []workbench.LinkFilter{workbench.ConfidenceFilter(0.1)},
	}) {
		fmt.Printf("  %s\n", l.Correspondence)
	}

	// The engineer confirms the real pairs.
	for _, pair := range [][2]string{
		{"crm/customer", "orders/client"},
		{"crm/customer/first_name", "orders/client/fullName"},
		{"crm/customer/last_name", "orders/client/fullName"},
		{"crm/customer/balance", "orders/client/amountOwed"},
	} {
		if err := session.Accept(pair[0], pair[1]); err != nil {
			log.Fatal(err)
		}
	}

	// 4. Schema mapping (tasks 4–8): attach transformation code.
	if err := session.WriteCode("crm/customer", "$cust", "orders/client/fullName",
		`concat($cust/first_name, " ", $cust/last_name)`); err != nil {
		log.Fatal(err)
	}
	if err := session.WriteCode("crm/customer", "$cust", "orders/client/amountOwed",
		`data($cust/balance)`); err != nil {
		log.Fatal(err)
	}
	code, err := session.GeneratedCode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGenerated mapping (task 8):")
	fmt.Println(code)

	// 5. Execute and verify (task 9) on sample rows.
	rows := &workbench.Dataset{Records: []*workbench.Record{
		workbench.NewRecord("customer").
			Set("cust_id", "1").Set("first_name", "Ada").
			Set("last_name", "Lovelace").Set("balance", "125.50"),
		workbench.NewRecord("customer").
			Set("cust_id", "2").Set("first_name", "Alan").
			Set("last_name", "Turing").Set("balance", "0"),
	}}
	out, violations, err := session.Execute(rows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Produced %d client documents, %d violations:\n", len(out.Records), len(violations))
	for _, r := range out.Records {
		fmt.Print(r.ToXML())
	}
}
