// Interop: the paper's §5.3 case study, with the AquaLogic role played
// by the workbench's mapper/codegen tools.
//
// "In our pilot study, AquaLogic is the first tool launched by the
// workbench. Within AquaLogic, the integration engineer can load
// schemata, connect source elements to target elements, and initiate the
// automatic generation of XQuery code. Alternatively, she can choose a
// sub-tree and request recommended matches from Harmony. The workbench
// launches the Harmony GUI and begins an IB transaction. ... Once
// satisfied, she exits Harmony to complete the IB transaction.
// AquaLogic then updates its internal representation based on the
// changes made in Harmony."
//
// Every interaction below goes through the integration blackboard and
// the workbench manager's transactions and events — the two tools never
// talk to each other directly.
//
// Run:
//
//	go run ./examples/interop
package main

import (
	"fmt"
	"log"
	"strings"

	workbench "repro"
	"repro/internal/wbmgr"
)

const ordersDDL = `
CREATE TABLE orders (
  order_id   INTEGER PRIMARY KEY,
  cust_first VARCHAR(40),
  cust_last  VARCHAR(40),
  net_amount DECIMAL(10,2) NOT NULL
);
COMMENT ON TABLE orders IS 'An order placed by a customer for shipment';
COMMENT ON COLUMN orders.cust_first IS 'Given name of the ordering customer';
COMMENT ON COLUMN orders.cust_last IS 'Family name of the ordering customer';
COMMENT ON COLUMN orders.net_amount IS 'Net amount of the order before tax';
`

const shipmentXSD = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="shipment">
    <xs:annotation><xs:documentation>A shipment message sent to the carrier</xs:documentation></xs:annotation>
    <xs:complexType>
      <xs:sequence>
        <xs:element name="recipient" type="xs:string">
          <xs:annotation><xs:documentation>Family and given name of the person the order ships to</xs:documentation></xs:annotation>
        </xs:element>
        <xs:element name="grossAmount" type="xs:decimal">
          <xs:annotation><xs:documentation>Gross amount of the order including tax</xs:documentation></xs:annotation>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

func main() {
	src, err := workbench.LoadSQL("oltp", strings.NewReader(ordersDDL))
	if err != nil {
		log.Fatal(err)
	}
	tgt, err := workbench.LoadXSD("carrier", strings.NewReader(shipmentXSD))
	if err != nil {
		log.Fatal(err)
	}

	// The session wires one blackboard, one manager, and the mapper +
	// codegen tools (the AquaLogic role).
	session, err := workbench.NewIntegrationSession("oltp-to-carrier", src, tgt,
		"oltp/orders", "carrier/shipment")
	if err != nil {
		log.Fatal(err)
	}

	// An observer tool subscribing to every event kind — it prints the
	// §5.2.2 conversation as it happens.
	for _, kind := range []workbench.EventKind{
		workbench.EventSchemaGraph, workbench.EventMappingCell,
		workbench.EventMappingVector, workbench.EventMappingMatrix,
	} {
		k := kind
		session.Manager.Subscribe(k, "observer", func(e workbench.Event) {
			fmt.Printf("  [event] %-14s from %-8s subject=%s\n", e.Kind, e.Tool, e.Subject)
		})
	}

	// "She can choose a sub-tree and request recommended matches from
	// Harmony" — Harmony runs inside one IB transaction; no events leak
	// until she exits (commits).
	fmt.Println("== Harmony session (one IB transaction) ==")
	n, err := session.Match(0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Harmony committed %d machine-suggested cells.\n\n", n)

	// The engineer reviews inside Harmony, accepting the real pairs.
	fmt.Println("== Engineer decisions ==")
	for _, p := range [][2]string{
		{"oltp/orders", "carrier/shipment"},
		{"oltp/orders/cust_last", "carrier/shipment/recipient"},
		{"oltp/orders/cust_first", "carrier/shipment/recipient"},
		{"oltp/orders/net_amount", "carrier/shipment/grossAmount"},
	} {
		if err := session.Accept(p[0], p[1]); err != nil {
			log.Fatal(err)
		}
	}

	// "The integration engineer also provides element and attribute
	// transformations that are incorporated into the generated XQuery."
	// Each write fires mapping-vector; the codegen answers each with a
	// regenerated matrix (mapping-matrix event).
	fmt.Println("\n== Mapper writes transformations; codegen follows events ==")
	if err := session.WriteCode("oltp/orders", "$ord", "carrier/shipment/recipient",
		`concat($ord/cust_last, concat(", ", $ord/cust_first))`); err != nil {
		log.Fatal(err)
	}
	if err := session.WriteCode("oltp/orders", "$ord", "carrier/shipment/grossAmount",
		`round-half-to-even(data($ord/net_amount) * 1.0825, 2)`); err != nil {
		log.Fatal(err)
	}

	code, err := session.GeneratedCode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Generated XQuery (blackboard matrix-level code) ==")
	fmt.Println(code)

	// "At any point this code can be tested on sample documents."
	sample := &workbench.Dataset{Records: []*workbench.Record{
		workbench.NewRecord("orders").Set("order_id", "7").
			Set("cust_first", "Grace").Set("cust_last", "Hopper").
			Set("net_amount", "200"),
	}}
	out, violations, err := session.Execute(sample)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Tested on a sample document (%d violations) ==\n", len(violations))
	for _, r := range out.Records {
		fmt.Print(r.ToXML())
	}

	// Show what the event log witnessed, and that an aborted transaction
	// leaves no trace.
	kinds := map[wbmgr.EventKind]int{}
	for _, e := range session.Manager.EventLog() {
		kinds[e.Kind]++
	}
	fmt.Printf("\nEvent log: %d schema-graph, %d mapping-cell, %d mapping-vector, %d mapping-matrix\n",
		kinds[workbench.EventSchemaGraph], kinds[workbench.EventMappingCell],
		kinds[workbench.EventMappingVector], kinds[workbench.EventMappingMatrix])

	before := session.Manager.Blackboard().Graph().Len()
	txn, err := session.Manager.Begin("harmony")
	if err != nil {
		log.Fatal(err)
	}
	mp, _ := txn.Blackboard().GetMapping("oltp-to-carrier")
	mp.SetCell("oltp/orders/order_id", "carrier/shipment/recipient", 0.9, false, "harmony")
	if err := txn.Abort(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Aborted transaction: blackboard %d → %d triples (unchanged)\n",
		before, session.Manager.Blackboard().Graph().Len())
}
