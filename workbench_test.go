package workbench_test

// External-package tests: everything here uses only the public facade,
// exactly as a downstream consumer would.

import (
	"strings"
	"testing"

	workbench "repro"
)

const facadeDDL = `
CREATE TABLE person (
  pid    INTEGER PRIMARY KEY,
  fname  VARCHAR(40) NOT NULL,
  lname  VARCHAR(40) NOT NULL,
  grade  CHAR(2) CHECK (grade IN ('E1','E2','O1'))
);
COMMENT ON TABLE person IS 'A member of the organization';
COMMENT ON COLUMN person.fname IS 'Given name of the person';
COMMENT ON COLUMN person.lname IS 'Family name of the person';
`

const facadeER = `
schema roster "Unit roster model"
entity member "A person assigned to the unit" {
  memberID string key "Unique member identifier"
  fullName string required "Complete name of the member"
  rank     string domain(Rank) "Rank of the member"
}
domain Rank "Pay grades" {
  E1 "Enlisted 1"
  E2 "Enlisted 2"
  O1 "Officer 1"
}
`

func TestFacadeFullPipeline(t *testing.T) {
	src, err := workbench.LoadSQL("hr", strings.NewReader(facadeDDL))
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := workbench.LoadER("roster", strings.NewReader(facadeER))
	if err != nil {
		t.Fatal(err)
	}

	session, err := workbench.NewIntegrationSession("hr-to-roster", src, tgt,
		"hr/person", "roster/member")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := session.Match(0.15); err != nil {
		t.Fatal(err)
	}
	// The domain voter should relate grade↔rank via shared codes.
	engine, err := session.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if got := engine.Matrix().Get("hr/person/grade", "roster/member/rank"); got <= 0 {
		t.Errorf("grade↔rank = %g, want positive (shared codes)", got)
	}

	for _, p := range [][2]string{
		{"hr/person", "roster/member"},
		{"hr/person/grade", "roster/member/rank"},
	} {
		if err := session.Accept(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := session.WriteCode("hr/person", "$p", "roster/member/fullName",
		`concat($p/fname, " ", $p/lname)`); err != nil {
		t.Fatal(err)
	}
	if err := session.WriteCode("hr/person", "$p", "roster/member/rank", `$p/grade`); err != nil {
		t.Fatal(err)
	}
	if err := session.WriteCode("hr/person", "$p", "roster/member/memberID", `concat("M-", $p/pid)`); err != nil {
		t.Fatal(err)
	}

	rows := &workbench.Dataset{Records: []*workbench.Record{
		workbench.NewRecord("person").Set("pid", "7").
			Set("fname", "Grace").Set("lname", "Hopper").Set("grade", "O1"),
	}}
	out, violations, err := session.Execute(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("violations: %v", violations)
	}
	r := out.Records[0]
	if r.GetString("fullName") != "Grace Hopper" || r.GetString("rank") != "O1" {
		t.Errorf("output record: %v", r)
	}
}

func TestFacadeValidationAndCleaning(t *testing.T) {
	tgt, err := workbench.LoadER("roster", strings.NewReader(facadeER))
	if err != nil {
		t.Fatal(err)
	}
	ds := &workbench.Dataset{Records: []*workbench.Record{
		workbench.NewRecord("member").Set("memberID", "1").
			Set("fullName", "A").Set("rank", "E9"), // not in domain
	}}
	viols := workbench.ValidateInstances(tgt, ds)
	if len(viols) != 1 {
		t.Fatalf("violations = %v", viols)
	}
	workbench.CleanInstances(tgt, ds)
	if len(workbench.ValidateInstances(tgt, ds)) != 0 {
		t.Error("clean did not converge")
	}
}

func TestFacadeLinking(t *testing.T) {
	recs := []*workbench.Record{
		workbench.NewRecord("member").Set("fullName", "John Smith"),
		workbench.NewRecord("member").Set("fullName", "John  Smith"),
		workbench.NewRecord("member").Set("fullName", "Someone Else"),
	}
	merged := workbench.LinkInstances(recs, workbench.LinkOptions{
		MatchFields: []string{"fullName"}, Threshold: 0.9,
	})
	if len(merged) != 2 {
		t.Errorf("merged = %d, want 2", len(merged))
	}
}

func TestFacadeTaskModelAndDerivation(t *testing.T) {
	if got := len(workbench.IntegrationTasks()); got != 13 {
		t.Errorf("task model = %d tasks", got)
	}
	src, _ := workbench.LoadER("roster", strings.NewReader(facadeER))
	d, err := workbench.DeriveTarget("unified", []*workbench.Schema{src}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Target.Len() == 0 {
		t.Error("derived target empty")
	}
}

func TestFacadeFiltersAndDOT(t *testing.T) {
	src, _ := workbench.LoadSQL("hr", strings.NewReader(facadeDDL))
	tgt, _ := workbench.LoadER("roster", strings.NewReader(facadeER))
	engine := workbench.NewEngine(src, tgt, workbench.EngineOptions{Flooding: true})
	engine.Run()
	links := engine.Links(workbench.View{
		MaxConfidence: true,
		LinkFilters:   []workbench.LinkFilter{workbench.ConfidenceFilter(0.1)},
	})
	if len(links) == 0 {
		t.Fatal("no links displayed")
	}
	var cells []workbench.MappingDOTCell
	for _, l := range links {
		cells = append(cells, workbench.MappingDOTCell{
			SourceID: l.Source.ID, TargetID: l.Target.ID, Confidence: l.Confidence,
		})
	}
	dot := workbench.MappingToDOT(src, tgt, cells)
	if !strings.Contains(dot, "digraph mapping") {
		t.Errorf("DOT output:\n%s", dot)
	}
	if !strings.Contains(workbench.SchemaToDOT(src), `digraph "hr"`) {
		t.Error("schema DOT broken")
	}
}

func TestFacadeSynthesizeAndPolicies(t *testing.T) {
	tgt, _ := workbench.LoadER("roster", strings.NewReader(facadeER))
	ds := workbench.SynthesizeInstances(tgt, 5, 1)
	if len(ds.Records) != 5 {
		t.Fatalf("synthesized %d", len(ds.Records))
	}
	if v := workbench.ValidateInstances(tgt, ds); len(v) != 0 {
		t.Errorf("synthesized data invalid: %v", v)
	}
	// ErrorPolicy constants are visible.
	_ = workbench.FailFast
	_ = workbench.NullOnError
	_ = workbench.SkipRecordOnError
}

func TestFacadeBlackboardRoundTrip(t *testing.T) {
	bb := workbench.NewBlackboard()
	src, _ := workbench.LoadER("roster", strings.NewReader(facadeER))
	if _, err := bb.PutSchema(src); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := bb.Snapshot(&sb); err != nil {
		t.Fatal(err)
	}
	bb2 := workbench.NewBlackboard()
	if err := bb2.Restore(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	if got := bb2.Schemas(); len(got) != 1 || got[0] != "roster" {
		t.Errorf("restored schemas: %v", got)
	}
}
