// Package workbench is the public API of the integration workbench, a
// from-scratch reproduction of "Integration Workbench: Integrating Schema
// Integration Tools" (Mork, Rosenthal, Seligman, Korb, Samuel — ICDE
// 2006).
//
// The package re-exports the types a downstream user needs from the
// internal packages:
//
//   - schema loading (XSD, SQL DDL, ER text) into the canonical schema
//     graph (Schema, Element, Domain);
//   - the Harmony schema matcher (Engine) with its voter panel, vote
//     merger, similarity flooding, filters and iterative refinement;
//   - the integration blackboard (Blackboard, Mapping) and the workbench
//     manager (Manager, Tool, events, transactions, queries);
//   - the mapping tool and code generator (MapperTool, CodeGenTool,
//     Program) with the XQuery-flavoured transformation language;
//   - instance-side utilities (Record, Dataset, Validate, Link, Clean);
//   - the task model (Tasks, ToolProfile) and the end-to-end
//     IntegrationSession.
//
// See examples/quickstart for the fastest route from two schemata to an
// executable mapping.
package workbench

import (
	"io"
	"net/http"

	"repro/internal/blackboard"
	"repro/internal/core"
	"repro/internal/erwin"
	"repro/internal/harmony"
	"repro/internal/instance"
	"repro/internal/mapgen"
	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/reuse"
	"repro/internal/sqlddl"
	"repro/internal/wbmgr"
	"repro/internal/xmlschema"
)

// Schema-graph model.
type (
	// Schema is a canonical schema graph.
	Schema = model.Schema
	// Element is a schema-graph node.
	Element = model.Element
	// Domain is an enumerated coding scheme.
	Domain = model.Domain
	// DomainValue is one code of a coding scheme.
	DomainValue = model.DomainValue
	// Kind classifies elements (entity, attribute, relationship).
	Kind = model.Kind
)

// Element kinds.
const (
	KindSchema       = model.KindSchema
	KindEntity       = model.KindEntity
	KindAttribute    = model.KindAttribute
	KindRelationship = model.KindRelationship
)

// NewSchema returns an empty canonical schema.
func NewSchema(name, format string) *Schema { return model.NewSchema(name, format) }

// Loaders (§3.1 task 1).

// LoadXSD parses an XML Schema document into a canonical schema.
func LoadXSD(name string, r io.Reader) (*Schema, error) { return xmlschema.Load(name, r) }

// LoadXSDFile loads an .xsd file, named after the file stem.
func LoadXSDFile(path string) (*Schema, error) { return xmlschema.LoadFile(path) }

// LoadSQL parses SQL DDL into a canonical schema.
func LoadSQL(name string, r io.Reader) (*Schema, error) { return sqlddl.Load(name, r) }

// LoadSQLFile loads a .sql file.
func LoadSQLFile(path string) (*Schema, error) { return sqlddl.LoadFile(path) }

// LoadER parses the ER text format (the ERWin stand-in).
func LoadER(name string, r io.Reader) (*Schema, error) { return erwin.Load(name, r) }

// LoadERFile loads an .er file.
func LoadERFile(path string) (*Schema, error) { return erwin.LoadFile(path) }

// Harmony matcher (§4).
type (
	// Engine is a Harmony matching session over one schema pair.
	Engine = harmony.Engine
	// EngineOptions configures an Engine.
	EngineOptions = harmony.Options
	// Link is a displayed correspondence with its metadata.
	Link = harmony.Link
	// View selects which links are displayed (the §4.2 filters).
	View = harmony.View
	// LinkFilter is a predicate over links.
	LinkFilter = harmony.LinkFilter
	// NodeFilter enables/disables schema elements.
	NodeFilter = harmony.NodeFilter
	// Voter is one match strategy.
	Voter = match.Voter
	// Correspondence is one scored element pair.
	Correspondence = match.Correspondence
	// Matrix is a confidence matrix over a schema pair.
	Matrix = match.Matrix
	// BlockingOptions configures registry-scale candidate generation
	// (EngineOptions.Blocking): with Enabled set, an inverted-index
	// blocking pass prunes the cross product before any voter runs and
	// the pipeline's matrices are stored sparsely over the survivors.
	BlockingOptions = match.BlockingOptions
)

// NewEngine preprocesses a schema pair and returns a Harmony engine. The
// pipeline parallelizes across EngineOptions.Parallelism workers
// (0 = GOMAXPROCS, 1 = sequential) with bit-identical results at any
// setting; see DESIGN.md "Concurrency model".
func NewEngine(source, target *Schema, opts EngineOptions) *Engine {
	return harmony.NewEngine(source, target, opts)
}

// DefaultVoters returns the standard Harmony voter panel.
func DefaultVoters() []Voter { return match.DefaultVoters() }

// Filters (§4.2).
var (
	// ConfidenceFilter keeps links at or above a threshold.
	ConfidenceFilter = harmony.ConfidenceFilter
	// OriginFilter keeps human- or machine-generated links.
	OriginFilter = harmony.OriginFilter
	// DepthFilter enables elements at or above a depth.
	DepthFilter = harmony.DepthFilter
	// SubtreeFilter enables one subtree.
	SubtreeFilter = harmony.SubtreeFilter
	// KindFilter enables one element kind.
	KindFilter = harmony.KindFilter
)

// Blackboard and manager (§5).
type (
	// Blackboard is the shared RDF knowledge repository.
	Blackboard = blackboard.Blackboard
	// Mapping is a handle on one mapping matrix in the blackboard.
	Mapping = blackboard.Mapping
	// MappingCell is one annotated matrix cell.
	MappingCell = blackboard.Cell
	// Manager is the workbench manager: transactions, events, queries.
	Manager = wbmgr.Manager
	// Tool is the §5.2.1 tool interface.
	Tool = wbmgr.Tool
	// Event is a blackboard-change notification.
	Event = wbmgr.Event
	// EventKind classifies events.
	EventKind = wbmgr.EventKind
	// Txn is one transactional update scope.
	Txn = wbmgr.Txn
)

// Event kinds (§5.2.2).
const (
	EventSchemaGraph   = wbmgr.EventSchemaGraph
	EventMappingCell   = wbmgr.EventMappingCell
	EventMappingVector = wbmgr.EventMappingVector
	EventMappingMatrix = wbmgr.EventMappingMatrix
)

// NewBlackboard returns an empty integration blackboard.
func NewBlackboard() *Blackboard { return blackboard.New() }

// NewManager returns a workbench manager over a fresh blackboard.
func NewManager() *Manager { return wbmgr.New() }

// Mapping and code generation.
type (
	// Program is an executable logical mapping (task 8).
	Program = mapgen.Program
	// EntityRule maps one source entity to one target entity.
	EntityRule = mapgen.EntityRule
	// ColumnRule produces one target attribute.
	ColumnRule = mapgen.ColumnRule
	// JoinSpec joins a second source entity.
	JoinSpec = mapgen.JoinSpec
	// LookupTable is a coding-scheme translation (task 4).
	LookupTable = mapgen.LookupTable
	// MapperTool is the workbench mapping tool.
	MapperTool = mapgen.MapperTool
	// CodeGenTool assembles column code into a whole mapping.
	CodeGenTool = mapgen.CodeGenTool
	// Expr is a parsed transformation expression.
	Expr = mapgen.Expr
)

// ParseExpr parses a transformation expression.
func ParseExpr(src string) (Expr, error) { return mapgen.Parse(src) }

// ErrorPolicy governs exceptional conditions during mapping execution
// (task 12).
type ErrorPolicy = mapgen.ErrorPolicy

// Error policies for Program.ExecuteWithPolicy.
const (
	FailFast          = mapgen.FailFast
	NullOnError       = mapgen.NullOnError
	SkipRecordOnError = mapgen.SkipRecordOnError
)

// NewMapperTool returns a mapper bound to a mapping id.
func NewMapperTool(mappingID string) *MapperTool { return mapgen.NewMapperTool(mappingID) }

// NewCodeGenTool returns a code generator bound to a mapping.
func NewCodeGenTool(mappingID, sourceEntityID, targetEntityID string) *CodeGenTool {
	return mapgen.NewCodeGenTool(mappingID, sourceEntityID, targetEntityID)
}

// Instance layer (§3.4).
type (
	// Record is an instance element (tuple or document node).
	Record = instance.Record
	// Dataset is a set of records under one schema.
	Dataset = instance.Dataset
	// Violation is one constraint violation.
	Violation = instance.Violation
	// LinkOptions configures instance linking (task 10).
	LinkOptions = instance.LinkOptions
)

// NewRecord returns an empty record of the given type.
func NewRecord(typ string) *Record { return instance.NewRecord(typ) }

// ValidateInstances checks a dataset against a schema (task 9).
func ValidateInstances(s *Schema, ds *Dataset) []Violation { return instance.Validate(s, ds) }

// LinkInstances merges co-referent records (task 10).
func LinkInstances(records []*Record, opts LinkOptions) []*Record {
	return instance.Link(records, opts).Merged
}

// CleanInstances removes domain-violating values (task 11).
func CleanInstances(s *Schema, ds *Dataset) []Violation {
	return instance.Clean(s, ds, instance.CleanOptions{DropViolations: true})
}

// Task model and orchestration (§3, §5.3).
type (
	// TaskID numbers the 13 integration tasks.
	TaskID = core.TaskID
	// IntegrationTask describes one subtask.
	IntegrationTask = core.Task
	// ToolProfile is one tool's task coverage.
	ToolProfile = core.ToolProfile
	// IntegrationSession drives an end-to-end integration.
	IntegrationSession = core.IntegrationSession
)

// IntegrationTasks is the complete 13-task model.
func IntegrationTasks() []IntegrationTask { return core.Tasks }

// Extensions (paper §5.1.3 future goals and §3.1–3.2 optional paths).
type (
	// Derivation is a target schema derived from source correspondences.
	Derivation = core.Derivation
	// LibraryVoter votes from prior decisions in the mapping library.
	LibraryVoter = reuse.LibraryVoter
	// SchemaDiff is one change between schema versions.
	SchemaDiff = model.DiffEntry
	// InferOptions tunes domain inference from instance data.
	InferOptions = instance.InferOptions
)

// DeriveTarget builds a unified target schema from correspondences among
// source schemata (task 2's optional path).
func DeriveTarget(name string, sources []*Schema, threshold float64) (*Derivation, error) {
	return core.DeriveTarget(name, sources, threshold)
}

// VotersWithLibrary is the default panel plus the mapping-library voter.
func VotersWithLibrary(bb *Blackboard) []Voter { return reuse.VotersWithLibrary(bb) }

// DiffSchemas compares two schema versions (§3.1 metadata sync).
func DiffSchemas(old, new *Schema) []SchemaDiff { return model.Diff(old, new) }

// InferDomains enriches a schema with coding schemes recovered from
// instance data (§3.1 enrichment, §2 coding-scheme discussion).
func InferDomains(s *Schema, ds *Dataset, opts InferOptions) []string {
	return instance.InferDomains(s, ds, opts)
}

// SynthesizeInstances generates a dataset conforming to a schema (n
// records per top-level entity) for testing generated mappings.
func SynthesizeInstances(s *Schema, n int, seed int64) *Dataset {
	return instance.Synthesize(s, n, seed)
}

// SchemaToDOT renders a schema as Graphviz DOT.
func SchemaToDOT(s *Schema) string { return model.ToDOT(s) }

// MappingDOTCell is one correspondence line for MappingToDOT.
type MappingDOTCell = model.MappingDOTCell

// MappingToDOT renders a schema pair with color-coded correspondence
// lines — the headless equivalent of the Harmony GUI's display.
func MappingToDOT(src, tgt *Schema, cells []MappingDOTCell) string {
	return model.MappingToDOT(src, tgt, cells)
}

// Observability (internal/obs): the engine, manager and blackboard all
// instrument themselves on DefaultMetrics() unless rebound.
type (
	// MetricsRegistry holds counters, gauges and latency histograms.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is one metric family's point-in-time state.
	MetricsSnapshot = obs.Metric
	// Tracer times nested pipeline stages into a latency histogram.
	Tracer = obs.Tracer
)

// NewMetricsRegistry returns an empty metrics registry, for isolating a
// component's instrumentation from the process-wide default.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// DefaultMetrics is the process-wide metrics registry.
func DefaultMetrics() *MetricsRegistry { return obs.Default() }

// MetricsHandler serves /metrics (Prometheus text, ?format=json for
// JSON) and /healthz — embed it to expose the workbench as a service.
func MetricsHandler(r *MetricsRegistry) http.Handler { return obs.Handler(r) }

// ServeMetrics exposes MetricsHandler on addr, blocking.
func ServeMetrics(addr string, r *MetricsRegistry) error { return obs.Serve(addr, r) }

// WriteMetricsText writes a registry in Prometheus text format.
func WriteMetricsText(w io.Writer, r *MetricsRegistry) error { return obs.WritePrometheus(w, r) }

// WriteMetricsJSON writes a registry as JSON.
func WriteMetricsJSON(w io.Writer, r *MetricsRegistry) error { return obs.WriteJSON(w, r) }

// NewIntegrationSession builds a workbench, stores both schemata, and
// wires the matcher/mapper/codegen tools around one mapping.
func NewIntegrationSession(mappingID string, source, target *Schema, sourceEntityID, targetEntityID string) (*IntegrationSession, error) {
	return core.NewIntegrationSession(mappingID, source, target, sourceEntityID, targetEntityID)
}
